#!/usr/bin/env bash
# Regenerate the diff-pipeline benchmark baseline.
#
# Usage: scripts/bench_baseline.sh [OUT.json]
#
# Runs the criterion micro benches (benches/micro.rs and benches/diff.rs)
# plus a short paper-harness `hist` run, and distills the numbers this
# baseline tracks into OUT.json (default BENCH_diff.json):
#
#   - diff create ns/op at four sparsity levels (1/32/256/512 dirty words
#     of a 4 KiB page), for both the naive byte-wise reference and the
#     u64 word-diff fast path;
#   - diff apply ns/op (plain and pooled) at the same levels;
#   - the steady-state twin cycle (twin + write + diff + recycle) ns/op;
#   - bytes physically copied per remote page fetch (zero-copy check);
#   - page-pool counters from a real FT Water-Spatial run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_diff.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo bench -p dsm-bench --bench diff | tee "$TMP/diff.txt"
cargo bench -p dsm-bench --bench micro | tee "$TMP/micro.txt"
cargo run -q --release -p dsm-bench --bin paper -- hist >"$TMP/hist.txt"

# Median ns/iter of one `bench <id> <median> ns/iter ...` line.
median() {
    awk -v id="$1" '$1 == "bench" && $2 == id { print $3; exit }' "$TMP/diff.txt"
}

# First (clean-run) fetch_copy_bytes row: count and mean bytes per fetch.
FETCHES=$(awk '$1 == "fetch_copy_bytes" { print $2; exit }' "$TMP/hist.txt")
FETCH_BYTES=$(awk '$1 == "fetch_copy_bytes" { print $3; exit }' "$TMP/hist.txt")
# Clean-run pool counters: "page pool: H hits, M misses, R recycled, X rejected".
read -r HITS MISSES RECYCLED REJECTED < <(
    awk -F'[ ,]+' '/page pool:/ { print $4, $6, $8, $10; exit }' "$TMP/hist.txt"
)

{
    echo '{'
    echo '  "generated_by": "scripts/bench_baseline.sh",'
    echo '  "page_bytes": 4096,'
    echo '  "diff_create_ns_per_op": {'
    for d in 1 32 256 512; do
        comma=$([ "$d" = 512 ] && echo "" || echo ",")
        echo "    \"dirty_words_$d\": {\"naive\": $(median "diff_create/naive_4k/$d"), \"u64\": $(median "diff_create/u64_4k/$d")}$comma"
    done
    echo '  },'
    echo "  \"diff_create_identical_ns_per_op\": $(median "diff_create/u64_4k_identical"),"
    echo '  "diff_apply_ns_per_op": {'
    for d in 1 32 256 512; do
        comma=$([ "$d" = 512 ] && echo "" || echo ",")
        echo "    \"dirty_words_$d\": {\"plain\": $(median "diff_apply/plain_4k/$d"), \"pooled\": $(median "diff_apply/pooled_4k/$d")}$comma"
    done
    echo '  },'
    echo "  \"twin_cycle_ns_per_op\": $(median "twin_cycle/pooled_4k"),"
    echo "  \"fetch\": {\"count\": $FETCHES, \"bytes_copied_per_fetch\": $FETCH_BYTES},"
    echo "  \"pool\": {\"hits\": $HITS, \"misses\": $MISSES, \"recycled\": $RECYCLED, \"rejected\": $REJECTED}"
    echo '}'
} >"$OUT"

echo "wrote $OUT"
cat "$OUT"
