#!/usr/bin/env bash
# Regenerate the diff-pipeline and protocol benchmark baselines.
#
# Usage: scripts/bench_baseline.sh [OUT.json] [PROTO_OUT.json]
#
# Runs the criterion micro benches (benches/micro.rs, benches/diff.rs and
# benches/protocol.rs) plus short paper-harness `hist` and `protocol` runs,
# and distills the numbers these baselines track into OUT.json (default
# BENCH_diff.json) and PROTO_OUT.json (default BENCH_protocol.json):
#
#   - diff create ns/op at four sparsity levels (1/32/256/512 dirty words
#     of a 4 KiB page), for both the naive byte-wise reference and the
#     u64 word-diff fast path;
#   - diff apply ns/op (plain and pooled) at the same levels;
#   - the steady-state twin cycle (twin + write + diff + recycle) ns/op;
#   - bytes physically copied per remote page fetch (zero-copy check);
#   - page-pool counters from a real FT Water-Spatial run;
#   - remote fetch round trips per page and protocol op latencies on the
#     barrier-heavy Water-Spatial FT kernel (n=8), against the pinned
#     pre-batching baseline.
#
# Alongside the JSON baselines it leaves a metrics snapshot of the hist
# run: BENCH_metrics.jsonl (periodic registry samples, one per line) and
# BENCH_metrics.prom (final Prometheus exposition), driven by the
# FTDSM_METRICS_EVERY_MS / FTDSM_METRICS_OUT environment hooks.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_diff.json}"
PROTO_OUT="${2:-BENCH_protocol.json}"
METRICS_OUT="${3:-BENCH_metrics.jsonl}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo bench -p dsm-bench --bench diff | tee "$TMP/diff.txt"
cargo bench -p dsm-bench --bench micro | tee "$TMP/micro.txt"
rm -f "$METRICS_OUT"
FTDSM_METRICS_EVERY_MS=10 FTDSM_METRICS_OUT="$METRICS_OUT" \
    cargo run -q --release -p dsm-bench --bin paper -- hist >"$TMP/hist.txt"
[ -s "$METRICS_OUT" ] || { echo "no metrics sampled into $METRICS_OUT" >&2; exit 1; }
echo "wrote $METRICS_OUT and ${METRICS_OUT%.jsonl}.prom"

# Median ns/iter of one `bench <id> <median> ns/iter ...` line.
median() {
    awk -v id="$1" '$1 == "bench" && $2 == id { print $3; exit }' "$TMP/diff.txt"
}

# First (clean-run) fetch_copy_bytes row: count and mean bytes per fetch.
FETCHES=$(awk '$1 == "fetch_copy_bytes" { print $2; exit }' "$TMP/hist.txt")
FETCH_BYTES=$(awk '$1 == "fetch_copy_bytes" { print $3; exit }' "$TMP/hist.txt")
# Clean-run pool counters: "page pool: H hits, M misses, R recycled, X rejected".
read -r HITS MISSES RECYCLED REJECTED < <(
    awk -F'[ ,]+' '/page pool:/ { print $4, $6, $8, $10; exit }' "$TMP/hist.txt"
)

{
    echo '{'
    echo '  "generated_by": "scripts/bench_baseline.sh",'
    echo '  "page_bytes": 4096,'
    echo '  "diff_create_ns_per_op": {'
    for d in 1 32 256 512; do
        comma=$([ "$d" = 512 ] && echo "" || echo ",")
        echo "    \"dirty_words_$d\": {\"naive\": $(median "diff_create/naive_4k/$d"), \"u64\": $(median "diff_create/u64_4k/$d")}$comma"
    done
    echo '  },'
    echo "  \"diff_create_identical_ns_per_op\": $(median "diff_create/u64_4k_identical"),"
    echo '  "diff_apply_ns_per_op": {'
    for d in 1 32 256 512; do
        comma=$([ "$d" = 512 ] && echo "" || echo ",")
        echo "    \"dirty_words_$d\": {\"plain\": $(median "diff_apply/plain_4k/$d"), \"pooled\": $(median "diff_apply/pooled_4k/$d")}$comma"
    done
    echo '  },'
    echo "  \"twin_cycle_ns_per_op\": $(median "twin_cycle/pooled_4k"),"
    echo "  \"fetch\": {\"count\": $FETCHES, \"bytes_copied_per_fetch\": $FETCH_BYTES},"
    echo "  \"pool\": {\"hits\": $HITS, \"misses\": $MISSES, \"recycled\": $RECYCLED, \"rejected\": $REJECTED}"
    echo '}'
} >"$OUT"

echo "wrote $OUT"
cat "$OUT"

# ---- protocol baseline (BENCH_protocol.json) -------------------------------

cargo bench -p dsm-bench --bench protocol | tee "$TMP/protocol.txt"
cargo run -q --release -p dsm-bench --bin paper -- protocol >"$TMP/protocol_run.txt"

# Median ns/iter of one protocol bench row.
pmedian() {
    awk -v id="$1" '$1 == "bench" && $2 == id { print $3; exit }' "$TMP/protocol.txt"
}
# Count from a `protocol_msgs <kind> <count>` line.
pmsgs() {
    awk -v k="$1" '$1 == "protocol_msgs" && $2 == k { print $3; exit }' "$TMP/protocol_run.txt"
}
phist() {
    awk -v m="$1" -v f="$2" '$1 == "protocol_hist" && $2 == m {
        for (i = 3; i < NF; i++) if ($i == f) { print $(i + 1); exit }
    }' "$TMP/protocol_run.txt"
}

PAGE_REQ=$(pmsgs PageReq)
BATCH_REQ=$(pmsgs PageBatchReq)
PAGES=$(awk '$1 == "protocol_pages_fetched" { print $2; exit }' "$TMP/protocol_run.txt")
RT_PER_PAGE=$(awk '$1 == "protocol_round_trips_per_page" { print $2; exit }' "$TMP/protocol_run.txt")
read -r PF_HITS PF_MISSES < <(
    awk '$1 == "protocol_prefetch" { print $3, $5; exit }' "$TMP/protocol_run.txt"
)
# Pre-batching baseline: every remote page miss was its own PageReq round
# trip (740 fetches = 740 round trips on this kernel at commit afbdd17),
# measured on the same host as the bench medians below.
PRE_RT_PER_PAGE=1.0
REDUCTION=$(awk -v post="$RT_PER_PAGE" -v pre="$PRE_RT_PER_PAGE" 'BEGIN { printf "%.2f", pre / post }')

{
    echo '{'
    echo '  "generated_by": "scripts/bench_baseline.sh",'
    echo '  "workload": "Water-Spatial, FT, 8 nodes, 4 KiB pages (barrier-heavy SPLASH kernel)",'
    echo '  "prechange": {'
    echo '    "comment": "pre big-lock decomposition and batched fetch (commit afbdd17), same host",'
    echo '    "fetch_round_trips": {"PageReq": 740, "PageBatchReq": 0, "pages_fetched": 740, "round_trips_per_page": 1.0},'
    echo '    "bench_ns_per_iter": {"page_fetch_4k": 110.0, "lock_roundtrip_2n": 1935.8, "barrier_2n": 14826.2, "barrier_4n": 23132.5, "write_release_diff": 4562.1, "ft_checkpoint_64_pages": 373069.8}'
    echo '  },'
    echo '  "postchange": {'
    echo "    \"fetch_round_trips\": {\"PageReq\": $PAGE_REQ, \"PageBatchReq\": $BATCH_REQ, \"pages_fetched\": $PAGES, \"round_trips_per_page\": $RT_PER_PAGE},"
    echo "    \"round_trip_reduction_x\": $REDUCTION,"
    echo "    \"prefetch\": {\"hits\": $PF_HITS, \"misses\": $PF_MISSES},"
    echo '    "latency_ns": {'
    for m in page_fetch lock_wait barrier_wait; do
        comma=$([ "$m" = barrier_wait ] && echo "" || echo ",")
        echo "      \"$m\": {\"count\": $(phist "$m" count), \"mean\": $(phist "$m" mean_ns), \"p50\": $(phist "$m" p50_ns), \"p95\": $(phist "$m" p95_ns)}$comma"
    done
    echo '    },'
    echo '    "bench_ns_per_iter": {'
    echo "      \"page_fetch_4k\": $(pmedian protocol/page_fetch_4k),"
    echo "      \"lock_roundtrip_2n\": $(pmedian protocol/lock_roundtrip_2n),"
    echo "      \"barrier_2n\": $(pmedian protocol/barrier_2n),"
    echo "      \"barrier_4n\": $(pmedian protocol/barrier_4n),"
    echo "      \"barrier_8n\": $(pmedian protocol/barrier_8n),"
    echo "      \"write_release_diff\": $(pmedian protocol/write_release_diff),"
    echo "      \"invalidate_fetch_16p_2n\": $(pmedian protocol/invalidate_fetch_16p_2n),"
    echo "      \"page_fetch_contended_4n\": $(pmedian protocol/page_fetch_contended_4n),"
    echo "      \"ft_checkpoint_64_pages\": $(pmedian ft/checkpoint_64_pages)"
    echo '    }'
    echo '  }'
    echo '}'
} >"$PROTO_OUT"

echo "wrote $PROTO_OUT"
cat "$PROTO_OUT"
