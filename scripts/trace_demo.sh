#!/usr/bin/env bash
# Capture a Perfetto-loadable protocol trace of a crash+recovery run.
#
# Usage: scripts/trace_demo.sh [OUT.json]
#
# Writes OUT.json (Chrome trace-event format, default trace.json) and
# OUT.jsonl next to it. Open the .json in https://ui.perfetto.dev or
# chrome://tracing to see one timeline lane per node.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-trace.json}"
cargo run --release --example trace_demo -- "$OUT"
