//! Compare checkpoint policies on one workload.
//!
//! Shows how the paper's log-overflow policy `OF(L)` trades checkpoint
//! frequency against retained log volume, next to periodic and manual
//! policies.
//!
//! ```text
//! cargo run --release --example checkpoint_policies
//! ```

use ftdsm_suite::apps::{jacobi, JacobiParams};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, DiskMode, DiskModel};

fn main() {
    let policies: Vec<(&str, CkptPolicy)> = vec![
        ("OF(L=0.05)", CkptPolicy::LogOverflow { l: 0.05 }),
        ("OF(L=0.2)", CkptPolicy::LogOverflow { l: 0.2 }),
        ("OF(L=1.0)", CkptPolicy::LogOverflow { l: 1.0 }),
        ("every 2 steps", CkptPolicy::EverySteps(2)),
        ("every 8 steps", CkptPolicy::EverySteps(8)),
        ("never", CkptPolicy::Never),
    ];

    println!(
        "{:<16} {:>6} {:>14} {:>16} {:>6}",
        "policy", "ckpts", "disk (KB)", "max log (KB)", "Wmax"
    );
    for (name, policy) in policies {
        let cfg = ClusterConfig::fault_tolerant(4)
            .with_policy(policy)
            .with_disk(DiskModel::scsi_1999(0.1, DiskMode::Stall));
        let report = run(cfg, &[], |p| {
            jacobi(
                p,
                &JacobiParams {
                    side: 48,
                    steps: 16,
                },
            )
        });
        let disk: u64 = report.nodes.iter().map(|n| n.ft.store.bytes_written).sum();
        let max_log: u64 = report
            .nodes
            .iter()
            .map(|n| n.ft.max_stable_log_bytes)
            .max()
            .unwrap_or(0);
        println!(
            "{:<16} {:>6} {:>14.1} {:>16.1} {:>6}",
            name,
            report.total_ckpts(),
            disk as f64 / 1024.0,
            max_log as f64 / 1024.0,
            report.max_ckpt_window()
        );
    }
}
