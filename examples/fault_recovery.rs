//! Crash a node mid-run and watch it recover.
//!
//! Runs the same deterministic workload twice — once crash-free and once
//! with node 2 fail-stopping mid-computation — and verifies that recovery
//! (checkpoint restore + log-driven replay) reproduces bit-identical
//! results and shared memory.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use ftdsm_suite::apps::{water_nsq, WaterNsqParams};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, FailureSpec};

fn config() -> ClusterConfig {
    ClusterConfig::fault_tolerant(4).with_policy(CkptPolicy::EverySteps(2))
}

fn main() {
    let params = WaterNsqParams::small();

    println!("crash-free run...");
    let p1 = params.clone();
    let clean = run(config(), &[], move |p| water_nsq(p, &p1));
    println!(
        "  checksum {:#018x}, {} checkpoints, wall {:?}",
        clean.results[0],
        clean.total_ckpts(),
        clean.wall
    );

    println!("\nrun with node 2 crashing at its 500th DSM operation...");
    let p2 = params.clone();
    let crashed = run(
        config(),
        &[FailureSpec {
            node: 2,
            at_op: 500,
        }],
        move |p| water_nsq(p, &p2),
    );
    println!(
        "  checksum {:#018x}, {} checkpoints, node 2 recoveries: {}",
        crashed.results[0],
        crashed.total_ckpts(),
        crashed.nodes[2].ft.recoveries
    );

    assert_eq!(crashed.nodes[2].ft.recoveries, 1, "the crash did not fire");
    assert_eq!(clean.results, crashed.results, "results diverged!");
    assert_eq!(clean.shared_hash, crashed.shared_hash, "memory diverged!");
    println!("\nrecovery reproduced the crash-free execution exactly ✓");
    println!(
        "(final shared-memory hash {:#018x} in both runs)",
        clean.shared_hash
    );
}
