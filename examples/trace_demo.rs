//! Capture a Perfetto-loadable protocol trace of a crash + recovery run.
//!
//! Runs a lock/barrier workload on a fault-tolerant cluster with tracing,
//! metrics sampling and the protocol-invariant monitor enabled, crashes one
//! node mid-run, and writes the whole protocol timeline (page faults,
//! diffs, locks, barriers, checkpoints, log trims, messages with causal
//! flow arrows, recovery phases) as Chrome trace-event JSON plus a JSONL
//! dump, and the sampled metrics as JSONL + Prometheus exposition text.
//! Open the JSON in <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example trace_demo [-- OUT.json]
//! ```

use std::fs::File;
use std::time::Duration;

use dsm_trace::export::{write_chrome_trace, write_jsonl};
use ftdsm_suite::apps::{water_nsq, WaterNsqParams};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, FailureSpec, MetricsConfig, TraceConfig};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    // Start from the environment so FTDSM_TRACE_BUF / _ECHO / _LOCKS still
    // apply, but force recording on: the demo exists to produce a trace.
    let trace = TraceConfig {
        enabled: true,
        ..TraceConfig::from_env()
    };
    let metrics_out = format!(
        "{}metrics.jsonl",
        out.strip_suffix("trace.json").unwrap_or("")
    );
    let cfg = ClusterConfig::fault_tolerant(4)
        .with_policy(CkptPolicy::EverySteps(2))
        .with_trace(trace)
        .with_monitor(true)
        .with_metrics(MetricsConfig {
            every: Duration::from_millis(5),
            out: Some(metrics_out.clone().into()),
        });

    let params = WaterNsqParams::small();
    println!("running 4-node Water-Nsquared with node 2 crashing at op 500...");
    let report = run(
        cfg,
        &[FailureSpec {
            node: 2,
            at_op: 500,
        }],
        move |p| water_nsq(p, &params),
    );
    assert_eq!(report.nodes[2].ft.recoveries, 1, "the crash did not fire");
    let mon = report.monitor.as_ref().expect("monitor was on");
    println!(
        "invariant monitor: {} events checked, {} violations",
        mon.events_seen,
        mon.violations.len()
    );

    for (node, (retained, total)) in report.trace.counts().into_iter().enumerate() {
        println!("  node {node}: {retained} events retained of {total} emitted");
    }

    let mut f = File::create(&out).expect("create trace output");
    write_chrome_trace(&report.trace, &mut f).expect("write chrome trace");
    let jsonl = format!("{out}l");
    let mut f = File::create(&jsonl).expect("create jsonl output");
    write_jsonl(&report.trace, &mut f).expect("write jsonl");

    println!("\nlatency summary (all nodes merged):");
    for (name, h) in report.total_hists().named() {
        if h.count() > 0 {
            println!(
                "  {name:<16} n={:<6} mean={:>9}ns p95={:>9}ns max={:>9}ns",
                h.count(),
                h.mean(),
                h.quantile(0.95),
                h.max()
            );
        }
    }

    println!("\nreceive latency attribution by message kind (queue vs chaos):");
    for (kind, acc) in &report.phases {
        if acc.count > 0 {
            println!(
                "  {kind:<16} n={:<6} queue={:>9}ns/msg chaos={:>6}ns/msg",
                acc.count,
                acc.queue_ns / acc.count,
                acc.chaos_ns / acc.count,
            );
        }
    }

    println!(
        "\nmetrics: {} snapshots sampled -> {metrics_out} (+ .prom sibling)",
        report.metrics.snapshots.len()
    );
    println!(
        "wrote {out} (Chrome trace with cross-node flow arrows; open in \
         https://ui.perfetto.dev) and {jsonl}"
    );
}
