//! Chaos quickstart: run a small workload twice — once on a reliable
//! fabric, once under seeded fault injection — and show that the results
//! and final memory image are identical, along with the fault/membership
//! counters from the run report.
//!
//! ```text
//! cargo run --release --example chaos_demo -- [scenario] [seed]
//!   scenario: lossy (default) | dup-reorder | crash
//!   seed:     u64 (decimal or 0x hex); defaults to FTDSM_SEED
//! ```

use std::time::Duration;

use ftdsm_suite::{
    run, seed_from_env, CkptPolicy, ClusterConfig, FailureSpec, FaultPlan, FaultRule, HomeAlloc,
    Process,
};

const NODES: usize = 4;

fn cfg() -> ClusterConfig {
    ClusterConfig::fault_tolerant(NODES)
        .with_page_size(512)
        .with_policy(CkptPolicy::LogOverflow { l: 0.2 })
}

fn app(p: &mut Process) -> u64 {
    let n = p.nodes();
    let data = p.alloc_vec::<u64>(128, HomeAlloc::Interleaved);
    let mut state = 0u64;
    p.run_steps(&mut state, 8, |p, state, step| {
        p.acquire(1);
        let v = data.get(p, 0);
        data.set(p, 0, v + 1);
        p.release(1);
        let me = p.me();
        for i in (me..128).step_by(n) {
            if i != 0 {
                let v = data.get(p, i);
                data.set(p, i, v.wrapping_mul(31).wrapping_add(step + i as u64));
            }
        }
        *state += step;
        p.barrier();
    });
    p.barrier();
    let mut acc = 0u64;
    for i in 0..128 {
        acc = acc.rotate_left(7) ^ data.get(p, i);
    }
    acc
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = args.get(1).map(String::as_str).unwrap_or("lossy");
    let seed = match args.get(2) {
        Some(s) => match s.strip_prefix("0x") {
            Some(h) => u64::from_str_radix(h, 16).expect("bad hex seed"),
            None => s.parse().expect("bad seed"),
        },
        None => seed_from_env(),
    };

    println!("scenario: {scenario}   seed: {seed:#x}");
    let reliable = run(cfg().with_seed(seed), &[], app);
    println!(
        "reliable run:  results[0] = {:#018x}  shared_hash = {:#018x}",
        reliable.results[0], reliable.shared_hash
    );

    let (plan, failures) = match scenario {
        "lossy" => (FaultPlan::lossy(0), vec![]),
        "dup-reorder" => (
            FaultPlan::new(0).with_rule(
                FaultRule::all()
                    .duplicating(0.25)
                    .reordering(0.25)
                    .delaying(0.5, Duration::from_micros(50), Duration::from_millis(2)),
            ),
            vec![],
        ),
        "crash" => (
            FaultPlan::lossy(0),
            vec![FailureSpec {
                node: 2,
                at_op: 200,
            }],
        ),
        other => panic!("unknown scenario {other:?} (lossy | dup-reorder | crash)"),
    };

    let chaotic = run(cfg().with_seed(seed).with_chaos(plan), &failures, app);
    println!(
        "chaotic run:   results[0] = {:#018x}  shared_hash = {:#018x}",
        chaotic.results[0], chaotic.shared_hash
    );
    assert_eq!(reliable.results, chaotic.results, "results diverged!");
    assert_eq!(
        reliable.shared_hash, chaotic.shared_hash,
        "final memory diverged!"
    );
    println!("=> identical results and final memory image\n");

    let t = chaotic.total_traffic();
    let m = chaotic.total_member();
    println!(
        "injected faults: {} dropped, {} delayed, {} duplicated",
        t.chaos_dropped, t.chaos_delayed, t.chaos_duplicated
    );
    println!(
        "survival work:   {} retransmits, {} duplicate deliveries suppressed",
        chaotic.total_retransmits(),
        chaotic.total_dup_suppressed()
    );
    println!(
        "membership:      {} pings, {} suspicions ({} false), {} down, {} up",
        m.pings_sent, m.suspicions, m.false_suspicions, m.down_events, m.up_events
    );
    for (i, n) in chaotic.nodes.iter().enumerate() {
        if n.ft.recoveries > 0 {
            println!(
                "node {i}:          crashed and recovered {}x (detected by peers, not scripted)",
                n.ft.recoveries
            );
        }
    }
}
