//! Quickstart: a 4-node DSM cluster sharing a counter and an array.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftdsm_suite::{run, ClusterConfig, HomeAlloc};

fn main() {
    // Four simulated nodes, 4 KB pages, base HLRC protocol (no fault
    // tolerance). The same closure runs on every node (SPMD).
    let config = ClusterConfig::base(4);
    let report = run(config, &[], |p| {
        let n = p.nodes();
        let me = p.me();

        // Shared allocations are collective: every node performs the same
        // allocations in the same order.
        let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(0));
        let slots = p.alloc_vec::<u64>(n, HomeAlloc::Interleaved);

        // A lock-protected increment: HLRC moves the page to each writer
        // and merges word-level diffs at its home.
        for _ in 0..10 {
            p.acquire(0);
            let v = counter.get(p, 0);
            counter.set(p, 0, v + 1);
            p.release(0);
        }

        // Barrier-published per-node results.
        slots.set(p, me, (me as u64 + 1) * 100);
        p.barrier();

        let total: u64 = (0..n).map(|i| slots.get(p, i)).sum();
        (counter.get(p, 0), total)
    });

    for (node, (counter, total)) in report.results.iter().enumerate() {
        println!("node {node}: counter = {counter}, slot total = {total}");
    }
    let t = report.total_traffic();
    println!(
        "\n{} protocol messages, {:.1} KB payload, wall time {:?}",
        t.msgs_sent,
        t.base_bytes_sent as f64 / 1024.0,
        report.wall
    );
    assert!(report.results.iter().all(|&(c, t)| c == 40 && t == 1000));
    println!("all nodes agree ✓");
}
