//! Barnes-Hut N-body on the DSM, with protocol statistics.
//!
//! ```text
//! cargo run --release --example nbody [-- <bodies> <steps>]
//! ```

use ftdsm_suite::apps::{barnes, BarnesParams};
use ftdsm_suite::{run, ClusterConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let bodies: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let params = BarnesParams {
        bodies,
        steps,
        ..BarnesParams::small()
    };

    println!("Barnes-Hut: {bodies} bodies, {steps} steps, 4 nodes");
    let report = run(ClusterConfig::base(4), &[], move |p| barnes(p, &params));

    let first = report.results[0];
    assert!(
        report.results.iter().all(|&c| c == first),
        "nodes disagree on the final state"
    );
    println!("final-state checksum: {first:#018x} (identical on every node)");
    println!("wall time: {:?}", report.wall);
    println!(
        "shared space: {:.2} MB",
        report.shared_bytes as f64 / 1048576.0
    );

    let t = report.total_traffic();
    println!(
        "traffic: {} messages, {:.2} MB",
        t.msgs_sent,
        t.base_bytes_sent as f64 / 1048576.0
    );
    let b = report.total_breakdown();
    println!(
        "time breakdown (all nodes): compute {:?}, page wait {:?}, lock wait {:?}, barrier wait {:?}",
        b.compute(),
        b.page_wait,
        b.lock_wait,
        b.barrier_wait
    );
}
