//! Workspace umbrella crate: re-exports the public API of the fault-tolerant
//! DSM so that the top-level `examples/` and `tests/` can use a single path.

pub use dsm_net as net;
pub use dsm_page as page;
pub use dsm_storage as storage;
pub use ftdsm::*;
pub use hlrc as protocol;
pub use splash as apps;
