//! A minimal explicit binary codec: little-endian fixed-width integers and
//! length-prefixed byte strings.
//!
//! Used for checkpoint records and saved log entries. Having our own codec
//! (instead of an external format crate) gives exact byte accounting — the
//! encoded length *is* the number charged to stable storage and to message
//! traffic.

/// Errors produced when decoding malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the requested field.
    UnexpectedEof {
        /// Bytes the decoder asked for.
        wanted: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag/discriminant byte had no known interpretation.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length field exceeded a sanity bound.
    LengthOverflow {
        /// The rejected length.
        len: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { wanted, remaining } => {
                write!(
                    f,
                    "unexpected end of input: wanted {wanted} bytes, {remaining} remain"
                )
            }
            CodecError::BadTag { context, tag } => write!(f, "bad tag {tag} decoding {context}"),
            CodecError::LengthOverflow { len } => write!(f, "length field too large: {len}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum length accepted for a single length-prefixed field (1 GiB): a
/// corrupted length should fail decoding, not abort on allocation.
const MAX_FIELD_LEN: u64 = 1 << 30;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64 (bit pattern preserved).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes with no length prefix (the caller encodes the length
    /// elsewhere; pairs with [`ByteReader::get_raw`]).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed vector of u32 (vector clocks and friends).
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for x in v {
            self.put_u32(*x);
        }
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the input is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian f64 (bit pattern preserved).
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Raw bytes with an externally known length (pairs with
    /// [`ByteWriter::put_raw`]).
    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if len as u64 > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow { len: len as u64 });
        }
        self.take(len)
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u64()?;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow { len });
        }
        self.take(len as usize)
    }

    /// Length-prefixed vector of u32.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let len = self.get_u64()?;
        if len > MAX_FIELD_LEN / 4 {
            return Err(CodecError::LengthOverflow { len });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(std::f64::consts::PI);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_prefixed_fields() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"hello");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_raw_bytes() {
        let mut w = ByteWriter::new();
        w.put_u32(3);
        w.put_raw(b"abc");
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 4 + 3, "raw bytes carry no length prefix");
        let mut r = ByteReader::new(&bytes);
        let n = r.get_u32().unwrap() as usize;
        assert_eq!(r.get_raw(n).unwrap(), b"abc");
        assert!(r.is_exhausted());
        assert!(matches!(
            r.get_raw(1),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn eof_is_reported_not_panicked() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32(),
            Err(CodecError::UnexpectedEof {
                wanted: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }
}
