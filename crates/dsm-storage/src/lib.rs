#![warn(missing_docs)]
//! Stable storage for checkpoints and saved logs.
//!
//! The paper writes checkpoints (homed pages + protocol state) and volatile
//! logs to a local disk at checkpoint time, and assumes the stable storage of
//! a node survives its crash. Here stable storage is simulated: per-node
//! byte-accurate segment stores ([`StableStore`]) that survive a simulated
//! crash (they live outside the node runtime), plus a configurable
//! [`DiskModel`] that charges the writing node wall-clock time per write —
//! this is what reproduces the disk-write overhead column of Table 3 and the
//! checkpoint-interference effect on Barnes.
//!
//! The [`codec`] module is a small explicit binary codec (length-prefixed,
//! little-endian) used for checkpoint records, log entries, and wire-size
//! accounting; no external serialization crate is needed.

pub mod codec;
pub mod disk;
pub mod store;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use disk::{DiskMode, DiskModel};
pub use store::{SegmentKind, StableStore, StoreStats};
