//! Disk time model.
//!
//! The paper's overhead numbers (Table 3) include the time to write homed
//! pages and saved logs to a local disk (circa-1999 hardware, roughly
//! 10-20 MB/s sequential). The simulation charges the writing node a modeled
//! duration per write; depending on [`DiskMode`] the node either actually
//! sleeps for that long (so checkpoint stalls interfere with barriers, the
//! Barnes effect) or the time is only accounted.

use std::time::Duration;

/// Whether modeled disk time stalls the writing node or is only accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMode {
    /// Sleep for the modeled duration (default: reproduces interference
    /// effects between checkpointing and synchronization).
    Stall,
    /// Only account the duration; no sleeping. Useful in unit tests.
    AccountOnly,
}

/// Bandwidth/latency model for stable-storage writes.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Sustained write bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-write latency (seek + controller).
    pub latency: Duration,
    /// Global scale applied to modeled durations, so experiment runs stay
    /// short: `0.01` means modeled disk time passes 100x faster than the
    /// modeled hardware. Applied to both bandwidth time and latency.
    pub time_scale: f64,
    /// Stall or account-only.
    pub mode: DiskMode,
}

impl DiskModel {
    /// A model of a ~1999 local SCSI disk (15 MB/s, 8 ms per write), scaled.
    pub fn scsi_1999(time_scale: f64, mode: DiskMode) -> Self {
        DiskModel {
            bandwidth_bytes_per_s: 15.0 * 1024.0 * 1024.0,
            latency: Duration::from_millis(8),
            time_scale,
            mode,
        }
    }

    /// An infinitely fast disk: zero modeled time.
    pub fn instant() -> Self {
        DiskModel {
            bandwidth_bytes_per_s: f64::INFINITY,
            latency: Duration::ZERO,
            time_scale: 1.0,
            mode: DiskMode::AccountOnly,
        }
    }

    /// Modeled wall-clock duration for writing `bytes` bytes (already
    /// scaled by `time_scale`).
    pub fn write_time(&self, bytes: u64) -> Duration {
        let secs = self.latency.as_secs_f64() + bytes as f64 / self.bandwidth_bytes_per_s;
        Duration::from_secs_f64((secs * self.time_scale).max(0.0))
    }

    /// Charge a write: returns the modeled duration, sleeping for it first
    /// when in [`DiskMode::Stall`].
    pub fn charge_write(&self, bytes: u64) -> Duration {
        let d = self.write_time(bytes);
        if self.mode == DiskMode::Stall && !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_time_scales_with_bytes_and_time_scale() {
        let m = DiskModel {
            bandwidth_bytes_per_s: 1_000_000.0,
            latency: Duration::from_millis(10),
            time_scale: 1.0,
            mode: DiskMode::AccountOnly,
        };
        let t = m.write_time(1_000_000);
        assert!((t.as_secs_f64() - 1.010).abs() < 1e-9);

        let scaled = DiskModel {
            time_scale: 0.1,
            ..m
        };
        assert!((scaled.write_time(1_000_000).as_secs_f64() - 0.101).abs() < 1e-9);
    }

    #[test]
    fn instant_disk_charges_nothing() {
        let m = DiskModel::instant();
        assert_eq!(m.write_time(1 << 30), Duration::ZERO);
        assert_eq!(m.charge_write(1 << 30), Duration::ZERO);
    }

    #[test]
    fn account_only_does_not_sleep() {
        let m = DiskModel::scsi_1999(1.0, DiskMode::AccountOnly);
        let start = std::time::Instant::now();
        let d = m.charge_write(100 * 1024 * 1024);
        assert!(d.as_secs_f64() > 5.0); // modeled: ~6.7s
        assert!(start.elapsed().as_millis() < 100); // real: instant
    }
}
