//! Per-node stable storage.
//!
//! A [`StableStore`] models one node's local disk. It survives the node's
//! simulated crash (the paper assumes stable storage remains available after
//! a failure) and tracks byte-exact statistics:
//!
//! * cumulative bytes written ("total disk traffic", Table 4),
//! * split between checkpoint data and saved logs,
//! * live (currently retained) bytes per kind — the stable-log size curve of
//!   Figure 4 is `live_bytes(SegmentKind::Log)` sampled at checkpoints.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

use crate::disk::DiskModel;

/// What a stable segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentKind {
    /// Checkpoint data (metadata, homed page copies, private state).
    Checkpoint,
    /// Saved volatile logs.
    Log,
}

/// Cumulative statistics for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Total bytes ever written (disk traffic).
    pub bytes_written: u64,
    /// Bytes ever written to checkpoint segments.
    pub ckpt_bytes_written: u64,
    /// Bytes ever written to log segments.
    pub log_bytes_written: u64,
    /// Number of segment writes.
    pub writes: u64,
    /// Total modeled disk time charged.
    pub write_time: Duration,
}

#[derive(Default)]
struct Inner {
    segments: BTreeMap<(SegmentKind, u64), Vec<u8>>,
    stats: StoreStats,
}

/// One node's stable storage.
pub struct StableStore {
    disk: DiskModel,
    inner: Mutex<Inner>,
}

impl StableStore {
    /// An empty store backed by the given disk model.
    pub fn new(disk: DiskModel) -> Self {
        StableStore {
            disk,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The disk model in use.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Write (replace) segment `(kind, id)`. Charges modeled disk time for
    /// the bytes written and returns that duration. The caller (the node's
    /// application thread at checkpoint time) experiences the stall when the
    /// disk model is in stall mode.
    pub fn write_segment(&self, kind: SegmentKind, id: u64, data: Vec<u8>) -> Duration {
        let len = data.len() as u64;
        // Model the disk time *outside* the lock so concurrent nodes with
        // separate stores don't serialize (each store is per-node anyway).
        let d = self.disk.charge_write(len);
        let mut inner = self.inner.lock();
        inner.stats.bytes_written += len;
        inner.stats.writes += 1;
        inner.stats.write_time += d;
        match kind {
            SegmentKind::Checkpoint => inner.stats.ckpt_bytes_written += len,
            SegmentKind::Log => inner.stats.log_bytes_written += len,
        }
        inner.segments.insert((kind, id), data);
        d
    }

    /// Read a copy of segment `(kind, id)`.
    pub fn read_segment(&self, kind: SegmentKind, id: u64) -> Option<Vec<u8>> {
        self.inner.lock().segments.get(&(kind, id)).cloned()
    }

    /// Delete segment `(kind, id)` (garbage collection; free). Returns true
    /// when the segment existed.
    pub fn delete_segment(&self, kind: SegmentKind, id: u64) -> bool {
        self.inner.lock().segments.remove(&(kind, id)).is_some()
    }

    /// Size in bytes of segment `(kind, id)`, if live.
    pub fn segment_len(&self, kind: SegmentKind, id: u64) -> Option<u64> {
        self.inner
            .lock()
            .segments
            .get(&(kind, id))
            .map(|v| v.len() as u64)
    }

    /// Ids of live segments of `kind`, ascending.
    pub fn segment_ids(&self, kind: SegmentKind) -> Vec<u64> {
        self.inner
            .lock()
            .segments
            .keys()
            .filter(|(k, _)| *k == kind)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Currently retained bytes of `kind`.
    pub fn live_bytes(&self, kind: SegmentKind) -> u64 {
        self.inner
            .lock()
            .segments
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Currently retained bytes across all kinds.
    pub fn total_live_bytes(&self) -> u64 {
        self.inner
            .lock()
            .segments
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;

    fn store() -> StableStore {
        StableStore::new(DiskModel::instant())
    }

    #[test]
    fn write_read_delete_roundtrip() {
        let s = store();
        s.write_segment(SegmentKind::Checkpoint, 1, vec![1, 2, 3]);
        assert_eq!(
            s.read_segment(SegmentKind::Checkpoint, 1),
            Some(vec![1, 2, 3])
        );
        assert!(s.delete_segment(SegmentKind::Checkpoint, 1));
        assert_eq!(s.read_segment(SegmentKind::Checkpoint, 1), None);
        assert!(!s.delete_segment(SegmentKind::Checkpoint, 1));
    }

    #[test]
    fn kinds_are_separate_namespaces() {
        let s = store();
        s.write_segment(SegmentKind::Checkpoint, 7, vec![0; 10]);
        s.write_segment(SegmentKind::Log, 7, vec![0; 20]);
        assert_eq!(s.live_bytes(SegmentKind::Checkpoint), 10);
        assert_eq!(s.live_bytes(SegmentKind::Log), 20);
        assert_eq!(s.total_live_bytes(), 30);
        assert_eq!(s.segment_ids(SegmentKind::Log), vec![7]);
    }

    #[test]
    fn replace_updates_live_but_traffic_accumulates() {
        let s = store();
        s.write_segment(SegmentKind::Log, 0, vec![0; 100]);
        s.write_segment(SegmentKind::Log, 0, vec![0; 40]);
        assert_eq!(s.live_bytes(SegmentKind::Log), 40);
        let st = s.stats();
        assert_eq!(st.bytes_written, 140);
        assert_eq!(st.log_bytes_written, 140);
        assert_eq!(st.ckpt_bytes_written, 0);
        assert_eq!(st.writes, 2);
    }

    #[test]
    fn deletion_is_free_of_disk_traffic() {
        let s = store();
        s.write_segment(SegmentKind::Checkpoint, 0, vec![0; 64]);
        let before = s.stats();
        s.delete_segment(SegmentKind::Checkpoint, 0);
        assert_eq!(s.stats(), before);
        assert_eq!(s.total_live_bytes(), 0);
    }
}
