//! Property tests for stable storage and the codec.

use dsm_storage::{ByteReader, ByteWriter, DiskMode, DiskModel, SegmentKind, StableStore};
use proptest::prelude::*;

proptest! {
    /// Decoding arbitrary bytes never panics — corrupt stable storage must
    /// surface as errors, not aborts.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = ByteReader::new(&bytes);
        // Drain the input with a fixed mixed-field schedule.
        loop {
            if r.get_u8().is_err() { break; }
            if r.get_u32().is_err() { break; }
            if r.get_bytes().is_err() { break; }
            if r.get_u32_vec().is_err() { break; }
        }
    }

    /// A mixed write/read schedule roundtrips exactly.
    #[test]
    fn mixed_fields_roundtrip(
        a in any::<u64>(),
        b in any::<u32>(),
        s in proptest::collection::vec(any::<u8>(), 0..64),
        v in proptest::collection::vec(any::<u32>(), 0..32),
        f in any::<f64>(),
    ) {
        let mut w = ByteWriter::new();
        w.put_u64(a);
        w.put_bytes(&s);
        w.put_u32(b);
        w.put_u32_slice(&v);
        w.put_f64(f);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.get_u64().unwrap(), a);
        prop_assert_eq!(r.get_bytes().unwrap(), &s[..]);
        prop_assert_eq!(r.get_u32().unwrap(), b);
        prop_assert_eq!(r.get_u32_vec().unwrap(), v);
        let got = r.get_f64().unwrap();
        prop_assert_eq!(got.to_bits(), f.to_bits());
        prop_assert!(r.is_exhausted());
    }

    /// Store accounting invariants: live bytes equal the sum of the latest
    /// write per segment; cumulative traffic equals the sum of all writes.
    #[test]
    fn store_accounting_is_exact(
        ops in proptest::collection::vec((0u64..6, 0usize..200, any::<bool>()), 1..40),
    ) {
        let store = StableStore::new(DiskModel::instant());
        let mut live: std::collections::HashMap<(bool, u64), usize> = Default::default();
        let mut total = 0u64;
        for (id, len, is_log) in ops {
            let kind = if is_log { SegmentKind::Log } else { SegmentKind::Checkpoint };
            store.write_segment(kind, id, vec![0xAB; len]);
            live.insert((is_log, id), len);
            total += len as u64;
        }
        prop_assert_eq!(store.stats().bytes_written, total);
        let expect_live: usize = live.values().sum();
        prop_assert_eq!(store.total_live_bytes(), expect_live as u64);
        for ((is_log, id), len) in live {
            let kind = if is_log { SegmentKind::Log } else { SegmentKind::Checkpoint };
            prop_assert_eq!(store.read_segment(kind, id).unwrap().len(), len);
        }
    }
}

#[test]
fn disk_model_is_monotone_in_bytes() {
    let m = DiskModel::scsi_1999(1.0, DiskMode::AccountOnly);
    let mut last = std::time::Duration::ZERO;
    for mb in [0u64, 1, 4, 16, 64] {
        let t = m.write_time(mb * 1024 * 1024);
        assert!(t >= last);
        last = t;
    }
}
