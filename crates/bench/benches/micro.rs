//! Micro-benchmarks of the protocol building blocks: diffs, vector clocks,
//! write-notice tables, and the checkpoint codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_page::{Diff, Interval, Page, PageId, VectorClock};
use ftdsm::ft::ckpt::CheckpointBlob;
use hlrc::{WnTable, WriteNotice};

fn dirty_page(size: usize, dirty_words: usize) -> (Page, Page) {
    let twin = Page::zeroed(size);
    let mut cur = twin.clone();
    let words = size / 8;
    for k in 0..dirty_words {
        let w = (k * words / dirty_words) * 8;
        cur.write(w, &[(k + 1) as u8; 8]);
    }
    (twin, cur)
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for &dirty in &[1usize, 32, 256, 512] {
        let (twin, cur) = dirty_page(4096, dirty);
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(BenchmarkId::new("create_4k", dirty), &dirty, |b, _| {
            b.iter(|| Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur))
        });
        let diff = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur).unwrap();
        let mut target = twin.clone();
        g.bench_with_input(BenchmarkId::new("apply_4k", dirty), &dirty, |b, _| {
            b.iter(|| diff.apply(&mut target))
        });
    }
    g.finish();
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock");
    for &n in &[8usize, 64] {
        let a = VectorClock::from_vec((0..n as u32).collect());
        let b = VectorClock::from_vec((0..n as u32).rev().collect());
        g.bench_with_input(BenchmarkId::new("join", n), &n, |bch, _| {
            bch.iter(|| {
                let mut x = a.clone();
                x.join(&b);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("covers", n), &n, |bch, _| {
            bch.iter(|| a.covers(&b))
        });
        g.bench_with_input(BenchmarkId::new("missing_from", n), &n, |bch, _| {
            bch.iter(|| a.missing_from(&b))
        });
    }
    g.finish();
}

fn bench_wn_table(c: &mut Criterion) {
    let mut table = WnTable::new();
    for proc_ in 0..8 {
        for seq in 1..=200u32 {
            table.insert(WriteNotice {
                interval: Interval { proc: proc_, seq },
                pages: (0..4).map(|k| PageId(seq * 4 + k)).collect(),
            });
        }
    }
    let from = VectorClock::from_vec(vec![180; 8]);
    let to = VectorClock::from_vec(vec![200; 8]);
    c.bench_function("wn_table/missing_between_20x8", |b| {
        b.iter(|| table.missing_between(&from, &to))
    });
}

fn bench_checkpoint_codec(c: &mut Criterion) {
    let blob = CheckpointBlob {
        seq: 5,
        tckp: VectorClock::from_vec(vec![100; 8]),
        bar_episode: 40,
        acq_seq_next: 33,
        last_bar_arrive_seq: 90,
        step: 12,
        app_state: vec![7; 256],
        needed: (0..64).map(|i| (PageId(i), (i % 8) as usize, i)).collect(),
        tenures: vec![(3, 7, 5, true), (9, 2, 4, false)],
        last_release_vts: vec![(3, VectorClock::from_vec(vec![9; 8]))],
        home_pages: (0..32)
            .map(|i| {
                (
                    PageId(i),
                    VectorClock::from_vec(vec![i; 8]),
                    vec![0u8; 4096],
                )
            })
            .collect(),
    };
    let encoded = blob.encode();
    let mut g = c.benchmark_group("checkpoint_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_32_pages", |b| b.iter(|| blob.encode()));
    g.bench_function("decode_32_pages", |b| {
        b.iter(|| CheckpointBlob::decode(&encoded).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_vector_clock,
    bench_wn_table,
    bench_checkpoint_codec
);
criterion_main!(benches);
