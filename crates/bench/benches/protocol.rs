//! Cluster-level protocol operation costs: page fetch, lock handoff,
//! barrier crossing, and checkpointing, measured on live 2- and 4-node
//! simulated clusters.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use ftdsm::{run, CkptPolicy, ClusterConfig, HomeAlloc, Process};

/// Run `iters` repetitions of an operation inside a fresh cluster and
/// return the time node 1 spent in the loop.
fn run_timed(
    nodes: usize,
    iters: u64,
    body: impl Fn(&mut Process, u64) + Send + Sync + 'static,
) -> Duration {
    let report = run(
        ClusterConfig::base(nodes).with_page_size(4096),
        &[],
        move |p| {
            p.barrier();
            let t0 = Instant::now();
            body(p, iters);
            let d = t0.elapsed();
            p.barrier();
            d
        },
    );
    report.results[1]
}

fn bench_page_fetch(c: &mut Criterion) {
    c.bench_function("protocol/page_fetch_4k", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(512, HomeAlloc::Node(0));
                if p.me() == 1 {
                    for i in 0..iters {
                        // Touch a fresh page each time by writing at home
                        // first? Keep it simple: invalidate by round-robin
                        // through pages; after the first pass reads are
                        // local, so this measures the amortized fetch+read.
                        let idx = (i % 512) as usize;
                        std::hint::black_box(data.get(p, idx));
                    }
                } else {
                    // Home node idles; its service thread answers fetches.
                }
            })
        })
    });
}

fn bench_lock_handoff(c: &mut Criterion) {
    c.bench_function("protocol/lock_roundtrip_2n", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                for _ in 0..iters {
                    p.acquire(3);
                    p.release(3);
                }
            })
        })
    });
}

fn bench_barrier(c: &mut Criterion) {
    for &n in &[2usize, 4, 8] {
        c.bench_function(&format!("protocol/barrier_{n}n"), |b| {
            b.iter_custom(|iters| {
                run_timed(n, iters, |p, iters| {
                    for _ in 0..iters {
                        p.barrier();
                    }
                })
            })
        });
    }
}

fn bench_write_and_flush(c: &mut Criterion) {
    c.bench_function("protocol/write_release_diff", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(512, HomeAlloc::Node(0));
                if p.me() == 1 {
                    for i in 0..iters {
                        p.acquire(1);
                        data.set(p, (i % 512) as usize, i);
                        p.release(1); // diff created, logged is off, sent to home
                    }
                }
            })
        })
    });
}

/// The batched-fetch path: the producer dirties 16 pages, the barrier's
/// write notices invalidate them at the consumer, and the consumer's eager
/// prefetch pulls all 16 back in one `PageBatchReq` round trip before the
/// reads touch them.
fn bench_prefetch_batch(c: &mut Criterion) {
    c.bench_function("protocol/invalidate_fetch_16p_2n", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(16 * 512, HomeAlloc::Node(0));
                for i in 0..iters {
                    if p.me() == 0 {
                        for pg in 0..16 {
                            data.set(p, pg * 512, i + pg as u64);
                        }
                    }
                    p.barrier();
                    if p.me() == 1 {
                        for pg in 0..16 {
                            std::hint::black_box(data.get(p, pg * 512));
                        }
                    }
                    p.barrier();
                }
            })
        })
    });
}

/// Concurrent home service: node 0 dirties one page per reader each round,
/// and after the barrier all three readers fetch from node 0 at once. The
/// sharded store lets its service thread answer the simultaneous fetches
/// without serializing them behind the big node lock.
fn bench_contended_home(c: &mut Criterion) {
    c.bench_function("protocol/page_fetch_contended_4n", |b| {
        b.iter_custom(|iters| {
            run_timed(4, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(3 * 512, HomeAlloc::Node(0));
                for i in 0..iters {
                    if p.me() == 0 {
                        for pg in 0..3 {
                            data.set(p, pg * 512, i + pg as u64);
                        }
                    }
                    p.barrier();
                    if p.me() != 0 {
                        std::hint::black_box(data.get(p, (p.me() - 1) * 512));
                    }
                    p.barrier();
                }
            })
        })
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    c.bench_function("ft/checkpoint_64_pages", |b| {
        b.iter_custom(|iters| {
            let report = run(
                ClusterConfig::fault_tolerant(2)
                    .with_page_size(4096)
                    .with_policy(CkptPolicy::Manual),
                &[],
                move |p| {
                    let data = p.alloc_vec::<u64>(64 * 512, HomeAlloc::Node(1));
                    let mut state = 0u64;
                    let t0 = Instant::now();
                    p.run_steps(&mut state, iters, |p, _s, step| {
                        if p.me() == 1 {
                            data.set(p, (step % 64) as usize * 512, step);
                            p.request_checkpoint();
                        }
                        p.barrier();
                    });
                    t0.elapsed()
                },
            );
            report.results[1]
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_page_fetch, bench_lock_handoff, bench_barrier, bench_write_and_flush,
        bench_prefetch_batch, bench_contended_home, bench_checkpoint
}
criterion_main!(benches);
