//! Cluster-level protocol operation costs: page fetch, lock handoff,
//! barrier crossing, and checkpointing, measured on live 2- and 4-node
//! simulated clusters.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use ftdsm::{run, CkptPolicy, ClusterConfig, HomeAlloc, Process};

/// Run `iters` repetitions of an operation inside a fresh cluster and
/// return the time node 1 spent in the loop.
fn run_timed(
    nodes: usize,
    iters: u64,
    body: impl Fn(&mut Process, u64) + Send + Sync + 'static,
) -> Duration {
    let report = run(
        ClusterConfig::base(nodes).with_page_size(4096),
        &[],
        move |p| {
            p.barrier();
            let t0 = Instant::now();
            body(p, iters);
            let d = t0.elapsed();
            p.barrier();
            d
        },
    );
    report.results[1]
}

fn bench_page_fetch(c: &mut Criterion) {
    c.bench_function("protocol/page_fetch_4k", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(512, HomeAlloc::Node(0));
                if p.me() == 1 {
                    for i in 0..iters {
                        // Touch a fresh page each time by writing at home
                        // first? Keep it simple: invalidate by round-robin
                        // through pages; after the first pass reads are
                        // local, so this measures the amortized fetch+read.
                        let idx = (i % 512) as usize;
                        std::hint::black_box(data.get(p, idx));
                    }
                } else {
                    // Home node idles; its service thread answers fetches.
                }
            })
        })
    });
}

fn bench_lock_handoff(c: &mut Criterion) {
    c.bench_function("protocol/lock_roundtrip_2n", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                for _ in 0..iters {
                    p.acquire(3);
                    p.release(3);
                }
            })
        })
    });
}

fn bench_barrier(c: &mut Criterion) {
    for &n in &[2usize, 4] {
        c.bench_function(&format!("protocol/barrier_{n}n"), |b| {
            b.iter_custom(|iters| {
                run_timed(n, iters, |p, iters| {
                    for _ in 0..iters {
                        p.barrier();
                    }
                })
            })
        });
    }
}

fn bench_write_and_flush(c: &mut Criterion) {
    c.bench_function("protocol/write_release_diff", |b| {
        b.iter_custom(|iters| {
            run_timed(2, iters, |p, iters| {
                let data = p.alloc_vec::<u64>(512, HomeAlloc::Node(0));
                if p.me() == 1 {
                    for i in 0..iters {
                        p.acquire(1);
                        data.set(p, (i % 512) as usize, i);
                        p.release(1); // diff created, logged is off, sent to home
                    }
                }
            })
        })
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    c.bench_function("ft/checkpoint_64_pages", |b| {
        b.iter_custom(|iters| {
            let report = run(
                ClusterConfig::fault_tolerant(2)
                    .with_page_size(4096)
                    .with_policy(CkptPolicy::Manual),
                &[],
                move |p| {
                    let data = p.alloc_vec::<u64>(64 * 512, HomeAlloc::Node(1));
                    let mut state = 0u64;
                    let t0 = Instant::now();
                    p.run_steps(&mut state, iters, |p, _s, step| {
                        if p.me() == 1 {
                            data.set(p, (step % 64) as usize * 512, step);
                            p.request_checkpoint();
                        }
                        p.barrier();
                    });
                    t0.elapsed()
                },
            );
            report.results[1]
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_page_fetch, bench_lock_handoff, bench_barrier, bench_write_and_flush, bench_checkpoint
}
criterion_main!(benches);
