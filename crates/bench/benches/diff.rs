//! Diff-pipeline benchmarks: the u64 word-diff fast path against the
//! retained naive byte-wise reference, pooled diff apply, and the twin
//! pool's steady-state reuse. `scripts/bench_baseline.sh` parses this
//! binary's output into `BENCH_diff.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_page::{diff::reference, Diff, DiffScratch, Interval, Page, PageId, PagePool};

const PAGE_SIZE: usize = 4096;
const SPARSITY: [usize; 4] = [1, 32, 256, 512];

fn dirty_page(dirty_words: usize) -> (Page, Page) {
    let twin = Page::zeroed(PAGE_SIZE);
    let mut cur = twin.clone();
    let words = PAGE_SIZE / 8;
    for k in 0..dirty_words {
        let w = (k * words / dirty_words) * 8;
        cur.write(w, &[(k + 1) as u8; 8]);
    }
    (twin, cur)
}

/// Byte-wise reference vs u64 word scan, same page, same dirty pattern.
fn bench_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_create");
    for &dirty in &SPARSITY {
        let (twin, cur) = dirty_page(dirty);
        g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
        g.bench_with_input(BenchmarkId::new("naive_4k", dirty), &dirty, |b, _| {
            b.iter(|| reference::create(&twin, &cur))
        });
        let mut scratch = DiffScratch::new();
        g.bench_with_input(BenchmarkId::new("u64_4k", dirty), &dirty, |b, _| {
            b.iter(|| {
                Diff::create_with(
                    &mut scratch,
                    PageId(0),
                    Interval { proc: 0, seq: 1 },
                    &twin,
                    &cur,
                )
            })
        });
    }
    // The cheapest exit: identical pages short-circuit on the whole-buffer
    // compare before any word scan.
    let clean = Page::zeroed(PAGE_SIZE);
    let clean2 = clean.twin();
    let mut scratch = DiffScratch::new();
    g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    g.bench_function("u64_4k_identical", |b| {
        b.iter(|| {
            Diff::create_with(
                &mut scratch,
                PageId(0),
                Interval { proc: 0, seq: 1 },
                &clean,
                &clean2,
            )
        })
    });
    g.finish();
}

/// Applying a diff to a home copy, with and without the buffer pool.
fn bench_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_apply");
    for &dirty in &SPARSITY {
        let (twin, cur) = dirty_page(dirty);
        let diff = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur).unwrap();
        g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
        let mut target = twin.clone();
        g.bench_with_input(BenchmarkId::new("plain_4k", dirty), &dirty, |b, _| {
            b.iter(|| diff.apply(&mut target))
        });
        let mut pooled = twin.clone();
        let mut pool = PagePool::new(PAGE_SIZE);
        g.bench_with_input(BenchmarkId::new("pooled_4k", dirty), &dirty, |b, _| {
            b.iter(|| diff.apply_pooled(&mut pooled, &mut pool))
        });
    }
    g.finish();
}

/// One interval's twin lifecycle: twin (refcount bump), dirty one word
/// (copy-on-write draws from the pool), diff, recycle. Steady state should
/// be allocation-free: every COW is a pool hit.
fn bench_twin_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("twin_cycle");
    g.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    let mut page = Page::zeroed(PAGE_SIZE);
    let mut pool = PagePool::new(PAGE_SIZE);
    let mut scratch = DiffScratch::new();
    let mut seq = 0u32;
    g.bench_function("pooled_4k", |b| {
        b.iter(|| {
            let twin = page.twin();
            seq = seq.wrapping_add(1);
            page.write_pooled(&mut pool, 0, &seq.to_ne_bytes());
            let d = Diff::create_with(
                &mut scratch,
                PageId(0),
                Interval { proc: 0, seq },
                &twin,
                &page,
            );
            pool.recycle(twin);
            d
        })
    });
    let stats = pool.stats();
    println!(
        "# twin_cycle pool: {} hits, {} misses, {} recycled, {} rejected",
        stats.hits, stats.misses, stats.recycled, stats.rejected
    );
    g.finish();
}

criterion_group!(benches, bench_create, bench_apply, bench_twin_cycle);
criterion_main!(benches);
