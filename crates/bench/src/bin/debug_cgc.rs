use ftdsm::{run, CkptPolicy, ClusterConfig, DiskMode, DiskModel};
use splash::{water_sp, WaterSpParams};
fn main() {
    let cfg = ClusterConfig::fault_tolerant(8)
        .with_page_size(4096)
        .with_policy(CkptPolicy::LogOverflow { l: 0.1 })
        .with_disk(DiskModel::scsi_1999(1.0, DiskMode::Stall));
    let r = run(cfg, &[], |p| water_sp(p, &WaterSpParams::paper_scaled()));
    println!("wmax={} ckpts={}", r.max_ckpt_window(), r.total_ckpts());
}
