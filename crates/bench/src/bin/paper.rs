//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dsm-bench --release --bin paper -- all
//! cargo run -p dsm-bench --release --bin paper -- table3
//! cargo run -p dsm-bench --release --bin paper -- fig4 --nodes 8 --disk-scale 8
//! cargo run -p dsm-bench --release --bin paper -- ablate
//! cargo run -p dsm-bench --release --bin paper -- hist
//! ```

use dsm_bench::{fig3, fig4, print_table, run_app, table1, table2, table3, table4, App, Scale};
use ftdsm::{run, CkptPolicy, ClusterConfig, DiskMode, DiskModel, FailureSpec};

fn parse_args() -> (Vec<String>, Scale) {
    let mut scale = Scale::default();
    let mut cmds = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nodes" => scale.nodes = args.next().expect("--nodes N").parse().expect("node count"),
            "--disk-scale" => {
                scale.disk_time_scale = args.next().expect("--disk-scale X").parse().expect("scale")
            }
            "--page" => {
                scale.page_size = args
                    .next()
                    .expect("--page BYTES")
                    .parse()
                    .expect("page size")
            }
            other => cmds.push(other.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }
    (cmds, scale)
}

fn main() {
    let (cmds, scale) = parse_args();
    println!(
        "# ftdsm paper harness: {} nodes, {} B pages, disk time scale {}",
        scale.nodes, scale.page_size, scale.disk_time_scale
    );
    for cmd in &cmds {
        match cmd.as_str() {
            "table1" => do_table1(&scale),
            "table2" => do_table2(&scale),
            "table3" => do_table3(&scale),
            "table4" => do_table4(&scale),
            "fig3" => do_fig3(&scale),
            "fig4" => do_fig4(&scale),
            "ablate" => do_ablate(&scale),
            "sweep" => do_sweep(&scale),
            "recover" => do_recover(&scale),
            "hist" => do_hist(&scale),
            "protocol" => do_protocol(&scale),
            "all" => {
                do_table1(&scale);
                do_table2(&scale);
                do_table3(&scale);
                do_table4(&scale);
                do_fig3(&scale);
                do_fig4(&scale);
            }
            other => eprintln!("unknown command: {other}"),
        }
    }
}

fn do_table1(scale: &Scale) {
    let rows = table1(scale);
    print_table(
        "Table 1: applications and characteristics",
        &["Application", "Problem", "Shared (MB)", "Base time (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    r.problem.clone(),
                    format!("{:.2}", r.shared_mb),
                    format!("{:.2}", r.base_time_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn do_table2(scale: &Scale) {
    let rows = table2(scale);
    print_table(
        "Table 2: message traffic overhead of CGC and LLT",
        &[
            "Application",
            "HLRC traffic (MB)",
            "CGC traffic (MB)",
            "% overhead",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    format!("{:.2}", r.hlrc_traffic_mb),
                    format!("{:.3}", r.cgc_traffic_mb),
                    format!("{:.2}", r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn do_table3(scale: &Scale) {
    let rows = table3(scale);
    print_table(
        "Table 3: performance of independent checkpointing with CGC and LLT",
        &[
            "Application",
            "Policy",
            "Ckpts",
            "Base (s)",
            "FT (s)",
            "% incr",
            "Log (s)",
            "Disk (s)",
            "% overh",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    format!("OF L={}", r.policy_l),
                    r.ckpts.to_string(),
                    format!("{:.2}", r.base_time_s),
                    format!("{:.2}", r.ft_time_s),
                    format!("{:.1}", r.increase_pct),
                    format!("{:.3}", r.logging_s),
                    format!("{:.3}", r.disk_s),
                    format!("{:.2}", r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn do_table4(scale: &Scale) {
    let rows = table4(scale);
    print_table(
        "Table 4: overall efficiency of CGC and LLT",
        &[
            "Application",
            "Wmax",
            "Max log disk (MB)",
            "Disk traffic (MB)",
            "Created (MB)",
            "Saved (MB)",
            "% saved",
            "Discarded (MB)",
            "% disc",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    r.wmax.to_string(),
                    format!("{:.3}", r.max_log_disk_mb),
                    format!("{:.3}", r.total_disk_traffic_mb),
                    format!("{:.3}", r.logs_created_mb),
                    format!("{:.3}", r.logs_saved_mb),
                    format!("{:.0}", r.saved_pct),
                    format!("{:.3}", r.logs_discarded_mb),
                    format!("{:.0}", r.discarded_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn do_fig3(scale: &Scale) {
    println!("\n=== Figure 3: normalized execution time breakdown (base | FT, % of base) ===");
    for row in fig3(scale) {
        println!("\n{}:", row.app);
        for (cat, b, f) in &row.categories {
            let bar = |v: f64| "#".repeat((v / 2.0).round() as usize);
            println!("  {cat:<14} base {b:6.1}% {}", bar(*b));
            println!("  {:<14} FT   {f:6.1}% {}", "", bar(*f));
        }
    }
}

fn do_fig4(scale: &Scale) {
    println!("\n=== Figure 4: stable-log size vs checkpoint number ===");
    for s in fig4(scale) {
        let slope = s.policy_l * s.footprint_mb;
        println!(
            "\n{} (OF L={}, footprint {:.2} MB; unbounded growth would be {:.2} MB/ckpt):",
            s.app, s.policy_l, s.footprint_mb, slope
        );
        for (ckpt, mb) in &s.points {
            let unbounded = slope * *ckpt as f64;
            println!(
                "  ckpt {ckpt:>3}: {mb:8.3} MB  (no-LLT line: {unbounded:8.3} MB)  {}",
                "*".repeat(
                    (mb * 40.0 / (slope * s.points.len() as f64).max(0.001)).min(60.0) as usize
                )
            );
        }
    }
}

/// Ablation: checkpoint-policy comparison on Water-Spatial (the paper's
/// §5.4 discussion of policy choice), plus an L-sensitivity sweep.
/// Cluster-size scaling sweep (the paper's scalability motivation: HLRC
/// was chosen because it scales with cluster size).
fn do_sweep(scale: &Scale) {
    println!("\n=== Scaling sweep: Water-Spatial, base protocol ===");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        let cfg = ClusterConfig::base(n).with_page_size(scale.page_size);
        let r = run_app(App::WaterSp, cfg);
        let t = r.total_traffic();
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", r.wall.as_secs_f64()),
            t.msgs_sent.to_string(),
            format!("{:.2}", t.base_bytes_sent as f64 / 1048576.0),
        ]);
    }
    print_table(
        "node-count scaling",
        &["Nodes", "Time (s)", "Messages", "Traffic (MB)"],
        &rows,
    );
}

/// Recovery-cost experiment (§4.3: replay is local and expected to be
/// faster than the lost execution segment).
fn do_recover(scale: &Scale) {
    println!("\n=== Recovery cost (crash one node mid-run) ===");
    let mut rows = Vec::new();
    for app in App::ALL {
        let clean = run_app(app, scale.ft_config(app));
        // Crash the victim roughly two thirds through its op count.
        let victim = 2usize.min(scale.nodes - 1);
        let at_op = (clean.nodes[victim].ops * 2) / 3;
        let crashed = run(
            scale.ft_config(app),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            move |p| app.run_scaled(p),
        );
        assert_eq!(
            clean.shared_hash,
            crashed.shared_hash,
            "{}: recovery diverged",
            app.name()
        );
        rows.push(vec![
            app.name().to_string(),
            at_op.to_string(),
            format!("{}", crashed.nodes[victim].ft.recoveries),
            format!(
                "{:.3}",
                crashed.nodes[victim].ft.recovery_time.as_secs_f64()
            ),
            format!("{:.3}", clean.wall.as_secs_f64()),
            format!("{:.3}", crashed.wall.as_secs_f64()),
        ]);
    }
    print_table(
        "recovery cost (results verified bit-identical)",
        &[
            "Application",
            "Crash op",
            "Recoveries",
            "Recovery (s)",
            "Clean wall (s)",
            "Crashed wall (s)",
        ],
        &rows,
    );
}

/// Render a nanosecond figure with a readable unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn print_hists(title: &str, hists: &dsm_trace::LatencyHists) {
    println!("\n{title}:");
    println!(
        "  {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "metric", "count", "mean", "p50", "p95", "max"
    );
    for (name, h) in hists.named() {
        if h.count() == 0 {
            continue;
        }
        // `_bytes` histograms are counters, not durations.
        let fmt = if name.ends_with("_bytes") {
            |v: u64| v.to_string()
        } else {
            fmt_ns
        };
        println!(
            "  {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
            name,
            h.count(),
            fmt(h.mean()),
            fmt(h.quantile(0.5)),
            fmt(h.quantile(0.95)),
            fmt(h.max()),
        );
    }
}

/// Protocol latency histograms (page fetch, lock wait, barrier wait, diff
/// apply, checkpoint write, recovery phases), clean and crashed runs.
fn do_hist(scale: &Scale) {
    println!("\n=== Protocol latency histograms (log2-bucketed, ns) ===");
    let clean = run_app(App::WaterSp, scale.ft_config(App::WaterSp));
    print_hists(
        "Water-Spatial, FT, clean run (all nodes merged)",
        &clean.total_hists(),
    );
    let pool = clean.total_pool();
    println!(
        "  page pool: {} hits, {} misses, {} recycled, {} rejected",
        pool.hits, pool.misses, pool.recycled, pool.rejected
    );
    let victim = 2usize.min(scale.nodes - 1);
    let at_op = (clean.nodes[victim].ops * 2) / 3;
    let crashed = run(
        scale.ft_config(App::WaterSp),
        &[FailureSpec {
            node: victim,
            at_op,
        }],
        move |p| App::WaterSp.run_scaled(p),
    );
    print_hists(
        &format!("Water-Spatial, FT, node {victim} crashed at op {at_op}"),
        &crashed.total_hists(),
    );
    print_hists(
        &format!("  recovery detail, victim node {victim} only"),
        &crashed.nodes[victim].hists,
    );
}

/// Remote-fetch round trips and per-kind protocol costs on a barrier-heavy
/// kernel (Water-Spatial, FT). The lines prefixed `protocol_` are parsed by
/// `scripts/bench_baseline.sh` into `BENCH_protocol.json`.
fn do_protocol(scale: &Scale) {
    println!(
        "\n=== Protocol round trips and latencies (Water-Spatial, FT, n={}) ===",
        scale.nodes
    );
    let r = run_app(App::WaterSp, scale.ft_config(App::WaterSp));
    let kinds = r.total_msg_kinds();
    let count = |k: &str| kinds.iter().find(|(n, _)| *n == k).map_or(0, |&(_, c)| c);
    let hists = r.total_hists();
    // Every remote page install (individual fetch or batch prefetch) records
    // one `fetch_copy` sample, so its count is pages fetched; PageReq +
    // PageBatchReq is the number of fetch round trips that produced them.
    let pages_fetched = hists.fetch_copy.count();
    let page_req = count("PageReq");
    let batch_req = count("PageBatchReq");
    let rt_per_page = (page_req + batch_req) as f64 / pages_fetched.max(1) as f64;
    println!("protocol_msgs PageReq {page_req}");
    println!("protocol_msgs PageBatchReq {batch_req}");
    println!("protocol_msgs PageReply {}", count("PageReply"));
    println!("protocol_msgs PageBatchReply {}", count("PageBatchReply"));
    println!("protocol_msgs DiffBatch {}", count("DiffBatch"));
    println!("protocol_pages_fetched {pages_fetched}");
    println!("protocol_round_trips_per_page {rt_per_page:.4}");
    println!(
        "protocol_prefetch hits {} misses {}",
        hists.prefetch_hit.count(),
        hists.prefetch_miss.count()
    );
    for (name, h) in [
        ("page_fetch", &hists.page_fetch),
        ("lock_wait", &hists.lock_wait),
        ("barrier_wait", &hists.barrier_wait),
    ] {
        println!(
            "protocol_hist {name} count {} mean_ns {} p50_ns {} p95_ns {}",
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95)
        );
    }
    print_hists("latency (all nodes merged)", &hists);
    println!("\nservice time by message kind (all nodes summed):");
    for (k, d) in r.total_svc_time_by_kind() {
        println!("  svc_time {k:<16} {:>10.3}ms", d.as_secs_f64() * 1e3);
    }
    println!("\nmessages sent by kind (all nodes summed):");
    for (k, c) in kinds {
        println!("  msg_count {k:<16} {c:>8}");
    }
}

fn do_ablate(scale: &Scale) {
    println!("\n=== Ablation: checkpoint policy (Water-Spatial) ===");
    let mk = |policy: CkptPolicy| -> ClusterConfig {
        ClusterConfig::fault_tolerant(scale.nodes)
            .with_page_size(scale.page_size)
            .with_policy(policy)
            .with_disk(DiskModel::scsi_1999(scale.disk_time_scale, DiskMode::Stall))
    };
    // Wall times at this scale are noisy; take the best of three base runs
    // as the reference.
    let base_s = (0..3)
        .map(|_| {
            run_app(App::WaterSp, scale.base_config())
                .wall
                .as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let mut rows = Vec::new();
    let policies: Vec<(String, CkptPolicy)> = vec![
        ("OF L=0.05".into(), CkptPolicy::LogOverflow { l: 0.05 }),
        ("OF L=0.1".into(), CkptPolicy::LogOverflow { l: 0.1 }),
        ("OF L=0.5".into(), CkptPolicy::LogOverflow { l: 0.5 }),
        ("OF L=1.0".into(), CkptPolicy::LogOverflow { l: 1.0 }),
        ("every 2 steps".into(), CkptPolicy::EverySteps(2)),
        ("every 4 steps".into(), CkptPolicy::EverySteps(4)),
        ("never".into(), CkptPolicy::Never),
    ];
    for (name, policy) in policies {
        let r = run_app(App::WaterSp, mk(policy));
        let max_log: u64 = r
            .nodes
            .iter()
            .map(|x| x.ft.max_stable_log_bytes)
            .max()
            .unwrap_or(0);
        let volatile: u64 = r
            .nodes
            .iter()
            .map(|x| x.ft.log_counters.created_bytes)
            .sum();
        rows.push(vec![
            name,
            r.total_ckpts().to_string(),
            format!("{:.1}", 100.0 * (r.wall.as_secs_f64() - base_s) / base_s),
            format!("{:.3}", max_log as f64 / 1048576.0),
            format!("{:.3}", volatile as f64 / 1048576.0),
            r.max_ckpt_window().to_string(),
        ]);
    }
    print_table(
        "policy ablation (Water-Spatial)",
        &[
            "Policy",
            "Ckpts",
            "% time incr",
            "Max stable log (MB)",
            "Logs created (MB)",
            "Wmax",
        ],
        &rows,
    );

    // Barrier-aligned checkpointing (§5.4): for a barrier-heavy application
    // the paper suggests taking checkpoints at barriers so the stall is
    // amortized inside the barrier wait instead of landing randomly between
    // barriers. Compare against OF(1.0) on Barnes at matched checkpoint
    // counts.
    println!();
    let base_b = (0..3)
        .map(|_| run_app(App::Barnes, scale.base_config()).wall.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    let mut rows = Vec::new();
    for (name, policy) in [
        (
            "OF L=1.0 (paper)".to_string(),
            CkptPolicy::LogOverflow { l: 1.0 },
        ),
        (
            "at every 20th barrier".to_string(),
            CkptPolicy::AtBarrier(20),
        ),
        (
            "at every 40th barrier".to_string(),
            CkptPolicy::AtBarrier(40),
        ),
    ] {
        let r = run_app(App::Barnes, mk(policy));
        rows.push(vec![
            name,
            r.total_ckpts().to_string(),
            format!("{:.1}", 100.0 * (r.wall.as_secs_f64() - base_b) / base_b),
            r.max_ckpt_window().to_string(),
        ]);
    }
    print_table(
        "checkpoint placement ablation (Barnes)",
        &["Policy", "Ckpts", "% time incr", "Wmax"],
        &rows,
    );

    // Page-size ablation: the coherence-unit trade-off (bigger pages mean
    // fewer fetches but more false sharing and larger diff/log volume).
    println!();
    let mut rows = Vec::new();
    for page in [1024usize, 2048, 4096, 8192] {
        let cfg = ClusterConfig::fault_tolerant(scale.nodes)
            .with_page_size(page)
            .with_policy(CkptPolicy::LogOverflow { l: 0.1 })
            .with_disk(DiskModel::scsi_1999(scale.disk_time_scale, DiskMode::Stall));
        let r = run_app(App::WaterSp, cfg);
        let t = r.total_traffic();
        let created: u64 = r
            .nodes
            .iter()
            .map(|x| x.ft.log_counters.created_bytes)
            .sum();
        rows.push(vec![
            page.to_string(),
            format!("{:.2}", r.wall.as_secs_f64()),
            t.msgs_sent.to_string(),
            format!("{:.2}", t.base_bytes_sent as f64 / 1048576.0),
            format!("{:.2}", created as f64 / 1048576.0),
            r.total_ckpts().to_string(),
        ]);
    }
    print_table(
        "page-size ablation (Water-Spatial, OF L=0.1)",
        &[
            "Page (B)",
            "Time (s)",
            "Messages",
            "Traffic (MB)",
            "Logs created (MB)",
            "Ckpts",
        ],
        &rows,
    );
}
