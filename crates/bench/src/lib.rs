#![warn(missing_docs)]
//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 5) on the simulated cluster.
//!
//! Scale disclaimer (see DESIGN.md): problem sizes and the disk-time model
//! are scaled so a full run takes seconds; the harness reproduces the
//! *shape* of the results (relative overheads, window bounds, log-size
//! dynamics), not the absolute 1999 numbers.

use std::time::Duration;

use ftdsm::{run, CkptPolicy, ClusterConfig, DiskMode, DiskModel, Process, RunReport};
use splash::{barnes, water_nsq, water_sp, BarnesParams, WaterNsqParams, WaterSpParams};

/// The three applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Barnes-Hut hierarchical N-body.
    Barnes,
    /// O(n²) molecular dynamics.
    WaterNsq,
    /// Spatial cell-decomposition molecular dynamics.
    WaterSp,
}

impl App {
    /// All three, in the paper's table order.
    pub const ALL: [App; 3] = [App::Barnes, App::WaterNsq, App::WaterSp];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            App::Barnes => "Barnes",
            App::WaterNsq => "Water-Nsq.",
            App::WaterSp => "Water-Sp.",
        }
    }

    /// Problem-size label.
    pub fn problem(self) -> String {
        match self {
            App::Barnes => format!("{} bodies", BarnesParams::paper_scaled().bodies),
            App::WaterNsq => format!("{} mols", WaterNsqParams::paper_scaled().molecules),
            App::WaterSp => {
                let p = WaterSpParams::paper_scaled();
                format!("{} mols", p.side.pow(3) * p.per_cell)
            }
        }
    }

    /// The `OF(L)` limit the paper used per application (Table 3: Barnes
    /// runs with L = 1.0 because of its large log volume per byte of shared
    /// memory; the waters with L = 0.1).
    pub fn policy_l(self) -> f64 {
        match self {
            App::Barnes => 1.0,
            App::WaterNsq => 0.1,
            App::WaterSp => 0.1,
        }
    }

    /// Run the application at benchmark scale.
    pub fn run_scaled(self, p: &mut Process) -> u64 {
        match self {
            App::Barnes => barnes(p, &BarnesParams::paper_scaled()),
            App::WaterNsq => water_nsq(p, &WaterNsqParams::paper_scaled()),
            App::WaterSp => water_sp(p, &WaterSpParams::paper_scaled()),
        }
    }
}

/// Harness-wide scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cluster size (the paper used 8 PCs).
    pub nodes: usize,
    /// Page size (the paper used the 4 KB hardware page).
    pub page_size: usize,
    /// Disk-model time multiplier: >1 models a slower disk relative to the
    /// (scaled-down) computation, which is what surfaces the paper's
    /// checkpoint/barrier interference on Barnes.
    pub disk_time_scale: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            nodes: 8,
            page_size: 4096,
            disk_time_scale: 0.2,
        }
    }
}

impl Scale {
    /// Base-protocol configuration.
    pub fn base_config(&self) -> ClusterConfig {
        ClusterConfig::base(self.nodes).with_page_size(self.page_size)
    }

    /// Fault-tolerant configuration for one application.
    pub fn ft_config(&self, app: App) -> ClusterConfig {
        ClusterConfig::fault_tolerant(self.nodes)
            .with_page_size(self.page_size)
            .with_policy(CkptPolicy::LogOverflow { l: app.policy_l() })
            .with_disk(DiskModel::scsi_1999(self.disk_time_scale, DiskMode::Stall))
    }
}

/// Run one app under a config.
pub fn run_app(app: App, cfg: ClusterConfig) -> RunReport<u64> {
    run(cfg, &[], move |p| app.run_scaled(p))
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// One row of Table 1.
#[derive(Debug)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Problem-size label.
    pub problem: String,
    /// Shared-memory footprint in MB.
    pub shared_mb: f64,
    /// Base-protocol execution time in seconds.
    pub base_time_s: f64,
}

/// Table 1: application characteristics.
pub fn table1(scale: &Scale) -> Vec<Table1Row> {
    App::ALL
        .iter()
        .map(|&app| {
            let r = run_app(app, scale.base_config());
            Table1Row {
                app: app.name(),
                problem: app.problem(),
                shared_mb: mb(r.shared_bytes),
                base_time_s: secs(r.wall),
            }
        })
        .collect()
}

/// One row of Table 2.
#[derive(Debug)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Base HLRC protocol traffic in MB.
    pub hlrc_traffic_mb: f64,
    /// Piggybacked LLT/CGC control traffic in MB.
    pub cgc_traffic_mb: f64,
    /// Control traffic as a percentage of base traffic.
    pub overhead_pct: f64,
}

/// Table 2: message-traffic overhead of the CGC/LLT piggyback.
pub fn table2(scale: &Scale) -> Vec<Table2Row> {
    App::ALL
        .iter()
        .map(|&app| {
            let r = run_app(app, scale.ft_config(app));
            let t = r.total_traffic();
            Table2Row {
                app: app.name(),
                hlrc_traffic_mb: mb(t.base_bytes_sent),
                cgc_traffic_mb: mb(t.ft_bytes_sent),
                overhead_pct: 100.0 * t.ft_overhead_fraction(),
            }
        })
        .collect()
}

/// One row of Table 3.
#[derive(Debug)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// The OF(L) limit used.
    pub policy_l: f64,
    /// Checkpoints taken across the cluster.
    pub ckpts: u64,
    /// Base-protocol execution time in seconds.
    pub base_time_s: f64,
    /// Fault-tolerant execution time in seconds.
    pub ft_time_s: f64,
    /// Execution-time increase over base, percent.
    pub increase_pct: f64,
    /// Per-node average logging/trimming time in seconds.
    pub logging_s: f64,
    /// Per-node average modeled disk-write time in seconds.
    pub disk_s: f64,
    /// Control traffic as a percentage of base traffic.
    pub overhead_pct: f64,
}

/// Table 3: performance of independent checkpointing with CGC and LLT.
pub fn table3(scale: &Scale) -> Vec<Table3Row> {
    App::ALL
        .iter()
        .map(|&app| {
            let base = run_app(app, scale.base_config());
            let ft = run_app(app, scale.ft_config(app));
            let base_s = secs(base.wall);
            let ft_s = secs(ft.wall);
            // Per-node averages, as in the paper.
            let n = ft.nodes.len() as f64;
            let logging: f64 = ft
                .nodes
                .iter()
                .map(|x| secs(x.breakdown.logging))
                .sum::<f64>()
                / n;
            let disk: f64 = ft
                .nodes
                .iter()
                .map(|x| secs(x.breakdown.disk_write))
                .sum::<f64>()
                / n;
            Table3Row {
                app: app.name(),
                policy_l: app.policy_l(),
                ckpts: ft.total_ckpts(),
                base_time_s: base_s,
                ft_time_s: ft_s,
                increase_pct: 100.0 * (ft_s - base_s) / base_s,
                logging_s: logging,
                disk_s: disk,
                overhead_pct: 100.0 * (logging + disk) / base_s,
            }
        })
        .collect()
}

/// One row of Table 4.
#[derive(Debug)]
pub struct Table4Row {
    /// Application name.
    pub app: &'static str,
    /// Largest checkpoint window observed on any node.
    pub wmax: usize,
    /// Largest stable-log residency on any node, MB.
    pub max_log_disk_mb: f64,
    /// Total bytes written to stable storage, MB.
    pub total_disk_traffic_mb: f64,
    /// Volatile log bytes created, MB.
    pub logs_created_mb: f64,
    /// Log bytes first-saved to stable storage, MB.
    pub logs_saved_mb: f64,
    /// Saved as a percentage of created.
    pub saved_pct: f64,
    /// Log bytes discarded by trimming, MB.
    pub logs_discarded_mb: f64,
    /// Discarded as a percentage of created.
    pub discarded_pct: f64,
}

/// Table 4: overall efficiency of CGC and LLT.
pub fn table4(scale: &Scale) -> Vec<Table4Row> {
    App::ALL
        .iter()
        .map(|&app| {
            let r = run_app(app, scale.ft_config(app));
            let created: u64 = r
                .nodes
                .iter()
                .map(|x| x.ft.log_counters.created_bytes)
                .sum();
            let discarded: u64 = r
                .nodes
                .iter()
                .map(|x| x.ft.log_counters.discarded_bytes)
                .sum();
            let saved: u64 = r.nodes.iter().map(|x| x.ft.log_bytes_saved).sum();
            let disk: u64 = r.nodes.iter().map(|x| x.ft.store.bytes_written).sum();
            let max_log: u64 = r
                .nodes
                .iter()
                .map(|x| x.ft.max_stable_log_bytes)
                .max()
                .unwrap_or(0);
            Table4Row {
                app: app.name(),
                wmax: r.max_ckpt_window(),
                max_log_disk_mb: mb(max_log),
                total_disk_traffic_mb: mb(disk),
                logs_created_mb: mb(created),
                logs_saved_mb: mb(saved),
                saved_pct: if created > 0 {
                    100.0 * saved as f64 / created as f64
                } else {
                    0.0
                },
                logs_discarded_mb: mb(discarded),
                discarded_pct: if created > 0 {
                    100.0 * discarded as f64 / created as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One bar pair of Figure 3: the normalized execution-time breakdown.
#[derive(Debug)]
pub struct Fig3Row {
    /// Application name.
    pub app: &'static str,
    /// (category, base %, FT %) — percentages of the *base* execution time,
    /// so the FT bar can exceed 100 like in the paper.
    pub categories: Vec<(&'static str, f64, f64)>,
}

/// Figure 3: normalized execution-time breakdown, base vs fault-tolerant.
pub fn fig3(scale: &Scale) -> Vec<Fig3Row> {
    App::ALL
        .iter()
        .map(|&app| {
            let base = run_app(app, scale.base_config());
            let ft = run_app(app, scale.ft_config(app));
            let bb = base.total_breakdown();
            let fb = ft.total_breakdown();
            let denom = secs(bb.total).max(1e-9);
            let pct = |d: Duration| 100.0 * secs(d) / denom;
            Fig3Row {
                app: app.name(),
                categories: vec![
                    ("Computation", pct(bb.compute()), pct(fb.compute())),
                    ("Page wait", pct(bb.page_wait), pct(fb.page_wait)),
                    ("Lock wait", pct(bb.lock_wait), pct(fb.lock_wait)),
                    ("Barrier wait", pct(bb.barrier_wait), pct(fb.barrier_wait)),
                    ("Protocol", pct(bb.protocol), pct(fb.protocol)),
                    ("Log & Ckp", 0.0, pct(fb.logging) + pct(fb.disk_write)),
                ],
            }
        })
        .collect()
}

/// One application's Figure 4 series.
#[derive(Debug)]
pub struct Fig4Series {
    /// Application name.
    pub app: &'static str,
    /// The OF(L) limit used.
    pub policy_l: f64,
    /// Shared footprint in MB (the unbounded-growth line has slope
    /// `L * footprint` per checkpoint).
    pub footprint_mb: f64,
    /// Max-over-nodes stable-log MB at each checkpoint number.
    pub points: Vec<(u64, f64)>,
}

/// Figure 4: stable-log size dynamics under LLT.
pub fn fig4(scale: &Scale) -> Vec<Fig4Series> {
    App::ALL
        .iter()
        .map(|&app| {
            let r = run_app(app, scale.ft_config(app));
            // Merge per-node curves: for each checkpoint number take the max
            // across nodes (the paper plots per-node curves; max is the
            // envelope).
            let mut by_ckpt: std::collections::BTreeMap<u64, u64> = Default::default();
            for node in &r.nodes {
                for &(seq, bytes) in &node.ft.stable_log_curve {
                    let e = by_ckpt.entry(seq).or_insert(0);
                    *e = (*e).max(bytes);
                }
            }
            Fig4Series {
                app: app.name(),
                policy_l: app.policy_l(),
                footprint_mb: mb(r.shared_bytes),
                points: by_ckpt.into_iter().map(|(s, b)| (s, mb(b))).collect(),
            }
        })
        .collect()
}

/// Simple fixed-width ASCII table printing.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}
