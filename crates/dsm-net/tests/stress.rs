//! Concurrency stress tests for the fabric.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dsm_net::{Event, Fabric, WireSized};

#[derive(Debug, Clone, PartialEq, Eq)]
struct M(usize, u64);
impl WireSized for M {
    fn base_wire_size(&self) -> usize {
        16
    }
}

#[test]
fn concurrent_all_to_all_delivery_is_complete_and_fifo() {
    const N: usize = 6;
    const PER_PAIR: u64 = 500;
    let (fabric, endpoints) = Fabric::<M>::new(N);
    let endpoints: Vec<Arc<_>> = endpoints.into_iter().map(Arc::new).collect();

    let mut handles = Vec::new();
    // Senders: every node sends PER_PAIR numbered messages to every peer.
    for (me, ep) in endpoints.iter().enumerate() {
        let ep = Arc::clone(ep);
        handles.push(thread::spawn(move || {
            for k in 0..PER_PAIR {
                for to in 0..N {
                    if to != me {
                        assert!(ep.send(to, M(me, k)));
                    }
                }
            }
        }));
    }
    // Receivers: drain and check per-sender FIFO.
    let mut receivers = Vec::new();
    for ep in endpoints.iter() {
        let ep = Arc::clone(ep);
        receivers.push(thread::spawn(move || {
            let mut next = [0u64; N];
            let mut got = 0u64;
            while got < PER_PAIR * (N as u64 - 1) {
                match ep.recv() {
                    Some(Event::Msg { from, msg }) => {
                        assert_eq!(msg.0, from);
                        assert_eq!(msg.1, next[from], "per-sender FIFO violated");
                        next[from] += 1;
                        got += 1;
                    }
                    Some(Event::NodeUp { .. }) | Some(Event::Wakeup) => {}
                    None => panic!("fabric closed early"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for h in receivers {
        h.join().unwrap();
    }
    let total = fabric.stats().total();
    assert_eq!(total.msgs_sent, (N * (N - 1)) as u64 * PER_PAIR);
    assert_eq!(total.base_bytes_sent, total.msgs_sent * 16);
}

#[test]
fn crash_during_traffic_never_wedges_senders() {
    let (fabric, endpoints) = Fabric::<M>::new(3);
    let endpoints: Vec<Arc<_>> = endpoints.into_iter().map(Arc::new).collect();
    let ep0 = Arc::clone(&endpoints[0]);
    let sender = thread::spawn(move || {
        for k in 0..10_000 {
            ep0.send(1, M(0, k)); // may be dropped mid-stream
        }
    });
    thread::sleep(std::time::Duration::from_millis(1));
    fabric.crash(1);
    endpoints[1].drain();
    sender.join().unwrap();
    fabric.restart(1);
    // Node 2 observes the NodeUp notification.
    match endpoints[2].recv() {
        Some(Event::NodeUp { node }) => assert_eq!(node, 1),
        other => panic!("expected NodeUp, got {other:?}"),
    }
    // Fresh messages flow again.
    assert!(endpoints[0].send(1, M(0, 1)));
    let stats = fabric.stats().node(0).snapshot();
    assert!(stats.msgs_dropped > 0 || stats.msgs_sent == 10_001);
}

/// The wakeup-driven service-loop shape under churn: a blocking receiver is
/// nudged with [`Endpoint::wake`] through repeated crash/restart cycles and
/// interleaved traffic, and must neither wedge nor miss its shutdown signal.
#[test]
fn wakeups_race_with_crash_restart_and_never_wedge() {
    const ROUNDS: u64 = 300;
    let (fabric, endpoints) = Fabric::<M>::new(2);
    let endpoints: Vec<Arc<_>> = endpoints.into_iter().map(Arc::new).collect();

    let done = Arc::new(AtomicBool::new(false));
    let svc = {
        let ep = Arc::clone(&endpoints[1]);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let (mut msgs, mut wakeups) = (0u64, 0u64);
            loop {
                match ep.recv() {
                    Some(Event::Wakeup) => {
                        wakeups += 1;
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Some(Event::Msg { from, .. }) => {
                        assert_eq!(from, 0);
                        msgs += 1;
                    }
                    Some(Event::NodeUp { .. }) => {}
                    None => break,
                }
            }
            (msgs, wakeups)
        })
    };

    for k in 0..ROUNDS {
        assert!(endpoints[0].send(1, M(0, k)));
        fabric.crash(1);
        // A wakeup is local control flow: it reaches the crashed node's own
        // queue (the runtime wakes its service thread during recovery).
        endpoints[1].wake();
        // Sends to the crashed node are dropped, never delivered late.
        assert!(!endpoints[0].send(1, M(0, k)));
        fabric.restart(1);
    }
    done.store(true, Ordering::SeqCst);
    endpoints[1].wake();
    let (msgs, wakeups) = svc.join().unwrap();
    assert!(wakeups >= 1, "shutdown wakeup was lost");
    assert!(msgs <= ROUNDS, "a dropped message was delivered");
    assert_eq!(fabric.stats().node(0).snapshot().msgs_dropped, ROUNDS);
}
