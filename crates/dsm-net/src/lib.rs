#![warn(missing_docs)]
//! Simulated cluster interconnect.
//!
//! The paper runs over Myrinet with VMMC user-level memory-mapped
//! communication, which gives the DSM protocol reliable, ordered,
//! point-to-point message delivery with very low overhead. This crate
//! provides the same abstraction for a cluster simulated inside one process:
//!
//! * [`Fabric`] — builds `n` connected [`Endpoint`]s (one per node) with
//!   reliable FIFO channels between every pair.
//! * Fail-stop crash simulation: [`Fabric::crash`] marks a node down and
//!   discards its queued input (in-flight messages to a failed process are
//!   lost); sends to a crashed node are dropped and counted. On
//!   [`Fabric::restart`] every peer receives a [`Event::NodeUp`]
//!   notification so blocked requesters can retransmit (requests are
//!   idempotent at the protocol layer).
//! * Byte-accurate traffic accounting via the [`WireSized`] trait, split
//!   into base-protocol bytes and fault-tolerance control (piggyback) bytes
//!   — the measurements behind Table 2 of the paper.

//! * Deterministic fault injection: a seeded [`FaultPlan`] attached with
//!   [`Fabric::set_fault_plan`] drops, delays, duplicates and reorders
//!   messages per `(src, dst, kind)`; [`Fabric::partition`] /
//!   [`Fabric::heal`] model dynamic network partitions. See [`chaos`].

pub mod chaos;
pub mod endpoint;
pub mod stats;

pub use chaos::{FaultPlan, FaultRule};
pub use endpoint::{Endpoint, Event, Fabric, NodeId, NodeStatus, WireSized};
pub use stats::{FabricStats, NodeTraffic, PhaseAcc};
