//! Traffic accounting.
//!
//! Every send is charged to the *sending* node, split into base-protocol
//! bytes and fault-tolerance control bytes (the lazily piggybacked
//! checkpoint timestamps and page-version integers of the LLT/CGC scheme).
//! Table 2 of the paper is the ratio of these two streams.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Per-node traffic counters. All counters are monotonically increasing.
#[derive(Debug, Default)]
pub struct NodeTraffic {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Base-protocol payload bytes sent.
    pub base_bytes_sent: AtomicU64,
    /// Fault-tolerance control (piggyback) bytes sent.
    pub ft_bytes_sent: AtomicU64,
    /// Messages dropped because the destination had crashed.
    pub msgs_dropped: AtomicU64,
    /// Messages lost by chaos injection (the [`crate::FaultPlan`]).
    pub chaos_dropped: AtomicU64,
    /// Messages delayed or reordered by chaos injection.
    pub chaos_delayed: AtomicU64,
    /// Messages duplicated by chaos injection (count of extra copies).
    pub chaos_duplicated: AtomicU64,
    /// Messages blocked by an active network partition.
    pub partition_blocked: AtomicU64,
    /// Sent-message counts by message kind. A handful of kinds exist, so a
    /// linear list under a mutex beats a hash map here.
    kinds: Mutex<Vec<(&'static str, u64)>>,
    /// Receive-side latency attribution per message kind (only populated
    /// while tracing is on: the sender must have stamped a timestamp).
    phases: Mutex<Vec<(&'static str, PhaseAcc)>>,
}

/// Accumulated receive-side latency attribution for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAcc {
    /// Messages attributed.
    pub count: u64,
    /// Total sender hand-off + receiver inbound-queue wait, nanoseconds.
    pub queue_ns: u64,
    /// Total fabric-injected (chaos) delay, nanoseconds.
    pub chaos_ns: u64,
}

impl std::ops::Add for PhaseAcc {
    type Output = PhaseAcc;
    fn add(self, o: PhaseAcc) -> PhaseAcc {
        PhaseAcc {
            count: self.count + o.count,
            queue_ns: self.queue_ns + o.queue_ns,
            chaos_ns: self.chaos_ns + o.chaos_ns,
        }
    }
}

impl NodeTraffic {
    pub(crate) fn record_send(&self, base: usize, ft: usize, kind: &'static str) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.base_bytes_sent
            .fetch_add(base as u64, Ordering::Relaxed);
        self.ft_bytes_sent.fetch_add(ft as u64, Ordering::Relaxed);
        let mut kinds = self.kinds.lock();
        match kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((kind, 1)),
        }
    }

    pub(crate) fn record_drop(&self) {
        self.msgs_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_drop(&self) {
        self.chaos_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_delay(&self) {
        self.chaos_delayed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_dup(&self) {
        self.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_partition_block(&self) {
        self.partition_blocked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recv_phase(&self, kind: &'static str, queue_ns: u64, chaos_ns: u64) {
        let mut phases = self.phases.lock();
        let acc = match phases.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, acc)) => acc,
            None => {
                phases.push((kind, PhaseAcc::default()));
                &mut phases.last_mut().unwrap().1
            }
        };
        acc.count += 1;
        acc.queue_ns += queue_ns;
        acc.chaos_ns += chaos_ns;
    }

    /// Sent-message counts per message kind, sorted by kind name.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut v = self.kinds.lock().clone();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Receive-side latency attribution per message kind, sorted by kind
    /// name. Empty unless tracing was on (attribution needs the sender's
    /// stamped timestamp).
    pub fn phase_counts(&self) -> Vec<(&'static str, PhaseAcc)> {
        let mut v = self.phases.lock().clone();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            base_bytes_sent: self.base_bytes_sent.load(Ordering::Relaxed),
            ft_bytes_sent: self.ft_bytes_sent.load(Ordering::Relaxed),
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
            chaos_dropped: self.chaos_dropped.load(Ordering::Relaxed),
            chaos_delayed: self.chaos_delayed.load(Ordering::Relaxed),
            chaos_duplicated: self.chaos_duplicated.load(Ordering::Relaxed),
            partition_blocked: self.partition_blocked.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one node's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Base-protocol payload bytes sent.
    pub base_bytes_sent: u64,
    /// Fault-tolerance control (piggyback) bytes sent.
    pub ft_bytes_sent: u64,
    /// Messages dropped because the destination had crashed.
    pub msgs_dropped: u64,
    /// Messages lost by chaos injection.
    pub chaos_dropped: u64,
    /// Messages delayed or reordered by chaos injection.
    pub chaos_delayed: u64,
    /// Extra message copies delivered by chaos injection.
    pub chaos_duplicated: u64,
    /// Messages blocked by an active network partition.
    pub partition_blocked: u64,
}

impl TrafficSnapshot {
    /// FT control overhead as a fraction of base traffic (Table 2's last
    /// column). Returns 0 when no base traffic was sent.
    pub fn ft_overhead_fraction(&self) -> f64 {
        if self.base_bytes_sent == 0 {
            0.0
        } else {
            self.ft_bytes_sent as f64 / self.base_bytes_sent as f64
        }
    }
}

impl std::ops::Add for TrafficSnapshot {
    type Output = TrafficSnapshot;
    fn add(self, o: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs_sent: self.msgs_sent + o.msgs_sent,
            base_bytes_sent: self.base_bytes_sent + o.base_bytes_sent,
            ft_bytes_sent: self.ft_bytes_sent + o.ft_bytes_sent,
            msgs_dropped: self.msgs_dropped + o.msgs_dropped,
            chaos_dropped: self.chaos_dropped + o.chaos_dropped,
            chaos_delayed: self.chaos_delayed + o.chaos_delayed,
            chaos_duplicated: self.chaos_duplicated + o.chaos_duplicated,
            partition_blocked: self.partition_blocked + o.partition_blocked,
        }
    }
}

/// Cluster-wide traffic view (one [`NodeTraffic`] per node).
#[derive(Debug)]
pub struct FabricStats {
    per_node: Vec<NodeTraffic>,
}

impl FabricStats {
    pub(crate) fn new(n: usize) -> Self {
        FabricStats {
            per_node: (0..n).map(|_| NodeTraffic::default()).collect(),
        }
    }

    /// Counters for one node.
    pub fn node(&self, id: usize) -> &NodeTraffic {
        &self.per_node[id]
    }

    /// Sum of all nodes' counters.
    pub fn total(&self) -> TrafficSnapshot {
        self.per_node
            .iter()
            .map(|t| t.snapshot())
            .fold(TrafficSnapshot::default(), |a, b| a + b)
    }

    /// Cluster-wide receive-side latency attribution per kind, sorted.
    pub fn total_phases(&self) -> Vec<(&'static str, PhaseAcc)> {
        let mut merged: Vec<(&'static str, PhaseAcc)> = Vec::new();
        for t in &self.per_node {
            for (kind, acc) in t.phase_counts() {
                match merged.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, m)) => *m = *m + acc,
                    None => merged.push((kind, acc)),
                }
            }
        }
        merged.sort_unstable_by_key(|&(k, _)| k);
        merged
    }

    /// Cluster-wide sent-message counts per message kind, sorted by kind.
    pub fn total_kinds(&self) -> Vec<(&'static str, u64)> {
        let mut merged: Vec<(&'static str, u64)> = Vec::new();
        for t in &self.per_node {
            for (kind, n) in t.kind_counts() {
                match merged.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, m)) => *m += n,
                    None => merged.push((kind, n)),
                }
            }
        }
        merged.sort_unstable_by_key(|&(k, _)| k);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_across_nodes() {
        let s = FabricStats::new(3);
        s.node(0).record_send(100, 4, "a");
        s.node(2).record_send(50, 0, "b");
        s.node(2).record_drop();
        let t = s.total();
        assert_eq!(t.msgs_sent, 2);
        assert_eq!(t.base_bytes_sent, 150);
        assert_eq!(t.ft_bytes_sent, 4);
        assert_eq!(t.msgs_dropped, 1);
    }

    #[test]
    fn kind_counts_aggregate_and_sort() {
        let s = FabricStats::new(2);
        s.node(0).record_send(10, 0, "PageReq");
        s.node(0).record_send(10, 0, "DiffBatch");
        s.node(1).record_send(10, 0, "PageReq");
        assert_eq!(
            s.node(0).kind_counts(),
            vec![("DiffBatch", 1), ("PageReq", 1)]
        );
        assert_eq!(s.total_kinds(), vec![("DiffBatch", 1), ("PageReq", 2)]);
    }

    #[test]
    fn overhead_fraction_guards_zero() {
        let t = TrafficSnapshot::default();
        assert_eq!(t.ft_overhead_fraction(), 0.0);
        let t = TrafficSnapshot {
            base_bytes_sent: 200,
            ft_bytes_sent: 1,
            ..Default::default()
        };
        assert!((t.ft_overhead_fraction() - 0.005).abs() < 1e-12);
    }
}
