//! Deterministic, seed-driven fault injection for the fabric.
//!
//! A [`FaultPlan`] attached to a [`crate::Fabric`] perturbs message delivery
//! at send time: messages can be dropped, duplicated, delayed, reordered
//! (a short random delay) or blocked by a dynamic network partition, per
//! `(src, dst, kind)` match. All randomness comes from one seed expanded
//! into an independent splitmix64 stream per sending node, so a run's fault
//! decisions are a pure function of the seed and each sender's send
//! sequence — any failure is reproducible by re-running with the same seed.
//!
//! Recovery-protocol messages (kind names starting with `Rec`) are exempt
//! by default: the recovery handshake is the reliable control plane of the
//! protocol (the paper assumes it runs over a healthy fabric once the
//! failure is detected). Tests can clear the exemption list to torture the
//! recovery path too.

use std::time::Duration;

use crate::endpoint::NodeId;

/// Deterministic splitmix64 stream (no external RNG crates in this
/// workspace). Good enough statistical quality for fault injection.
#[derive(Debug, Clone)]
pub(crate) struct Rng(pub u64);

impl Rng {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive; `lo <= hi`).
    pub(crate) fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// One fault-injection rule. `None` fields are wildcards; the first rule in
/// the plan matching `(src, dst, kind)` decides a message's fate.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Match messages from this sender only (`None` = any).
    pub src: Option<NodeId>,
    /// Match messages to this receiver only (`None` = any).
    pub dst: Option<NodeId>,
    /// Match this message kind only, e.g. `"PageReq"` (`None` = any).
    pub kind: Option<&'static str>,
    /// Probability the message is silently dropped.
    pub drop: f64,
    /// Probability the message is delivered twice (the duplicate takes a
    /// short random detour, so it can arrive out of order).
    pub dup: f64,
    /// Probability the message is delayed by a uniform sample from
    /// `[delay_min, delay_max]`.
    pub delay: f64,
    /// Lower bound of the delay window.
    pub delay_min: Duration,
    /// Upper bound of the delay window.
    pub delay_max: Duration,
    /// Probability the message takes a short random detour (50–500 µs),
    /// letting later sends overtake it: reordering.
    pub reorder: f64,
}

impl FaultRule {
    /// A rule matching every message, injecting nothing (builder seed).
    pub fn all() -> FaultRule {
        FaultRule {
            src: None,
            dst: None,
            kind: None,
            drop: 0.0,
            dup: 0.0,
            delay: 0.0,
            delay_min: Duration::from_micros(100),
            delay_max: Duration::from_millis(1),
            reorder: 0.0,
        }
    }

    /// Restrict to one sender.
    pub fn from_src(mut self, src: NodeId) -> Self {
        self.src = Some(src);
        self
    }

    /// Restrict to one receiver.
    pub fn to_dst(mut self, dst: NodeId) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Restrict to one message kind (the [`crate::WireSized::kind_name`]).
    pub fn of_kind(mut self, kind: &'static str) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Set the drop probability.
    pub fn dropping(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the duplication probability.
    pub fn duplicating(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }

    /// Set the delay probability and window.
    pub fn delaying(mut self, p: f64, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "delay window inverted");
        self.delay = p;
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Set the reorder probability.
    pub fn reordering(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    fn matches(&self, src: NodeId, dst: NodeId, kind: &str) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.kind.is_none_or(|k| k == kind)
    }

    /// True when this rule can need the delivery pump thread.
    pub(crate) fn needs_pump(&self) -> bool {
        self.dup > 0.0 || self.delay > 0.0 || self.reorder > 0.0
    }
}

/// A seeded set of fault rules, attached to a fabric with
/// [`crate::Fabric::set_fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed all fault decisions derive from.
    pub seed: u64,
    /// Rules, first match wins.
    pub rules: Vec<FaultRule>,
    /// Message-kind prefixes exempt from injection (default `["Rec"]`, the
    /// recovery control plane).
    pub exempt_prefixes: Vec<&'static str>,
}

impl FaultPlan {
    /// An empty plan (no rules, recovery exempt).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            exempt_prefixes: vec!["Rec"],
        }
    }

    /// Append a rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Subject recovery traffic to injection too (clears the exemptions).
    pub fn including_recovery(mut self) -> Self {
        self.exempt_prefixes.clear();
        self
    }

    /// A generally lossy network: 2% drop, 1% duplication, 5% delay of
    /// 100 µs–2 ms, 5% reorder, on every non-recovery message.
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan::new(seed).with_rule(
            FaultRule::all()
                .dropping(0.02)
                .duplicating(0.01)
                .delaying(0.05, Duration::from_micros(100), Duration::from_millis(2))
                .reordering(0.05),
        )
    }

    /// True when any rule can delay, duplicate or reorder (the fabric then
    /// runs a delivery pump thread).
    pub(crate) fn needs_pump(&self) -> bool {
        self.rules.iter().any(|r| r.needs_pump())
    }
}

/// What the chaos layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message.
    Drop,
    /// Deliver now and once more after `detour`.
    Dup {
        /// Delay of the duplicate copy.
        detour: Duration,
    },
    /// Deliver after a delay.
    Delay {
        /// The sampled delay.
        by: Duration,
    },
}

/// Live injection state derived from a [`FaultPlan`]: the rules plus one
/// RNG stream per sending node (`seed ^ splitmix(node)`), each behind its
/// own lock so senders never contend with each other.
pub(crate) struct ChaosState {
    rules: Vec<FaultRule>,
    exempt_prefixes: Vec<&'static str>,
    rngs: Vec<parking_lot::Mutex<Rng>>,
}

impl ChaosState {
    pub(crate) fn new(plan: &FaultPlan, n: usize) -> ChaosState {
        ChaosState {
            rules: plan.rules.clone(),
            exempt_prefixes: plan.exempt_prefixes.clone(),
            rngs: (0..n)
                .map(|node| {
                    // Decorrelate the per-node streams.
                    let mut mix = Rng(node as u64);
                    parking_lot::Mutex::new(Rng(plan.seed ^ mix.next_u64()))
                })
                .collect(),
        }
    }

    /// Decide the fate of one message. Consumes randomness from the
    /// sender's stream only.
    pub(crate) fn decide(&self, src: NodeId, dst: NodeId, kind: &str) -> Fate {
        if self.exempt_prefixes.iter().any(|p| kind.starts_with(p)) {
            return Fate::Deliver;
        }
        let Some(rule) = self.rules.iter().find(|r| r.matches(src, dst, kind)) else {
            return Fate::Deliver;
        };
        let mut rng = self.rngs[src].lock();
        if rule.drop > 0.0 && rng.next_f64() < rule.drop {
            return Fate::Drop;
        }
        if rule.dup > 0.0 && rng.next_f64() < rule.dup {
            let detour = Duration::from_micros(rng.next_range(50, 500));
            return Fate::Dup { detour };
        }
        if rule.delay > 0.0 && rng.next_f64() < rule.delay {
            let by = Duration::from_micros(rng.next_range(
                rule.delay_min.as_micros() as u64,
                rule.delay_max.as_micros() as u64,
            ));
            return Fate::Delay { by };
        }
        if rule.reorder > 0.0 && rng.next_f64() < rule.reorder {
            let by = Duration::from_micros(rng.next_range(50, 500));
            return Fate::Delay { by };
        }
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_deterministic_and_decorrelated() {
        let mut a = Rng(42);
        let mut b = Rng(42);
        let mut c = Rng(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        let mut r = Rng(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.next_range(3, 9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::all().of_kind("PageReq").dropping(1.0))
            .with_rule(FaultRule::all().dropping(0.0));
        let st = ChaosState::new(&plan, 2);
        assert_eq!(st.decide(0, 1, "PageReq"), Fate::Drop);
        assert_eq!(st.decide(0, 1, "DiffBatch"), Fate::Deliver);
    }

    #[test]
    fn recovery_kinds_are_exempt_by_default() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::all().dropping(1.0));
        let st = ChaosState::new(&plan, 2);
        assert_eq!(st.decide(0, 1, "RecLogReq"), Fate::Deliver);
        assert_eq!(st.decide(0, 1, "RecPageReq"), Fate::Deliver);
        assert_eq!(st.decide(0, 1, "PageReq"), Fate::Drop);
        let st = ChaosState::new(&plan.clone().including_recovery(), 2);
        assert_eq!(st.decide(0, 1, "RecLogReq"), Fate::Drop);
    }

    #[test]
    fn src_dst_matching() {
        let plan =
            FaultPlan::new(9).with_rule(FaultRule::all().from_src(0).to_dst(2).dropping(1.0));
        let st = ChaosState::new(&plan, 3);
        assert_eq!(st.decide(0, 2, "PageReq"), Fate::Drop);
        assert_eq!(st.decide(0, 1, "PageReq"), Fate::Deliver);
        assert_eq!(st.decide(1, 2, "PageReq"), Fate::Deliver);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::lossy(0xFEED);
        let a = ChaosState::new(&plan, 4);
        let b = ChaosState::new(&plan, 4);
        for i in 0..500 {
            let kind = if i % 2 == 0 { "PageReq" } else { "DiffBatch" };
            assert_eq!(a.decide(1, 2, kind), b.decide(1, 2, kind));
        }
    }

    #[test]
    fn delay_samples_stay_in_window() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::all().delaying(
            1.0,
            Duration::from_micros(200),
            Duration::from_micros(400),
        ));
        let st = ChaosState::new(&plan, 2);
        for _ in 0..200 {
            match st.decide(0, 1, "PageReq") {
                Fate::Delay { by } => {
                    assert!(by >= Duration::from_micros(200) && by <= Duration::from_micros(400))
                }
                f => panic!("expected delay, got {f:?}"),
            }
        }
    }
}
