//! Endpoints and the fabric connecting them.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dsm_trace::{EventKind, NodeTracer};
use parking_lot::RwLock;

use crate::stats::FabricStats;

/// Index of a node in the cluster, `0..n`.
pub type NodeId = usize;

/// Liveness of a node as seen by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Normal operation (includes a node that is executing its recovery
    /// procedure — it can already exchange messages again).
    Up,
    /// Fail-stopped: input discarded, sends to it dropped.
    Crashed,
}

/// Messages must report their encoded size so traffic can be accounted
/// without actually serializing on the hot path.
pub trait WireSized {
    /// Encoded size of the base-protocol part of the message, in bytes.
    fn base_wire_size(&self) -> usize;
    /// Encoded size of the fault-tolerance control (piggyback) part.
    fn ft_wire_size(&self) -> usize {
        0
    }
    /// Short stable message-kind label for tracing (e.g. `"PageReq"`).
    fn kind_name(&self) -> &'static str {
        "msg"
    }
}

/// What an endpoint receives: either a peer message or a fabric control
/// event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message from `from`.
    Msg {
        /// The sender.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// Node `node` restarted after a crash; blocked requesters should
    /// retransmit any request they still owe an answer for.
    NodeUp {
        /// The restarted node.
        node: NodeId,
    },
    /// Self-posted nudge (see [`Endpoint::wake`]): a blocking receiver
    /// should re-check its shutdown/state flags. Carries no payload.
    Wakeup,
}

struct FabricShared<M> {
    status: RwLock<Vec<NodeStatus>>,
    senders: Vec<Sender<Event<M>>>,
    stats: FabricStats,
}

/// Builder/handle for a simulated cluster interconnect of `n` nodes.
pub struct Fabric<M> {
    shared: Arc<FabricShared<M>>,
    n: usize,
}

impl<M: Send + WireSized> Fabric<M> {
    /// Create a fabric of `n` nodes; returns the fabric handle and one
    /// endpoint per node.
    pub fn new(n: usize) -> (Fabric<M>, Vec<Endpoint<M>>) {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(FabricShared {
            status: RwLock::new(vec![NodeStatus::Up; n]),
            senders,
            stats: FabricStats::new(n),
        });
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| Endpoint {
                id,
                n,
                rx,
                shared: Arc::clone(&shared),
                tracer: NodeTracer::disabled(),
            })
            .collect();
        (Fabric { shared, n }, endpoints)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the fabric has no nodes (never; for clippy).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.shared.stats
    }

    /// Status of `node`.
    pub fn status(&self, node: NodeId) -> NodeStatus {
        self.shared.status.read()[node]
    }

    /// Fail-stop `node`: subsequent sends to it are dropped. The victim's
    /// already-queued input is discarded by the node runtime calling
    /// [`Endpoint::drain`] (the receiver is owned by the endpoint), modeling
    /// the loss of in-flight messages to a failed process.
    pub fn crash(&self, node: NodeId) {
        let mut st = self.shared.status.write();
        assert_eq!(st[node], NodeStatus::Up, "node {node} is already crashed");
        st[node] = NodeStatus::Crashed;
    }

    /// Restart `node` after a crash and notify every *other* node with
    /// [`Event::NodeUp`] so blocked requesters retransmit.
    pub fn restart(&self, node: NodeId) {
        {
            let mut st = self.shared.status.write();
            assert_eq!(st[node], NodeStatus::Crashed, "node {node} is not crashed");
            st[node] = NodeStatus::Up;
        }
        for (peer, tx) in self.shared.senders.iter().enumerate() {
            if peer != node {
                let _ = tx.send(Event::NodeUp { node });
            }
        }
    }
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            shared: Arc::clone(&self.shared),
            n: self.n,
        }
    }
}

/// One node's attachment to the fabric.
pub struct Endpoint<M> {
    id: NodeId,
    n: usize,
    rx: Receiver<Event<M>>,
    shared: Arc<FabricShared<M>>,
    tracer: NodeTracer,
}

impl<M: Send + WireSized> Endpoint<M> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Attach a tracer so sends/receives emit `MsgSend`/`MsgRecv` events.
    /// Called once at cluster construction, before the endpoint is shared.
    pub fn attach_tracer(&mut self, tracer: NodeTracer) {
        self.tracer = tracer;
    }

    fn note_recv(&self, ev: &Event<M>) {
        if self.tracer.enabled() {
            if let Event::Msg { from, msg } = ev {
                self.tracer.emit(EventKind::MsgRecv {
                    kind: msg.kind_name(),
                    from: *from,
                    bytes: (msg.base_wire_size() + msg.ft_wire_size()) as u32,
                });
            }
        }
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Send `msg` to `to`. Delivery is reliable and FIFO per sender-receiver
    /// pair unless the destination is crashed, in which case the message is
    /// dropped (and counted). Returns `true` when the message was delivered
    /// to the destination queue.
    pub fn send(&self, to: NodeId, msg: M) -> bool {
        assert_ne!(to, self.id, "self-sends are a protocol bug");
        let traffic = self.shared.stats.node(self.id);
        if self.shared.status.read()[to] == NodeStatus::Crashed {
            traffic.record_drop();
            return false;
        }
        traffic.record_send(msg.base_wire_size(), msg.ft_wire_size(), msg.kind_name());
        if self.tracer.enabled() {
            self.tracer.emit(EventKind::MsgSend {
                kind: msg.kind_name(),
                to,
                bytes: (msg.base_wire_size() + msg.ft_wire_size()) as u32,
            });
        }
        // Unbounded channel: send only fails if the receiver was dropped,
        // which only happens at cluster teardown.
        self.shared.senders[to]
            .send(Event::Msg { from: self.id, msg })
            .is_ok()
    }

    /// Post an [`Event::Wakeup`] to *this* endpoint's own queue, nudging a
    /// thread blocked in [`Endpoint::recv`] to re-check its state. Not
    /// routed through the fabric: wakeups are local control flow, so they
    /// bypass crash status and traffic accounting.
    pub fn wake(&self) {
        let _ = self.shared.senders[self.id].send(Event::Wakeup);
    }

    /// Blocking receive.
    pub fn recv(&self) -> Option<Event<M>> {
        let ev = self.rx.recv().ok();
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, d: Duration) -> Option<Event<M>> {
        let ev = match self.rx.recv_timeout(d) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        };
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Event<M>> {
        let ev = self.rx.try_recv().ok();
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Discard everything queued for this endpoint (used when simulating the
    /// restart of a crashed node: whatever was queued before/during the
    /// crash is lost). Returns the number of discarded events.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }

    /// Current status of a peer.
    pub fn peer_status(&self, node: NodeId) -> NodeStatus {
        self.shared.status.read()[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestMsg(u32, usize, usize);
    impl WireSized for TestMsg {
        fn base_wire_size(&self) -> usize {
            self.1
        }
        fn ft_wire_size(&self) -> usize {
            self.2
        }
    }

    #[test]
    fn point_to_point_fifo_delivery() {
        let (_fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[0].send(1, TestMsg(1, 10, 0));
        eps[0].send(1, TestMsg(2, 10, 0));
        assert_eq!(
            eps[1].recv(),
            Some(Event::Msg {
                from: 0,
                msg: TestMsg(1, 10, 0)
            })
        );
        assert_eq!(
            eps[1].recv(),
            Some(Event::Msg {
                from: 0,
                msg: TestMsg(2, 10, 0)
            })
        );
    }

    #[test]
    fn traffic_is_charged_to_sender() {
        let (fabric, eps) = Fabric::<TestMsg>::new(3);
        eps[0].send(1, TestMsg(0, 100, 8));
        eps[0].send(2, TestMsg(0, 50, 0));
        eps[1].send(0, TestMsg(0, 7, 0));
        let s0 = fabric.stats().node(0).snapshot();
        assert_eq!(s0.msgs_sent, 2);
        assert_eq!(s0.base_bytes_sent, 150);
        assert_eq!(s0.ft_bytes_sent, 8);
        assert_eq!(fabric.stats().total().msgs_sent, 3);
    }

    #[test]
    fn sends_to_crashed_node_are_dropped_and_counted() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.crash(1);
        assert!(!eps[0].send(1, TestMsg(9, 10, 0)));
        assert_eq!(fabric.stats().node(0).snapshot().msgs_dropped, 1);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn restart_notifies_peers() {
        let (fabric, eps) = Fabric::<TestMsg>::new(3);
        fabric.crash(2);
        fabric.restart(2);
        assert_eq!(eps[0].recv(), Some(Event::NodeUp { node: 2 }));
        assert_eq!(eps[1].recv(), Some(Event::NodeUp { node: 2 }));
        // The restarted node itself gets no NodeUp.
        assert!(eps[2].try_recv().is_none());
        // And messaging works again.
        assert!(eps[0].send(2, TestMsg(5, 1, 0)));
        assert!(matches!(eps[2].recv(), Some(Event::Msg { from: 0, .. })));
    }

    #[test]
    fn drain_discards_queued_input() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[0].send(1, TestMsg(1, 1, 0));
        eps[0].send(1, TestMsg(2, 1, 0));
        fabric.crash(1);
        assert_eq!(eps[1].drain(), 2);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn wake_unblocks_own_receiver_without_traffic() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[1].wake();
        assert_eq!(eps[1].recv(), Some(Event::Wakeup));
        // Wakeups are local control flow: no send is charged, and they are
        // not delivered to peers.
        assert_eq!(fabric.stats().total().msgs_sent, 0);
        assert!(eps[0].try_recv().is_none());
        // A wakeup works even while the node is marked crashed (the runtime
        // wakes its own service thread during teardown and recovery).
        fabric.crash(1);
        eps[1].wake();
        assert_eq!(eps[1].recv(), Some(Event::Wakeup));
    }

    #[test]
    #[should_panic(expected = "already crashed")]
    fn double_crash_rejected() {
        let (fabric, _eps) = Fabric::<TestMsg>::new(2);
        fabric.crash(0);
        fabric.crash(0);
    }
}
