//! Endpoints and the fabric connecting them.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dsm_trace::{EventKind, NodeTracer};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::chaos::{ChaosState, Fate, FaultPlan};
use crate::stats::FabricStats;

/// Index of a node in the cluster, `0..n`.
pub type NodeId = usize;

/// Liveness of a node as seen by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Normal operation (includes a node that is executing its recovery
    /// procedure — it can already exchange messages again).
    Up,
    /// Fail-stopped: input discarded, sends to it dropped.
    Crashed,
}

/// Messages must report their encoded size so traffic can be accounted
/// without actually serializing on the hot path.
///
/// The trace-context hooks (`stamp_send`, `add_chaos_delay`, `trace_view`)
/// default to no-ops so size-only message types keep working; a message
/// carrying a [`dsm_trace::TraceCtx`] overrides them and gets causal
/// cross-node flow stitching plus queue/chaos latency attribution for free.
pub trait WireSized {
    /// Encoded size of the base-protocol part of the message, in bytes.
    fn base_wire_size(&self) -> usize;
    /// Encoded size of the fault-tolerance control (piggyback) part.
    fn ft_wire_size(&self) -> usize {
        0
    }
    /// Short stable message-kind label for tracing (e.g. `"PageReq"`).
    fn kind_name(&self) -> &'static str {
        "msg"
    }
    /// Stamp a fresh trace context at send time: the stamping node, a
    /// per-endpoint monotonic sequence number (starting at 1), and the
    /// send timestamp in trace-epoch nanoseconds (0 when tracing is off).
    /// Must preserve any parent flow already set by the sender.
    fn stamp_send(&mut self, _origin: u32, _seq: u64, _now_ns: u64) {}
    /// Accumulate `ns` of fabric-injected delay (chaos Delay rules and
    /// duplicate detours) so the receive side can subtract it from the
    /// observed transit time.
    fn add_chaos_delay(&mut self, _ns: u64) {}
    /// Receive-side view of the stamped context:
    /// `(flow, parent, sent_at_ns, chaos_delay_ns)`. All zeros when the
    /// message carries no context.
    fn trace_view(&self) -> (u64, u64, u64, u64) {
        (0, 0, 0, 0)
    }
}

/// What an endpoint receives: either a peer message or a fabric control
/// event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message from `from`.
    Msg {
        /// The sender.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// Node `node` restarted after a crash; blocked requesters should
    /// retransmit any request they still owe an answer for.
    NodeUp {
        /// The restarted node.
        node: NodeId,
    },
    /// Self-posted nudge (see [`Endpoint::wake`]): a blocking receiver
    /// should re-check its shutdown/state flags. Carries no payload.
    Wakeup,
}

struct FabricShared<M> {
    status: RwLock<Vec<NodeStatus>>,
    senders: Vec<Sender<Event<M>>>,
    stats: FabricStats,
    /// Fast-path gate: false means no chaos plan and no partition, so
    /// [`Endpoint::send`] skips all injection checks.
    chaos_on: AtomicBool,
    chaos: RwLock<Option<ChaosState>>,
    /// Partition group per node; empty = fully connected. Messages whose
    /// endpoints sit in different groups are silently lost.
    partition: RwLock<Vec<u32>>,
    pump: Mutex<Option<Arc<PumpShared<M>>>>,
    pump_seq: AtomicU64,
}

impl<M> FabricShared<M> {
    fn refresh_chaos_gate(&self) {
        let on = self.chaos.read().is_some() || !self.partition.read().is_empty();
        self.chaos_on.store(on, Ordering::Release);
    }
}

/// A message parked in the delivery pump, due at `due`. Min-heap order by
/// `(due, seq)`; `seq` keeps ties FIFO.
struct Delayed<M> {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, o: &Self) -> bool {
        self.due == o.due && self.seq == o.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due first.
        o.due.cmp(&self.due).then(o.seq.cmp(&self.seq))
    }
}

/// Shared state of the delivery pump thread (delayed/reordered messages).
struct PumpShared<M> {
    q: Mutex<BinaryHeap<Delayed<M>>>,
    cv: Condvar,
}

/// How often the pump re-checks fabric liveness while idle; also the upper
/// bound on how long the thread outlives a dropped fabric.
const PUMP_POLL: Duration = Duration::from_millis(25);

fn spawn_pump<M: Send + WireSized + 'static>(shared: &Arc<FabricShared<M>>) -> Arc<PumpShared<M>> {
    let mut slot = shared.pump.lock();
    if let Some(ps) = slot.as_ref() {
        return Arc::clone(ps);
    }
    let ps = Arc::new(PumpShared {
        q: Mutex::new(BinaryHeap::new()),
        cv: Condvar::new(),
    });
    *slot = Some(Arc::clone(&ps));
    let weak = Arc::downgrade(shared);
    let pump = Arc::clone(&ps);
    std::thread::Builder::new()
        .name("dsm-chaos-pump".into())
        .spawn(move || loop {
            let Some(shared) = weak.upgrade() else { break };
            let mut q = pump.q.lock();
            let now = Instant::now();
            while q.peek().is_some_and(|d| d.due <= now) {
                let d = q.pop().unwrap();
                if shared.status.read()[d.to] == NodeStatus::Crashed {
                    shared.stats.node(d.from).record_drop();
                } else {
                    let _ = shared.senders[d.to].send(Event::Msg {
                        from: d.from,
                        msg: d.msg,
                    });
                }
            }
            let wait = q
                .peek()
                .map(|d| {
                    d.due
                        .saturating_duration_since(Instant::now())
                        .min(PUMP_POLL)
                })
                .unwrap_or(PUMP_POLL);
            drop(shared); // don't keep the fabric alive while parked
            pump.cv.wait_for(&mut q, wait);
        })
        .expect("spawn chaos pump");
    Arc::clone(&ps)
}

/// Builder/handle for a simulated cluster interconnect of `n` nodes.
pub struct Fabric<M> {
    shared: Arc<FabricShared<M>>,
    n: usize,
}

impl<M: Send + WireSized> Fabric<M> {
    /// Create a fabric of `n` nodes; returns the fabric handle and one
    /// endpoint per node.
    pub fn new(n: usize) -> (Fabric<M>, Vec<Endpoint<M>>) {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(FabricShared {
            status: RwLock::new(vec![NodeStatus::Up; n]),
            senders,
            stats: FabricStats::new(n),
            chaos_on: AtomicBool::new(false),
            chaos: RwLock::new(None),
            partition: RwLock::new(Vec::new()),
            pump: Mutex::new(None),
            pump_seq: AtomicU64::new(0),
        });
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| Endpoint {
                id,
                n,
                rx,
                shared: Arc::clone(&shared),
                tracer: NodeTracer::disabled(),
                ctx_seq: AtomicU64::new(0),
            })
            .collect();
        (Fabric { shared, n }, endpoints)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the fabric has no nodes (never; for clippy).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.shared.stats
    }

    /// Status of `node`.
    pub fn status(&self, node: NodeId) -> NodeStatus {
        self.shared.status.read()[node]
    }

    /// Fail-stop `node`: subsequent sends to it are dropped. The victim's
    /// already-queued input is discarded by the node runtime calling
    /// [`Endpoint::drain`] (the receiver is owned by the endpoint), modeling
    /// the loss of in-flight messages to a failed process.
    pub fn crash(&self, node: NodeId) {
        let mut st = self.shared.status.write();
        assert_eq!(st[node], NodeStatus::Up, "node {node} is already crashed");
        st[node] = NodeStatus::Crashed;
    }

    /// Restart `node` after a crash and notify every *other* node with
    /// [`Event::NodeUp`] so blocked requesters retransmit.
    pub fn restart(&self, node: NodeId) {
        self.restart_silent(node);
        for (peer, tx) in self.shared.senders.iter().enumerate() {
            if peer != node {
                let _ = tx.send(Event::NodeUp { node });
            }
        }
    }

    /// Restart `node` after a crash *without* telling anyone: peers must
    /// discover the restart themselves (heartbeat incarnation bumps in the
    /// membership layer). This is the restart used when failure detection
    /// is on — the orchestrated [`Fabric::restart`] broadcast would be
    /// perfect-knowledge cheating.
    pub fn restart_silent(&self, node: NodeId) {
        let mut st = self.shared.status.write();
        assert_eq!(st[node], NodeStatus::Crashed, "node {node} is not crashed");
        st[node] = NodeStatus::Up;
    }

    /// Split the cluster: nodes in different groups can no longer exchange
    /// messages (sends are silently lost and counted). Every node must
    /// appear in exactly one group. [`Fabric::heal`] reconnects.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut assign = vec![u32::MAX; self.n];
        for (g, members) in groups.iter().enumerate() {
            for &m in *members {
                assert_eq!(assign[m], u32::MAX, "node {m} listed in two groups");
                assign[m] = g as u32;
            }
        }
        assert!(
            assign.iter().all(|&g| g != u32::MAX),
            "every node must be in a partition group"
        );
        *self.shared.partition.write() = assign;
        self.shared.refresh_chaos_gate();
    }

    /// Remove an active partition; all links work again.
    pub fn heal(&self) {
        self.shared.partition.write().clear();
        self.shared.refresh_chaos_gate();
    }

    /// Attach a seeded fault plan; all subsequent sends are subject to it.
    /// Replaces any previous plan (RNG streams restart from the seed).
    pub fn set_fault_plan(&self, plan: &FaultPlan)
    where
        M: 'static,
    {
        if plan.needs_pump() {
            spawn_pump(&self.shared);
        }
        *self.shared.chaos.write() = Some(ChaosState::new(plan, self.n));
        self.shared.refresh_chaos_gate();
    }

    /// Detach the fault plan; delivery is reliable again (already-delayed
    /// messages still arrive).
    pub fn clear_fault_plan(&self) {
        *self.shared.chaos.write() = None;
        self.shared.refresh_chaos_gate();
    }
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            shared: Arc::clone(&self.shared),
            n: self.n,
        }
    }
}

/// One node's attachment to the fabric.
pub struct Endpoint<M> {
    id: NodeId,
    n: usize,
    rx: Receiver<Event<M>>,
    shared: Arc<FabricShared<M>>,
    tracer: NodeTracer,
    /// Monotonic trace-context sequence; `(id, seq)` names a flow.
    ctx_seq: AtomicU64,
}

impl<M: Send + Clone + WireSized> Endpoint<M> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Attach a tracer so sends/receives emit `MsgSend`/`MsgRecv` events.
    /// Called once at cluster construction, before the endpoint is shared.
    pub fn attach_tracer(&mut self, tracer: NodeTracer) {
        self.tracer = tracer;
    }

    fn note_recv(&self, ev: &Event<M>) {
        if self.tracer.enabled() {
            if let Event::Msg { from, msg } = ev {
                let (flow, _parent, sent_at, chaos_ns) = msg.trace_view();
                // Transit minus injected chaos = sender hand-off + inbound
                // queue wait. Only attributable when the send was stamped
                // with a timestamp (tracing was on at the sender too).
                let queue_ns = if sent_at != 0 {
                    let q = self
                        .tracer
                        .now_ns()
                        .saturating_sub(sent_at)
                        .saturating_sub(chaos_ns);
                    self.shared
                        .stats
                        .node(self.id)
                        .record_recv_phase(msg.kind_name(), q, chaos_ns);
                    q
                } else {
                    0
                };
                self.tracer.emit(EventKind::MsgRecv {
                    kind: msg.kind_name(),
                    from: *from,
                    bytes: (msg.base_wire_size() + msg.ft_wire_size()) as u32,
                    flow,
                    queue_ns,
                    chaos_ns: if sent_at != 0 { chaos_ns } else { 0 },
                });
            }
        }
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Send `msg` to `to`. Without a fault plan, delivery is reliable and
    /// FIFO per sender-receiver pair unless the destination is crashed, in
    /// which case the message is dropped (and counted) and `false` is
    /// returned. Under a fault plan or partition the message may be lost,
    /// duplicated, delayed or reordered; the sender can't tell (`true` is
    /// still returned — a real NIC doesn't know the network ate its packet).
    pub fn send(&self, to: NodeId, mut msg: M) -> bool {
        assert_ne!(to, self.id, "self-sends are a protocol bug");
        let traffic = self.shared.stats.node(self.id);
        if self.shared.status.read()[to] == NodeStatus::Crashed {
            traffic.record_drop();
            return false;
        }
        // Stamp the causal context: origin + per-endpoint seq name the
        // flow; the timestamp (trace-epoch ns) is only taken when tracing
        // is on so the disabled path stays a relaxed load + counter bump.
        let seq = self.ctx_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let now_ns = if self.tracer.enabled() {
            self.tracer.now_ns()
        } else {
            0
        };
        msg.stamp_send(self.id as u32, seq, now_ns);
        traffic.record_send(msg.base_wire_size(), msg.ft_wire_size(), msg.kind_name());
        if self.tracer.enabled() {
            let (flow, parent, _, _) = msg.trace_view();
            self.tracer.emit(EventKind::MsgSend {
                kind: msg.kind_name(),
                to,
                bytes: (msg.base_wire_size() + msg.ft_wire_size()) as u32,
                flow,
                parent,
            });
        }
        if self.shared.chaos_on.load(Ordering::Acquire) {
            {
                let part = self.shared.partition.read();
                if !part.is_empty() && part[self.id] != part[to] {
                    traffic.record_partition_block();
                    return true;
                }
            }
            let fate = match self.shared.chaos.read().as_ref() {
                Some(c) => c.decide(self.id, to, msg.kind_name()),
                None => Fate::Deliver,
            };
            match fate {
                Fate::Deliver => {}
                Fate::Drop => {
                    traffic.record_chaos_drop();
                    return true;
                }
                Fate::Dup { detour } => {
                    // Deliver now; the extra copy takes a detour so it can
                    // arrive out of order.
                    traffic.record_chaos_dup();
                    let mut dup = msg.clone();
                    dup.add_chaos_delay(detour.as_nanos() as u64);
                    self.push_delayed(to, dup, detour);
                }
                Fate::Delay { by } => {
                    traffic.record_chaos_delay();
                    msg.add_chaos_delay(by.as_nanos() as u64);
                    self.push_delayed(to, msg, by);
                    return true;
                }
            }
        }
        // Unbounded channel: send only fails if the receiver was dropped,
        // which only happens at cluster teardown.
        self.shared.senders[to]
            .send(Event::Msg { from: self.id, msg })
            .is_ok()
    }

    /// Park `msg` in the delivery pump until `by` elapses. Falls back to
    /// immediate delivery if no pump is running (a plan whose rules need one
    /// always starts it).
    fn push_delayed(&self, to: NodeId, msg: M, by: Duration) {
        let pump = self.shared.pump.lock().as_ref().map(Arc::clone);
        match pump {
            Some(ps) => {
                let d = Delayed {
                    due: Instant::now() + by,
                    seq: self.shared.pump_seq.fetch_add(1, Ordering::Relaxed),
                    from: self.id,
                    to,
                    msg,
                };
                ps.q.lock().push(d);
                ps.cv.notify_one();
            }
            None => {
                let _ = self.shared.senders[to].send(Event::Msg { from: self.id, msg });
            }
        }
    }

    /// Post an [`Event::Wakeup`] to *this* endpoint's own queue, nudging a
    /// thread blocked in [`Endpoint::recv`] to re-check its state. Not
    /// routed through the fabric: wakeups are local control flow, so they
    /// bypass crash status and traffic accounting.
    pub fn wake(&self) {
        let _ = self.shared.senders[self.id].send(Event::Wakeup);
    }

    /// Blocking receive.
    pub fn recv(&self) -> Option<Event<M>> {
        let ev = self.rx.recv().ok();
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, d: Duration) -> Option<Event<M>> {
        let ev = match self.rx.recv_timeout(d) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        };
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Event<M>> {
        let ev = self.rx.try_recv().ok();
        if let Some(ev) = &ev {
            self.note_recv(ev);
        }
        ev
    }

    /// Discard everything queued for this endpoint (used when simulating the
    /// restart of a crashed node: whatever was queued before/during the
    /// crash is lost). Returns the number of discarded events.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }

    /// Current status of a peer.
    pub fn peer_status(&self, node: NodeId) -> NodeStatus {
        self.shared.status.read()[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestMsg(u32, usize, usize);
    impl WireSized for TestMsg {
        fn base_wire_size(&self) -> usize {
            self.1
        }
        fn ft_wire_size(&self) -> usize {
            self.2
        }
    }

    #[test]
    fn point_to_point_fifo_delivery() {
        let (_fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[0].send(1, TestMsg(1, 10, 0));
        eps[0].send(1, TestMsg(2, 10, 0));
        assert_eq!(
            eps[1].recv(),
            Some(Event::Msg {
                from: 0,
                msg: TestMsg(1, 10, 0)
            })
        );
        assert_eq!(
            eps[1].recv(),
            Some(Event::Msg {
                from: 0,
                msg: TestMsg(2, 10, 0)
            })
        );
    }

    #[test]
    fn traffic_is_charged_to_sender() {
        let (fabric, eps) = Fabric::<TestMsg>::new(3);
        eps[0].send(1, TestMsg(0, 100, 8));
        eps[0].send(2, TestMsg(0, 50, 0));
        eps[1].send(0, TestMsg(0, 7, 0));
        let s0 = fabric.stats().node(0).snapshot();
        assert_eq!(s0.msgs_sent, 2);
        assert_eq!(s0.base_bytes_sent, 150);
        assert_eq!(s0.ft_bytes_sent, 8);
        assert_eq!(fabric.stats().total().msgs_sent, 3);
    }

    #[test]
    fn sends_to_crashed_node_are_dropped_and_counted() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.crash(1);
        assert!(!eps[0].send(1, TestMsg(9, 10, 0)));
        assert_eq!(fabric.stats().node(0).snapshot().msgs_dropped, 1);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn restart_notifies_peers() {
        let (fabric, eps) = Fabric::<TestMsg>::new(3);
        fabric.crash(2);
        fabric.restart(2);
        assert_eq!(eps[0].recv(), Some(Event::NodeUp { node: 2 }));
        assert_eq!(eps[1].recv(), Some(Event::NodeUp { node: 2 }));
        // The restarted node itself gets no NodeUp.
        assert!(eps[2].try_recv().is_none());
        // And messaging works again.
        assert!(eps[0].send(2, TestMsg(5, 1, 0)));
        assert!(matches!(eps[2].recv(), Some(Event::Msg { from: 0, .. })));
    }

    #[test]
    fn drain_discards_queued_input() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[0].send(1, TestMsg(1, 1, 0));
        eps[0].send(1, TestMsg(2, 1, 0));
        fabric.crash(1);
        assert_eq!(eps[1].drain(), 2);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn wake_unblocks_own_receiver_without_traffic() {
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        eps[1].wake();
        assert_eq!(eps[1].recv(), Some(Event::Wakeup));
        // Wakeups are local control flow: no send is charged, and they are
        // not delivered to peers.
        assert_eq!(fabric.stats().total().msgs_sent, 0);
        assert!(eps[0].try_recv().is_none());
        // A wakeup works even while the node is marked crashed (the runtime
        // wakes its own service thread during teardown and recovery).
        fabric.crash(1);
        eps[1].wake();
        assert_eq!(eps[1].recv(), Some(Event::Wakeup));
    }

    #[test]
    #[should_panic(expected = "already crashed")]
    fn double_crash_rejected() {
        let (fabric, _eps) = Fabric::<TestMsg>::new(2);
        fabric.crash(0);
        fabric.crash(0);
    }

    #[test]
    fn restart_silent_skips_node_up() {
        let (fabric, eps) = Fabric::<TestMsg>::new(3);
        fabric.crash(2);
        fabric.restart_silent(2);
        assert!(eps[0].try_recv().is_none());
        assert!(eps[1].try_recv().is_none());
        assert!(eps[0].send(2, TestMsg(5, 1, 0)));
        assert!(matches!(eps[2].recv(), Some(Event::Msg { from: 0, .. })));
    }

    #[test]
    fn chaos_drop_loses_messages_and_counts_them() {
        use crate::chaos::{FaultPlan, FaultRule};
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.set_fault_plan(&FaultPlan::new(7).with_rule(FaultRule::all().dropping(1.0)));
        // The sender can't tell: send still reports success.
        assert!(eps[0].send(1, TestMsg(1, 10, 0)));
        assert!(eps[1].try_recv().is_none());
        assert_eq!(fabric.stats().node(0).snapshot().chaos_dropped, 1);
        // Clearing the plan restores reliable delivery.
        fabric.clear_fault_plan();
        eps[0].send(1, TestMsg(2, 10, 0));
        assert!(matches!(eps[1].recv(), Some(Event::Msg { .. })));
    }

    #[test]
    fn chaos_dup_delivers_twice() {
        use crate::chaos::{FaultPlan, FaultRule};
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.set_fault_plan(&FaultPlan::new(7).with_rule(FaultRule::all().duplicating(1.0)));
        eps[0].send(1, TestMsg(1, 10, 0));
        let a = eps[1].recv_timeout(Duration::from_secs(2));
        let b = eps[1].recv_timeout(Duration::from_secs(2));
        let want = Event::Msg {
            from: 0,
            msg: TestMsg(1, 10, 0),
        };
        assert_eq!(a, Some(want.clone()));
        assert_eq!(b, Some(want));
        assert_eq!(fabric.stats().node(0).snapshot().chaos_duplicated, 1);
        // One send was charged, not two.
        assert_eq!(fabric.stats().node(0).snapshot().msgs_sent, 1);
    }

    #[test]
    fn chaos_delay_still_delivers() {
        use crate::chaos::{FaultPlan, FaultRule};
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.set_fault_plan(&FaultPlan::new(7).with_rule(FaultRule::all().delaying(
            1.0,
            Duration::from_millis(1),
            Duration::from_millis(5),
        )));
        eps[0].send(1, TestMsg(9, 10, 0));
        // Nothing immediately (the message is parked in the pump)…
        assert!(eps[1].try_recv().is_none());
        // …but it arrives once the delay elapses.
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(2)),
            Some(Event::Msg {
                from: 0,
                msg: TestMsg(9, 10, 0)
            })
        );
        assert_eq!(fabric.stats().node(0).snapshot().chaos_delayed, 1);
    }

    #[test]
    fn delayed_messages_can_reorder() {
        use crate::chaos::{FaultPlan, FaultRule};
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct Kinded(u32, &'static str);
        impl WireSized for Kinded {
            fn base_wire_size(&self) -> usize {
                4
            }
            fn kind_name(&self) -> &'static str {
                self.1
            }
        }
        let (fabric, eps) = Fabric::<Kinded>::new(2);
        // Delay only the "slow" kind; a later undelayed message overtakes it.
        fabric.set_fault_plan(&FaultPlan::new(7).with_rule(
            FaultRule::all().of_kind("slow").delaying(
                1.0,
                Duration::from_millis(20),
                Duration::from_millis(30),
            ),
        ));
        eps[0].send(1, Kinded(1, "slow"));
        eps[0].send(1, Kinded(2, "fast"));
        let first = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let second = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(
            first,
            Event::Msg {
                from: 0,
                msg: Kinded(2, "fast")
            }
        );
        assert_eq!(
            second,
            Event::Msg {
                from: 0,
                msg: Kinded(1, "slow")
            }
        );
    }

    #[test]
    fn partition_blocks_cross_group_until_heal() {
        let (fabric, eps) = Fabric::<TestMsg>::new(4);
        fabric.partition(&[&[0, 1], &[2, 3]]);
        assert!(eps[0].send(2, TestMsg(1, 10, 0))); // silently lost
        assert!(eps[0].send(1, TestMsg(2, 10, 0))); // same side: delivered
        assert!(eps[2].try_recv().is_none());
        assert!(matches!(eps[1].recv(), Some(Event::Msg { .. })));
        assert_eq!(fabric.stats().node(0).snapshot().partition_blocked, 1);
        fabric.heal();
        eps[0].send(2, TestMsg(3, 10, 0));
        assert!(matches!(eps[2].recv(), Some(Event::Msg { .. })));
    }

    #[test]
    fn chaos_off_costs_nothing_for_delivery_semantics() {
        // A plan with all-zero probabilities behaves exactly like no plan.
        use crate::chaos::{FaultPlan, FaultRule};
        let (fabric, eps) = Fabric::<TestMsg>::new(2);
        fabric.set_fault_plan(&FaultPlan::new(1).with_rule(FaultRule::all()));
        for i in 0..100 {
            eps[0].send(1, TestMsg(i, 1, 0));
        }
        for i in 0..100 {
            assert_eq!(
                eps[1].recv(),
                Some(Event::Msg {
                    from: 0,
                    msg: TestMsg(i, 1, 0)
                })
            );
        }
        let s = fabric.stats().node(0).snapshot();
        assert_eq!(s.chaos_dropped + s.chaos_delayed + s.chaos_duplicated, 0);
    }
}
