//! Protocol messages.
//!
//! One message type covers the base HLRC protocol, the lazily piggybacked
//! LLT/CGC control data, and the recovery protocol. Base and piggyback byte
//! counts are reported separately (Table 2 measures their ratio).

use std::sync::Arc;

use dsm_page::{Diff, PageId, ProcId, VectorClock};
use dsm_trace::TraceCtx;
use hlrc::{LockId, WriteNotice};

use crate::ft::logs::{BarEntry, DiffLogEntry, MgrBarEntry, RelEntry, WnLogEntry};

/// Fault-tolerance control data piggybacked on protocol messages: the
/// sender's restart-checkpoint timestamp (plus its checkpoint sequence and
/// barrier-episode counters for the barrier-log trimming analogue), and a
/// batch of per-page retained starting-copy versions `p0.v[receiver]` for
/// pages homed at the sender that the receiver has written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piggy {
    /// Sender's last checkpoint timestamp `T_ckp`.
    pub tckp: VectorClock,
    /// Sender's checkpoint count.
    pub ckpt_seq: u64,
    /// Sender's barrier-episode count at its last checkpoint.
    pub ckpt_episode: u64,
    /// `(page, p0.v[receiver])` hints for the receiver's LLT.
    pub p0v: Vec<(PageId, u32)>,
    /// Gossip of third-party checkpoint timestamps, attached to barrier
    /// releases: `(proc, ckpt_seq, ckpt_episode, T_ckp)`. Without it, nodes
    /// that never exchange protocol messages directly (e.g. distant slabs
    /// in Water-Spatial) would never learn each other's `T_ckp` and their
    /// checkpoint windows could not be garbage collected.
    pub table: Vec<(ProcId, u64, u64, VectorClock)>,
}

impl Piggy {
    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        self.tckp.wire_size()
            + 16
            + 8 * self.p0v.len()
            + self
                .table
                .iter()
                .map(|(_, _, _, v)| 20 + v.wire_size())
                .sum::<usize>()
    }
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Acquire request: requester → lock manager.
    LockAcq {
        /// The lock wanted.
        lock: LockId,
        /// Requester's acquisition sequence number.
        acq_seq: u64,
        /// Requester's current timestamp.
        vt: VectorClock,
    },
    /// Forwarded request: manager → granter (the chain tail).
    LockForward {
        /// The lock in question.
        lock: LockId,
        /// The node that wants the lock.
        requester: ProcId,
        /// The requester's acquisition sequence number.
        acq_seq: u64,
        /// Per-lock grant generation assigned by the manager (recovery key).
        gen: u64,
        /// The granter's own acquisition sequence number of the tenure this
        /// forward chains behind (`u64::MAX` = chain start); the granter
        /// grants immediately iff it already released that tenure.
        pred_acq: u64,
        /// Requester's timestamp (zero-length on crash retransmissions; the
        /// granter then uses its release log).
        vt: VectorClock,
    },
    /// Grant: granter → requester.
    LockGrant {
        /// The lock granted.
        lock: LockId,
        /// The requester's acquisition sequence number (dedup key).
        acq_seq: u64,
        /// The manager-assigned grant generation.
        gen: u64,
        /// The granter's release-time timestamp for this lock.
        vt: VectorClock,
        /// Write notices the requester is missing.
        wns: Vec<WriteNotice>,
    },
    /// A writer's end-of-interval diffs for pages homed at the receiver.
    DiffBatch {
        /// The diffs (each carries its creating interval for idempotent,
        /// ordered application). Shared with the sender's volatile diff log:
        /// sending a batch never copies run payloads.
        diffs: Vec<Arc<Diff>>,
        /// Stop-and-wait sequence number within the (writer, home) stream,
        /// `>= 1` when the retry layer is on: the home acks it with
        /// [`Payload::DiffAck`] and the writer keeps at most one batch in
        /// flight per home, preserving first-delivery order under loss and
        /// reordering (the home's version gate makes *re*-delivery safe,
        /// but would silently skip an out-of-order *first* delivery).
        /// `0` on the legacy reliable path: no ack expected.
        seq: u64,
    },
    /// Home → writer acknowledgement of a [`Payload::DiffBatch`].
    DiffAck {
        /// The acknowledged batch's sequence number.
        seq: u64,
    },
    /// A membership/failure-detection message (heartbeats, suspicion
    /// rounds, down announcements). Never piggybacked, never backlogged.
    Member(dsm_member::Wire),
    /// Barrier arrival: participant → barrier manager.
    BarrierArrive {
        /// Barrier crossing number at the participant.
        episode: u64,
        /// The participant's timestamp at arrival.
        vt: VectorClock,
        /// The participant's own write notices since its previous arrival.
        own_wns: Vec<WriteNotice>,
    },
    /// Barrier release: manager → participant.
    BarrierRelease {
        /// The completed episode.
        episode: u64,
        /// Join of every participant's arrival timestamp.
        vt: VectorClock,
        /// Write notices the receiver is missing.
        wns: Vec<WriteNotice>,
    },
    /// Page fetch: requester → home. The home replies once its copy covers
    /// `needed`.
    PageReq {
        /// The page wanted.
        page: PageId,
        /// Minimal version the reply must include.
        needed: VectorClock,
        /// Requester-local correlation id (dedup of retransmitted replies).
        req_id: u64,
    },
    /// Batched page fetch: requester → home. One round trip prefetches
    /// every page homed at the receiver that the requester just invalidated
    /// (issued eagerly after an acquire or barrier applies write notices).
    /// The home answers each page once its copy covers that page's `needed`;
    /// pages already current go back together in one [`Payload::PageBatchReply`],
    /// stragglers arrive later as individual [`Payload::PageReply`]s carrying
    /// the same `req_id`.
    PageBatchReq {
        /// `(page, minimal version the reply must include)` per page.
        pages: Vec<(PageId, VectorClock)>,
        /// Requester-local correlation id shared by the whole batch.
        req_id: u64,
    },
    /// Batched page contents: home → requester, for the pages of a
    /// [`Payload::PageBatchReq`] that were ready immediately.
    PageBatchReply {
        /// Correlation id echoed from the request.
        req_id: u64,
        /// `(page, home version, contents)` per ready page; contents are
        /// shared with the home's authoritative copy.
        pages: Vec<(PageId, VectorClock, Arc<[u8]>)>,
    },
    /// Page contents: home → requester.
    PageReply {
        /// The page.
        page: PageId,
        /// Correlation id echoed from the request.
        req_id: u64,
        /// The home's version vector for the copy.
        version: VectorClock,
        /// The page contents, shared with the home's authoritative copy
        /// (copy-on-write at the home keeps this immutable).
        bytes: Arc<[u8]>,
    },

    // ---- recovery protocol ----
    /// Recovery handshake: recovering node → every peer.
    RecLogReq,
    /// Everything a peer contributes to a recovery (its trimmed logs).
    RecLogReply {
        /// The peer's own write-notice log.
        wn: Vec<WnLogEntry>,
        /// The peer's `rel_log[recovering]` (grants it sent to the
        /// recovering node — drives acquire replay).
        rel_for_you: Vec<RelEntry>,
        /// The peer's `acq_log[recovering]` (mirror restoring the
        /// recovering node's `rel_log[peer]`).
        acq_mirror: Vec<RelEntry>,
        /// The peer's own barrier crossings.
        bar: Vec<BarEntry>,
        /// The peer's barrier-manager mirror (non-empty only from the
        /// barrier manager).
        bar_mgr: Vec<MgrBarEntry>,
        /// Per lock managed by the recovering node: the highest-generation
        /// *materialized* acquisition the peer knows — its own newest
        /// tenure (granter `None`) or the newest grant in its release log
        /// (granter `Some(peer)`): `(lock, gen, grantee, grantee_acq,
        /// granter)`. Rebuilds the manager's chain tails. Queued (not yet
        /// granted) edges are deliberately absent: the peer discards them
        /// when serving this handshake — the chain reset — and their
        /// requesters re-drive the acquisition.
        lock_chains: Vec<(LockId, u64, ProcId, u64, Option<ProcId>)>,
        /// Per lock managed by the recovering node: the highest grant
        /// generation the peer has *seen* in any role, including queued
        /// edges it just discarded. Bounds the recovered manager's next
        /// generation so fresh edges outrank every pre-crash one.
        gen_floor: Vec<(LockId, u64)>,
    },
    /// Maximal-starting-copy request: recovering node → home.
    RecPageReq {
        /// The page whose starting copy is needed.
        page: PageId,
        /// The recovering node's restart-checkpoint timestamp; the home
        /// returns its newest retained copy with version `<=` this.
        tckp: VectorClock,
    },
    /// Maximal starting copy: home → recovering node.
    RecPageReply {
        /// The page.
        page: PageId,
        /// The starting copy's version vector.
        version: VectorClock,
        /// The starting copy's contents (shared, not copied per hop).
        bytes: Arc<[u8]>,
    },
    /// Diff-log request for one page: recovering node → every peer.
    RecDiffReq {
        /// The page whose diffs are needed.
        page: PageId,
    },
    /// A peer's diff log for one page.
    RecDiffReply {
        /// The page.
        page: PageId,
        /// The peer's logged diffs for the page (with full timestamps).
        entries: Vec<DiffLogEntry>,
    },
}

impl Payload {
    /// Encoded size in bytes of the base-protocol part.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::LockAcq { vt, .. } => 17 + vt.wire_size(),
            Payload::LockForward { vt, .. } => 37 + vt.wire_size(),
            Payload::LockGrant { vt, wns, .. } => {
                25 + vt.wire_size() + wns.iter().map(|w| w.wire_size()).sum::<usize>()
            }
            Payload::DiffBatch { diffs, .. } => {
                17 + diffs.iter().map(|d| d.wire_size()).sum::<usize>()
            }
            Payload::DiffAck { .. } => 9,
            Payload::Member(w) => w.wire_size(),
            Payload::BarrierArrive { vt, own_wns, .. } => {
                9 + vt.wire_size() + own_wns.iter().map(|w| w.wire_size()).sum::<usize>()
            }
            Payload::BarrierRelease { vt, wns, .. } => {
                9 + vt.wire_size() + wns.iter().map(|w| w.wire_size()).sum::<usize>()
            }
            Payload::PageReq { needed, .. } => 13 + needed.wire_size(),
            Payload::PageBatchReq { pages, .. } => {
                17 + pages
                    .iter()
                    .map(|(_, needed)| 4 + needed.wire_size())
                    .sum::<usize>()
            }
            Payload::PageBatchReply { pages, .. } => {
                17 + pages
                    .iter()
                    .map(|(_, version, bytes)| 8 + version.wire_size() + bytes.len())
                    .sum::<usize>()
            }
            Payload::PageReply { version, bytes, .. } => 17 + version.wire_size() + bytes.len(),
            Payload::RecLogReq => 1,
            Payload::RecLogReply {
                wn,
                rel_for_you,
                acq_mirror,
                bar,
                bar_mgr,
                lock_chains,
                gen_floor,
            } => {
                1 + wn.iter().map(|e| e.wire_size()).sum::<usize>()
                    + rel_for_you.iter().map(|e| e.wire_size()).sum::<usize>()
                    + acq_mirror.iter().map(|e| e.wire_size()).sum::<usize>()
                    + bar.iter().map(|e| e.wire_size()).sum::<usize>()
                    + bar_mgr
                        .iter()
                        .map(|e| {
                            8 + e.result_vt.wire_size()
                                + e.arrival_vts.iter().map(|v| v.wire_size()).sum::<usize>()
                        })
                        .sum::<usize>()
                    + 33 * lock_chains.len()
                    + 16 * gen_floor.len()
            }
            Payload::RecPageReq { tckp, .. } => 5 + tckp.wire_size(),
            Payload::RecPageReply { version, bytes, .. } => 5 + version.wire_size() + bytes.len(),
            Payload::RecDiffReq { .. } => 5,
            Payload::RecDiffReply { entries, .. } => {
                5 + entries.iter().map(|e| e.wire_size()).sum::<usize>()
            }
        }
    }

    /// Short name for debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::LockAcq { .. } => "LockAcq",
            Payload::LockForward { .. } => "LockForward",
            Payload::LockGrant { .. } => "LockGrant",
            Payload::DiffBatch { .. } => "DiffBatch",
            Payload::DiffAck { .. } => "DiffAck",
            Payload::Member(w) => w.kind(),
            Payload::BarrierArrive { .. } => "BarrierArrive",
            Payload::BarrierRelease { .. } => "BarrierRelease",
            Payload::PageReq { .. } => "PageReq",
            Payload::PageBatchReq { .. } => "PageBatchReq",
            Payload::PageBatchReply { .. } => "PageBatchReply",
            Payload::PageReply { .. } => "PageReply",
            Payload::RecLogReq => "RecLogReq",
            Payload::RecLogReply { .. } => "RecLogReply",
            Payload::RecPageReq { .. } => "RecPageReq",
            Payload::RecPageReply { .. } => "RecPageReply",
            Payload::RecDiffReq { .. } => "RecDiffReq",
            Payload::RecDiffReply { .. } => "RecDiffReply",
        }
    }
}

/// A protocol message: payload plus optional FT piggyback plus the causal
/// trace context every message carries on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// The base-protocol payload.
    pub payload: Payload,
    /// LLT/CGC control data (present when fault tolerance is enabled).
    pub piggy: Option<Piggy>,
    /// Causal trace context. Constructed unstamped; the endpoint stamps
    /// origin/seq/timestamp at send time, preserving any parent flow the
    /// sender set. Charged [`TraceCtx::WIRE_SIZE`] bytes unconditionally so
    /// byte accounting never depends on whether tracing is on.
    pub ctx: TraceCtx,
}

impl Msg {
    /// A bare message without piggyback.
    pub fn bare(payload: Payload) -> Self {
        Msg {
            payload,
            piggy: None,
            ctx: TraceCtx::NONE,
        }
    }

    /// A bare message sent in service of the flow `parent` (a reply, a
    /// forward, or any other message caused by handling `parent`).
    pub fn reply_to(payload: Payload, parent: u64) -> Self {
        Msg {
            payload,
            piggy: None,
            ctx: TraceCtx {
                parent,
                ..TraceCtx::NONE
            },
        }
    }

    /// A message with piggyback, parented on `parent` (0 for none).
    pub fn with_parent(payload: Payload, piggy: Option<Piggy>, parent: u64) -> Self {
        Msg {
            payload,
            piggy,
            ctx: TraceCtx {
                parent,
                ..TraceCtx::NONE
            },
        }
    }
}

impl dsm_net::WireSized for Msg {
    fn base_wire_size(&self) -> usize {
        1 + TraceCtx::WIRE_SIZE + self.payload.wire_size()
    }
    fn ft_wire_size(&self) -> usize {
        self.piggy.as_ref().map_or(0, |p| p.wire_size())
    }
    fn kind_name(&self) -> &'static str {
        self.payload.kind()
    }
    fn stamp_send(&mut self, origin: u32, seq: u64, now_ns: u64) {
        self.ctx.origin = origin;
        self.ctx.seq = seq;
        self.ctx.sent_at_ns = now_ns;
    }
    fn add_chaos_delay(&mut self, ns: u64) {
        self.ctx.chaos_delay_ns += ns;
    }
    fn trace_view(&self) -> (u64, u64, u64, u64) {
        (
            self.ctx.flow_id(),
            self.ctx.parent,
            self.ctx.sent_at_ns,
            self.ctx.chaos_delay_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_net::WireSized;

    #[test]
    fn page_reply_size_dominated_by_page_bytes() {
        let m = Msg::bare(Payload::PageReply {
            page: PageId(0),
            req_id: 1,
            version: VectorClock::zero(8),
            bytes: vec![0; 4096].into(),
        });
        assert!(m.base_wire_size() > 4096);
        assert!(m.base_wire_size() < 4096 + 64 + TraceCtx::WIRE_SIZE);
        assert_eq!(m.ft_wire_size(), 0);
    }

    #[test]
    fn piggy_bytes_are_separate() {
        let piggy = Piggy {
            tckp: VectorClock::zero(8),
            ckpt_seq: 1,
            ckpt_episode: 2,
            p0v: vec![(PageId(0), 3), (PageId(1), 4)],
            table: vec![(1, 2, 3, VectorClock::zero(8))],
        };
        let m = Msg {
            payload: Payload::RecLogReq,
            piggy: Some(piggy.clone()),
            ctx: TraceCtx::NONE,
        };
        // 1 kind byte + 1 payload byte + the 16-byte trace context.
        assert_eq!(m.base_wire_size(), 2 + TraceCtx::WIRE_SIZE);
        assert_eq!(m.ft_wire_size(), piggy.wire_size());
        assert_eq!(piggy.wire_size(), 32 + 16 + 16 + 20 + 32);
    }
}
