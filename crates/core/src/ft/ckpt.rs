//! Checkpoint blobs.
//!
//! A checkpoint contains exactly the state the paper identifies as needed
//! for recovery: the vector timestamp, the homed pages with their version
//! vectors, per-page required versions, the owner-side lock state, a few
//! counters, and the application's private state captured at a step
//! boundary. The saved volatile logs are written as a separate stable
//! segment so their size can be tracked independently (Figure 4).

use dsm_page::{PageId, ProcId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter, CodecError};
use hlrc::LockId;

use crate::wire;

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBlob {
    /// Checkpoint sequence number at this node (1-based).
    pub seq: u64,
    /// `T_ckp`: the node's vector timestamp when the checkpoint was taken.
    pub tckp: VectorClock,
    /// Barrier episodes crossed so far.
    pub bar_episode: u64,
    /// Next lock-acquisition sequence number.
    pub acq_seq_next: u64,
    /// The node's own interval sequence at its last barrier arrival
    /// (rebuilds the own-notices-since-last-barrier buffer).
    pub last_bar_arrive_seq: u32,
    /// The application step the run_steps loop resumes from.
    pub step: u64,
    /// Encoded application private state.
    pub app_state: Vec<u8>,
    /// Sparse (page, writer, seq) required-version triples.
    pub needed: Vec<(PageId, ProcId, u32)>,
    /// Lock tenures: (lock, our acquisition sequence number, the grant
    /// generation that granted it, released?). Unreleased tenures are the
    /// locks held at checkpoint time; the generation orders delivered
    /// tenures when a recovering lock manager rebuilds its chains.
    pub tenures: Vec<(LockId, u64, u64, bool)>,
    /// Release-time timestamps of locks this node last released.
    pub last_release_vts: Vec<(LockId, VectorClock)>,
    /// Homed pages: (page, version vector, contents).
    pub home_pages: Vec<(PageId, VectorClock, Vec<u8>)>,
}

impl CheckpointBlob {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            256 + self.app_state.len()
                + self
                    .home_pages
                    .iter()
                    .map(|p| p.2.len() + 64)
                    .sum::<usize>(),
        );
        w.put_u64(self.seq);
        wire::put_vt(&mut w, &self.tckp);
        w.put_u64(self.bar_episode);
        w.put_u64(self.acq_seq_next);
        w.put_u32(self.last_bar_arrive_seq);
        w.put_u64(self.step);
        w.put_bytes(&self.app_state);
        w.put_u64(self.needed.len() as u64);
        for &(p, proc_, seq) in &self.needed {
            w.put_u32(p.0);
            w.put_u32(proc_ as u32);
            w.put_u32(seq);
        }
        w.put_u64(self.tenures.len() as u64);
        for &(l, acq, gen, released) in &self.tenures {
            w.put_u64(l as u64);
            w.put_u64(acq);
            w.put_u64(gen);
            w.put_u8(released as u8);
        }
        w.put_u64(self.last_release_vts.len() as u64);
        for (l, vt) in &self.last_release_vts {
            w.put_u64(*l as u64);
            wire::put_vt(&mut w, vt);
        }
        w.put_u64(self.home_pages.len() as u64);
        for (p, v, bytes) in &self.home_pages {
            w.put_u32(p.0);
            wire::put_vt(&mut w, v);
            w.put_bytes(bytes);
        }
        w.into_bytes()
    }

    /// Decode from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let seq = r.get_u64()?;
        let tckp = wire::get_vt(&mut r)?;
        let bar_episode = r.get_u64()?;
        let acq_seq_next = r.get_u64()?;
        let last_bar_arrive_seq = r.get_u32()?;
        let step = r.get_u64()?;
        let app_state = r.get_bytes()?.to_vec();
        let n_needed = r.get_u64()? as usize;
        let mut needed = Vec::with_capacity(n_needed);
        for _ in 0..n_needed {
            let p = PageId(r.get_u32()?);
            let proc_ = r.get_u32()? as usize;
            let seq = r.get_u32()?;
            needed.push((p, proc_, seq));
        }
        let n_ten = r.get_u64()? as usize;
        let mut tenures = Vec::with_capacity(n_ten);
        for _ in 0..n_ten {
            let l = r.get_u64()? as LockId;
            let acq = r.get_u64()?;
            let gen = r.get_u64()?;
            let released = r.get_u8()? != 0;
            tenures.push((l, acq, gen, released));
        }
        let n_rel = r.get_u64()? as usize;
        let mut last_release_vts = Vec::with_capacity(n_rel);
        for _ in 0..n_rel {
            let l = r.get_u64()? as LockId;
            let vt = wire::get_vt(&mut r)?;
            last_release_vts.push((l, vt));
        }
        let n_pages = r.get_u64()? as usize;
        let mut home_pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let p = PageId(r.get_u32()?);
            let v = wire::get_vt(&mut r)?;
            let bytes = r.get_bytes()?.to_vec();
            home_pages.push((p, v, bytes));
        }
        Ok(CheckpointBlob {
            seq,
            tckp,
            bar_episode,
            acq_seq_next,
            last_bar_arrive_seq,
            step,
            app_state,
            needed,
            tenures,
            last_release_vts,
            home_pages,
        })
    }

    /// The version vector of one homed page copy in this checkpoint.
    pub fn page_version(&self, page: PageId) -> Option<&VectorClock> {
        self.home_pages
            .iter()
            .find(|(p, _, _)| *p == page)
            .map(|(_, v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: &[u32]) -> VectorClock {
        VectorClock::from_vec(v.to_vec())
    }

    fn sample() -> CheckpointBlob {
        CheckpointBlob {
            seq: 3,
            tckp: vt(&[4, 1, 0]),
            bar_episode: 2,
            acq_seq_next: 7,
            last_bar_arrive_seq: 3,
            step: 11,
            app_state: vec![9, 8, 7],
            needed: vec![(PageId(2), 1, 5)],
            tenures: vec![(13, 4, 6, false), (2, 1, 3, true)],
            last_release_vts: vec![(4, vt(&[2, 0, 0]))],
            home_pages: vec![(PageId(0), vt(&[4, 0, 0]), vec![0u8; 64])],
        }
    }

    #[test]
    fn roundtrip() {
        let b = sample();
        let bytes = b.encode();
        let d = CheckpointBlob::decode(&bytes).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let b = CheckpointBlob {
            seq: 1,
            tckp: vt(&[0, 0]),
            bar_episode: 0,
            acq_seq_next: 0,
            last_bar_arrive_seq: 0,
            step: 0,
            app_state: vec![],
            needed: vec![],
            tenures: vec![],
            last_release_vts: vec![],
            home_pages: vec![],
        };
        assert_eq!(CheckpointBlob::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn page_version_lookup() {
        let b = sample();
        assert_eq!(b.page_version(PageId(0)), Some(&vt(&[4, 0, 0])));
        assert_eq!(b.page_version(PageId(9)), None);
    }

    #[test]
    fn truncated_blob_is_an_error() {
        let bytes = sample().encode();
        assert!(CheckpointBlob::decode(&bytes[..bytes.len() - 10]).is_err());
    }
}
