//! Fault tolerance: logging, independent checkpointing, lazy log trimming
//! (LLT), checkpoint garbage collection (CGC), and recovery.

pub mod ckpt;
pub mod logs;
pub mod recovery;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_page::{elementwise_min, PageId, ProcId, VectorClock};
use dsm_storage::{SegmentKind, StableStore};
use dsm_trace::{EventKind, TrimRule};

use crate::config::{CkptPolicy, FtConfig};
use crate::msg::Piggy;
use crate::runtime::node::NodeState;
use crate::stats::FtReport;
use ckpt::CheckpointBlob;
use logs::VolatileLogs;

/// In-memory index of one retained past checkpoint: which version of each
/// homed page it holds (drives Rule 3's CGC and the `p0.v` piggyback).
#[derive(Debug, Clone)]
pub(crate) struct RetainedCkpt {
    pub seq: u64,
    pub versions: HashMap<PageId, VectorClock>,
}

/// Per-node fault-tolerance state.
pub(crate) struct FtState {
    pub cfg: FtConfig,
    pub logs: VolatileLogs,
    pub store: Arc<StableStore>,
    /// Last known checkpoint timestamp of every process (self kept exact).
    pub tckp: Vec<VectorClock>,
    /// Last known checkpoint sequence number per process.
    pub peer_ckpt_seq: Vec<u64>,
    /// Last known checkpointed barrier-episode count per process.
    pub peer_ckpt_episode: Vec<u64>,
    /// This node's checkpoint count.
    pub ckpt_seq: u64,
    /// This node's restart-checkpoint timestamp.
    pub last_ckpt_vt: VectorClock,
    /// Barrier episodes crossed at the last checkpoint.
    pub last_ckpt_episode: u64,
    /// Own interval sequence at the last barrier arrival.
    pub last_bar_arrive_seq: u32,
    /// Learned `p0.v[me]` per remote-homed page this node writes (LLT).
    pub p0v_known: HashMap<PageId, u32>,
    /// Retained checkpoint window, oldest first.
    pub retained: Vec<RetainedCkpt>,
    /// Round-robin cursor over homed pages for the `p0.v` piggyback.
    pub piggy_cursor: usize,
    /// Own checkpoint sequence last advertised to each peer (a piggyback is
    /// only attached when it carries news).
    pub piggy_sent: Vec<u64>,
    /// Largest `p0.v[writer]` hint already sent per (page, writer).
    pub p0v_sent: HashMap<(PageId, ProcId), u32>,
    /// Latched "checkpoint at next safe point" flag.
    pub ckpt_due: bool,
    /// Statistics.
    pub report: FtReport,
}

impl FtState {
    pub(crate) fn new(me: ProcId, n: usize, cfg: FtConfig, store: Arc<StableStore>) -> Self {
        FtState {
            cfg,
            logs: VolatileLogs::new(me, n),
            store,
            tckp: vec![VectorClock::zero(n); n],
            peer_ckpt_seq: vec![0; n],
            peer_ckpt_episode: vec![0; n],
            ckpt_seq: 0,
            last_ckpt_vt: VectorClock::zero(n),
            last_ckpt_episode: 0,
            last_bar_arrive_seq: 0,
            p0v_known: HashMap::new(),
            retained: Vec::new(),
            piggy_cursor: 0,
            piggy_sent: vec![u64::MAX; n],
            p0v_sent: HashMap::new(),
            ckpt_due: false,
            report: FtReport::default(),
        }
    }

    /// Merge a received piggyback.
    pub(crate) fn absorb_piggy(&mut self, from: ProcId, piggy: &Piggy) {
        if piggy.ckpt_seq > self.peer_ckpt_seq[from] {
            self.peer_ckpt_seq[from] = piggy.ckpt_seq;
            self.peer_ckpt_episode[from] = piggy.ckpt_episode;
            self.tckp[from] = piggy.tckp.clone();
        }
        for &(page, v) in &piggy.p0v {
            let e = self.p0v_known.entry(page).or_insert(0);
            if v > *e {
                *e = v;
            }
        }
        for (proc_, seq, episode, tckp) in &piggy.table {
            if *seq != u64::MAX && *seq > self.peer_ckpt_seq[*proc_] {
                self.peer_ckpt_seq[*proc_] = *seq;
                self.peer_ckpt_episode[*proc_] = *episode;
                self.tckp[*proc_] = tckp.clone();
            }
        }
    }

    /// The gossip table: everything this node knows about everyone's last
    /// checkpoint (attached to barrier releases).
    pub(crate) fn gossip_table(&self, me: ProcId) -> Vec<(ProcId, u64, u64, VectorClock)> {
        (0..self.tckp.len())
            .filter(|&j| j != me && self.peer_ckpt_seq[j] > 0)
            .map(|j| {
                (
                    j,
                    self.peer_ckpt_seq[j],
                    self.peer_ckpt_episode[j],
                    self.tckp[j].clone(),
                )
            })
            .collect()
    }

    /// Evaluate the checkpoint policy at a synchronization point.
    pub(crate) fn policy_check_sync(&mut self, shared_footprint: u64) {
        if let CkptPolicy::LogOverflow { l } = self.cfg.policy {
            let limit = (l * shared_footprint as f64) as u64;
            if shared_footprint > 0 && self.logs.volatile_bytes() > limit {
                self.ckpt_due = true;
            }
        }
    }

    /// Evaluate the checkpoint policy after crossing barrier `episode`.
    pub(crate) fn policy_check_barrier(&mut self, episode: u64) {
        if let CkptPolicy::AtBarrier(k) = self.cfg.policy {
            if k > 0 && (episode + 1).is_multiple_of(k) {
                self.ckpt_due = true;
            }
        }
    }

    /// Should a checkpoint be taken at this safe point (step boundary)?
    pub(crate) fn ckpt_due_at_step(&mut self, step: u64) -> bool {
        match self.cfg.policy {
            CkptPolicy::LogOverflow { .. } | CkptPolicy::Manual | CkptPolicy::AtBarrier(_) => {
                self.ckpt_due
            }
            CkptPolicy::EverySteps(k) => {
                self.ckpt_due || (k > 0 && step > 0 && step.is_multiple_of(k))
            }
            CkptPolicy::Never => false,
        }
    }

    /// `Tmin = min_{j != me} T^j_ckp` (Rule 3).
    pub(crate) fn tmin_peers(&self, me: ProcId) -> Option<VectorClock> {
        elementwise_min(
            self.tckp
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != me)
                .map(|(_, v)| v),
        )
    }

    /// The version of `page` in the oldest retained checkpoint — the `p0.v`
    /// the CGC rule pins, which bounds every writer's diff log — but only
    /// when `Tmin` covers it. Otherwise some peer's recovery may need to
    /// start from the virtual initial (zero) copy, so no diff may be
    /// trimmed and nothing is advertised.
    pub(crate) fn cover_version(&self, me: ProcId, page: PageId) -> Option<VectorClock> {
        let tmin = self.tmin_peers(me)?;
        let v = self.retained.first().and_then(|c| c.versions.get(&page))?;
        tmin.covers(v).then(|| v.clone())
    }
}

/// Take an independent checkpoint on the application thread.
///
/// `app_state` is the encoded private state at step `step`. Returns the
/// (logging/trimming time, modeled disk time) pair for the breakdown.
pub(crate) fn take_checkpoint(
    st: &mut NodeState,
    step: u64,
    app_state: Vec<u8>,
) -> (Duration, Duration) {
    // Flush the current interval so the checkpoint has no twins and the
    // saved diff logs include everything up to T_ckp.
    crate::runtime::node::end_interval(st);

    let me = st.me;
    let n = st.n;
    let tckp = st.vt.clone();
    let tracing = st.tracer.enabled();
    let t_ckpt = Instant::now();
    if tracing {
        let seq = st.ft.as_ref().map_or(0, |ft| ft.ckpt_seq + 1);
        st.tracer.emit(EventKind::CkptBegin { seq });
    }
    let t_log = Instant::now();

    // --- assemble the blob -------------------------------------------------
    let homed = st.pt.homed_pages();
    let mut home_pages = Vec::with_capacity(homed.len());
    let mut versions = HashMap::with_capacity(homed.len());
    for &p in &homed {
        let (version, bytes) = st.pt.home_snapshot(p);
        home_pages.push((p, version.clone(), bytes.to_vec()));
        versions.insert(p, version);
    }
    let ft = st.ft.as_mut().expect("checkpoint without FT enabled");
    let seq = ft.ckpt_seq + 1;
    let blob = CheckpointBlob {
        seq,
        tckp: tckp.clone(),
        bar_episode: st.bar_episode,
        acq_seq_next: st.acq_seq_next,
        last_bar_arrive_seq: ft.last_bar_arrive_seq,
        step,
        app_state,
        needed: st.pt.needed_triples(),
        tenures: st
            .tenure
            .iter()
            .map(|(&l, &(a, r))| (l, a, st.tenure_gen.get(&l).copied().unwrap_or(0), r))
            .collect(),
        last_release_vts: st
            .last_release_vt
            .iter()
            .map(|(l, v)| (*l, v.clone()))
            .collect(),
        home_pages,
    };

    // --- trim logs (LLT + Rules 1/2 + barrier analogue) --------------------
    // When tracing, sample the volatile log size around each rule so every
    // `LogTrim` event carries the bytes that rule actually freed.
    let mut vb = if tracing { ft.logs.volatile_bytes() } else { 0 };
    let mut note_trim = |ft: &FtState, tracer: &dsm_trace::NodeTracer, rule: TrimRule| {
        if !tracing {
            return;
        }
        let now = ft.logs.volatile_bytes();
        if now < vb {
            tracer.emit(EventKind::LogTrim {
                rule,
                bytes: vb - now,
            });
        }
        vb = now;
    };
    // Rule 1 bound: min over peers of their checkpointed knowledge of us.
    let rule1_bound = (0..n)
        .filter(|&j| j != me)
        .map(|j| ft.tckp[j].get(me))
        .min()
        .unwrap_or(0);
    ft.logs.trim_rule1(rule1_bound);
    note_trim(ft, &st.tracer, TrimRule::Rule1);
    let tckp_table: Vec<VectorClock> = ft.tckp.clone();
    ft.logs.trim_rule2(&tckp_table, &tckp);
    note_trim(ft, &st.tracer, TrimRule::Rule2);
    // Rule 3 for remote-homed pages uses lazily learned p0.v; for our own
    // homed pages we know the oldest retained copy exactly — gated, like
    // the piggyback, on Tmin covering it (otherwise a peer may need to
    // start from the virtual zero copy and every diff must stay).
    let mut p0v = ft.p0v_known.clone();
    if let Some(tmin) = ft.tmin_peers(me) {
        if let Some(oldest) = ft.retained.first() {
            for (page, v) in &oldest.versions {
                if tmin.covers(v) {
                    p0v.insert(*page, v.get(me));
                }
            }
        }
    }
    ft.logs.trim_rule3(&p0v);
    note_trim(ft, &st.tracer, TrimRule::Rule3);
    let min_ckpt_episode = {
        let own = st.bar_episode;
        (0..n)
            .filter(|&j| j != me)
            .map(|j| ft.peer_ckpt_episode[j])
            .chain(std::iter::once(own))
            .min()
            .unwrap_or(0)
    };
    ft.logs.trim_bar(min_ckpt_episode);
    note_trim(ft, &st.tracer, TrimRule::Barrier);
    let log_blob = ft.logs.encode_stable();
    let logging_time = t_log.elapsed();

    // --- write to stable storage -------------------------------------------
    let encoded = blob.encode();
    let ckpt_bytes = (encoded.len() + log_blob.len()) as u64;
    let d1 = ft
        .store
        .write_segment(SegmentKind::Checkpoint, seq, encoded);
    ft.report.log_bytes_saved += ft.logs.mark_saved();
    let d2 = ft.store.write_segment(SegmentKind::Log, 0, log_blob);
    let disk_time = d1 + d2;

    // --- update window and run CGC ------------------------------------------
    // Exact per-peer retention (a refinement of Rule 3's window): keep, for
    // every peer j, the newest retained copy whose versions j's restart
    // checkpoint covers (j's maximal starting copy), plus the latest
    // checkpoint. A peer with no covered copy recovers from the virtual
    // initial zero copy, which is always available — in that case the
    // `p0.v` piggyback is suppressed (see `cover_version`) so writers keep
    // every diff.
    ft.retained.push(RetainedCkpt { seq, versions });
    {
        let last = ft.retained.len() - 1;
        let mut needed = vec![false; ft.retained.len()];
        needed[last] = true;
        for j in (0..n).filter(|&j| j != me) {
            let mut found = None;
            for (k, rc) in ft.retained.iter().enumerate() {
                // Page versions are monotone in checkpoint order, so the
                // covered prefix is contiguous.
                if rc.versions.values().all(|v| ft.tckp[j].covers(v)) {
                    found = Some(k);
                } else {
                    break;
                }
            }
            if let Some(k) = found {
                needed[k] = true;
            }
        }
        let mut k = 0;
        let store = Arc::clone(&ft.store);
        let tracer = st.tracer.clone();
        ft.retained.retain(|rc| {
            let keep = needed[k];
            if !keep {
                if tracing {
                    let bytes = store
                        .segment_len(SegmentKind::Checkpoint, rc.seq)
                        .unwrap_or(0);
                    tracer.emit(EventKind::CgcDiscard { seq: rc.seq, bytes });
                }
                store.delete_segment(SegmentKind::Checkpoint, rc.seq);
            }
            k += 1;
            keep
        });
    }

    // --- bookkeeping and statistics ------------------------------------------
    ft.ckpt_seq = seq;
    ft.piggy_sent = vec![u64::MAX; n];
    ft.last_ckpt_vt = tckp;
    ft.last_ckpt_episode = st.bar_episode;
    ft.ckpt_due = false;
    ft.report.ckpts_taken += 1;
    ft.report.max_ckpt_window = ft.report.max_ckpt_window.max(ft.retained.len());
    let live_log = ft.store.live_bytes(SegmentKind::Log);
    ft.report.max_stable_log_bytes = ft.report.max_stable_log_bytes.max(live_log);
    ft.report.stable_log_curve.push((seq, live_log));
    ft.report.log_counters = ft.logs.counters();

    // Bound the write-notice table: every process has checkpointed past the
    // elementwise minimum of the checkpoint timestamps, so no future grant
    // or recovery can need notices at or below it.
    let mut all_tckp = ft.tckp.clone();
    all_tckp[me] = ft.last_ckpt_vt.clone();
    if let Some(bound) = elementwise_min(all_tckp.iter()) {
        st.wn_table.trim_covered_by(&bound);
    }

    st.hists
        .ckpt_write
        .record(t_ckpt.elapsed().as_nanos() as u64);
    st.tracer.emit_span(
        EventKind::CkptEnd {
            seq,
            bytes: ckpt_bytes,
        },
        t_ckpt,
    );

    (logging_time, disk_time)
}
