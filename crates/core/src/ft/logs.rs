//! Volatile (in-memory) logs for sender-based logging.
//!
//! Per the paper (§4.2), every node logs:
//!
//! * `wn_log` — write notices it generates (its own intervals' page sets);
//! * `diff_log(p)` — every diff it creates, with the full vector timestamp
//!   of its creation (`diff.T`), including diffs for its own homed pages
//!   (which base HLRC never creates);
//! * `rel_log[j]` — grants it sent to process `j` (the acquirer's timestamp
//!   after the acquire, plus the request timestamp so a lost grant can be
//!   retransmitted byte-identically);
//! * `acq_log[j]` — the mirror of `j`'s `rel_log[me]`, restorable from one
//!   another; neither is ever written to stable storage;
//! * barrier crossing logs — a pair of logical times per crossing, mirrored
//!   between manager and participant.
//!
//! Trimming implements Rules 1–3 plus the barrier analogue, and every trim
//! and append is byte-accounted for Table 4 / Figure 4.

use std::collections::HashMap;
use std::sync::Arc;

use dsm_page::{PageId, ProcId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter, CodecError};
use hlrc::LockId;

use crate::wire;

/// One own-interval write-notice record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WnLogEntry {
    /// The interval's sequence number at this node.
    pub seq: u32,
    /// Pages written in the interval.
    pub pages: Vec<PageId>,
    /// Has this entry been written to stable storage before? (Table 4's
    /// "saved logs" counts bytes on their first save only.)
    pub saved: bool,
}

impl WnLogEntry {
    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 4 * self.pages.len()
    }
}

/// One logged diff: the diff plus the creator's full timestamp at creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffLogEntry {
    /// The diff itself (carries the creating interval). Shared with the
    /// `DiffBatch` message that delivered the same interval — logging never
    /// copies run payloads, exactly as the paper's "reuse what the base
    /// protocol already produces" argument requires.
    pub diff: Arc<dsm_page::Diff>,
    /// `diff.T`: the writer's vector timestamp at the end of the creating
    /// interval. Orders diffs by happens-before during recovery replay.
    pub t: VectorClock,
    /// First-save tracking (not part of the wire encoding).
    pub saved: bool,
}

impl DiffLogEntry {
    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        self.diff.wire_size() + self.t.wire_size()
    }
}

/// One grant record: lives in the granter's `rel_log[acquirer]` and,
/// mirrored, in the acquirer's `acq_log[granter]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelEntry {
    /// The acquirer's acquisition sequence number (replay key).
    pub acq_seq: u64,
    /// The lock acquired.
    pub lock: LockId,
    /// The manager-assigned grant generation (rebuilds lock chains after a
    /// manager crash).
    pub gen: u64,
    /// The acquirer's timestamp in the request (kept so a lost grant can be
    /// regenerated with the same write notices).
    pub req_vt: VectorClock,
    /// The acquirer's timestamp after the acquire completed.
    pub t_after: VectorClock,
}

impl RelEntry {
    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        24 + self.req_vt.wire_size() + self.t_after.wire_size()
    }
}

/// One barrier crossing: the participant's pair of logical times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarEntry {
    /// Episode number.
    pub episode: u64,
    /// The participant's timestamp at arrival.
    pub arrive_vt: VectorClock,
    /// The joined timestamp it was released with.
    pub result_vt: VectorClock,
}

impl BarEntry {
    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.arrive_vt.wire_size() + self.result_vt.wire_size()
    }
}

/// The barrier manager's mirror: per episode, every participant's arrival
/// timestamp and the joined result (enough to regenerate any participant's
/// release).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgrBarEntry {
    /// Episode number.
    pub episode: u64,
    /// Arrival timestamps, indexed by process.
    pub arrival_vts: Vec<VectorClock>,
    /// The joined release timestamp.
    pub result_vt: VectorClock,
}

/// Byte counters for Table 4 / Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogCounters {
    /// Cumulative bytes ever appended to the volatile logs.
    pub created_bytes: u64,
    /// Cumulative bytes dropped by trimming.
    pub discarded_bytes: u64,
}

/// All volatile logs of one node.
#[derive(Debug)]
pub struct VolatileLogs {
    me: ProcId,
    n: usize,
    /// Own write notices (Rule 1).
    pub wn: Vec<WnLogEntry>,
    /// Per-page diff logs (Rule 3 / LLT).
    pub diffs: HashMap<PageId, Vec<DiffLogEntry>>,
    /// Grants sent, per acquirer (Rule 2).
    pub rel: Vec<Vec<RelEntry>>,
    /// Mirror of grants received, per granter (Rule 2).
    pub acq: Vec<Vec<RelEntry>>,
    /// Own barrier crossings.
    pub bar: Vec<BarEntry>,
    /// Manager-side barrier mirror (non-empty only at the barrier manager).
    pub bar_mgr: Vec<MgrBarEntry>,
    counters: LogCounters,
}

impl VolatileLogs {
    /// Empty logs for node `me` of `n`.
    pub fn new(me: ProcId, n: usize) -> Self {
        VolatileLogs {
            me,
            n,
            wn: Vec::new(),
            diffs: HashMap::new(),
            rel: vec![Vec::new(); n],
            acq: vec![Vec::new(); n],
            bar: Vec::new(),
            bar_mgr: Vec::new(),
            counters: LogCounters::default(),
        }
    }

    /// Cumulative created/discarded counters.
    pub fn counters(&self) -> LogCounters {
        self.counters
    }

    /// Current volatile size of the diff + write-notice logs — the quantity
    /// the `OF(L)` checkpoint policy limits (the lock and barrier logs are
    /// tiny and never saved, as in the paper).
    pub fn volatile_bytes(&self) -> u64 {
        let d: usize = self.diffs.values().flatten().map(|e| e.wire_size()).sum();
        let w: usize = self.wn.iter().map(|e| e.wire_size()).sum();
        (d + w) as u64
    }

    /// Record one completed interval: its write notice and its diffs. The
    /// diffs are the exact `Arc`s the interval's outgoing `DiffBatch`es
    /// share, taken as one batch with the interval-end timestamp `t` — the
    /// log entries are built here so callers never clone run payloads.
    pub fn log_interval(
        &mut self,
        seq: u32,
        pages: Vec<PageId>,
        t: &VectorClock,
        diffs: &[Arc<dsm_page::Diff>],
    ) {
        let entry = WnLogEntry {
            seq,
            pages,
            saved: false,
        };
        self.counters.created_bytes += entry.wire_size() as u64;
        self.wn.push(entry);
        for diff in diffs {
            let d = DiffLogEntry {
                diff: Arc::clone(diff),
                t: t.clone(),
                saved: false,
            };
            self.counters.created_bytes += d.wire_size() as u64;
            self.diffs.entry(d.diff.page).or_default().push(d);
        }
    }

    /// Record a grant sent to `to`.
    pub fn log_rel(&mut self, to: ProcId, entry: RelEntry) {
        self.rel[to].push(entry);
    }

    /// Record (mirror) a grant received from `from`.
    pub fn log_acq(&mut self, from: ProcId, entry: RelEntry) {
        self.acq[from].push(entry);
    }

    /// Record one of this node's barrier crossings.
    pub fn log_bar(&mut self, entry: BarEntry) {
        self.bar.push(entry);
    }

    /// Record a completed episode at the barrier manager.
    pub fn log_bar_mgr(&mut self, entry: MgrBarEntry) {
        self.bar_mgr.push(entry);
    }

    /// Find the grant this node sent to `to` for acquisition `acq_seq`
    /// (used to retransmit lost grants idempotently).
    pub fn find_rel(&self, to: ProcId, acq_seq: u64) -> Option<&RelEntry> {
        self.rel[to].iter().find(|e| e.acq_seq == acq_seq)
    }

    /// Rule 1: retain only write notices from intervals newer than
    /// `min_{j != me} T^j_ckp[me]`.
    pub fn trim_rule1(&mut self, min_peer_ckp_of_me: u32) {
        let mut dropped = 0u64;
        self.wn.retain(|e| {
            if e.seq > min_peer_ckp_of_me {
                true
            } else {
                dropped += e.wire_size() as u64;
                false
            }
        });
        self.counters.discarded_bytes += dropped;
    }

    /// Rule 2: trim grant logs against the acquirers' checkpoint timestamps
    /// (`tckp[j]` = last known checkpoint timestamp of process `j`) and the
    /// mirror against this node's own last checkpoint timestamp.
    pub fn trim_rule2(&mut self, tckp: &[VectorClock], own_ckp: &VectorClock) {
        let own_bound = own_ckp.get(self.me);
        for (j, peer_ckp) in tckp.iter().enumerate().take(self.n) {
            // Keep boundary entries (>=): an acquire with no writes since
            // the acquirer's checkpoint has t_after equal to the checkpoint
            // timestamp and is still needed for replay.
            let bound = peer_ckp.get(j);
            self.rel[j].retain(|e| e.t_after.get(j) >= bound);
            let me = self.me;
            self.acq[j].retain(|e| e.t_after.get(me) >= own_bound);
        }
    }

    /// Rule 3 (LLT): for each page with a known retained starting-copy
    /// version `p0.v[me]`, drop diffs from intervals the starting copy
    /// already contains.
    pub fn trim_rule3(&mut self, p0v_known: &HashMap<PageId, u32>) {
        let me = self.me;
        let mut dropped = 0u64;
        for (page, log) in self.diffs.iter_mut() {
            let Some(&bound) = p0v_known.get(page) else {
                continue;
            };
            log.retain(|e| {
                if e.t.get(me) > bound {
                    true
                } else {
                    dropped += e.wire_size() as u64;
                    false
                }
            });
        }
        self.diffs.retain(|_, log| !log.is_empty());
        self.counters.discarded_bytes += dropped;
    }

    /// Barrier-log analogue of Rule 1: drop episodes every process has
    /// checkpointed past.
    pub fn trim_bar(&mut self, min_ckpt_episode: u64) {
        self.bar.retain(|e| e.episode >= min_ckpt_episode);
        self.bar_mgr.retain(|e| e.episode >= min_ckpt_episode);
    }

    /// Bytes of log entries that have never been saved before, marking them
    /// saved (call exactly once per stable save).
    pub fn mark_saved(&mut self) -> u64 {
        let mut newly = 0u64;
        for e in &mut self.wn {
            if !e.saved {
                newly += e.wire_size() as u64;
                e.saved = true;
            }
        }
        for log in self.diffs.values_mut() {
            for e in log {
                if !e.saved {
                    newly += e.wire_size() as u64;
                    e.saved = true;
                }
            }
        }
        newly
    }

    /// Encode the stable-save portion (wn + diff logs; lock and barrier
    /// logs are mirrored on other nodes and never saved).
    pub fn encode_stable(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(4096);
        w.put_u64(self.wn.len() as u64);
        for e in &self.wn {
            w.put_u32(e.seq);
            wire::put_pages(&mut w, &e.pages);
        }
        let mut pages: Vec<_> = self.diffs.keys().copied().collect();
        pages.sort();
        w.put_u64(pages.len() as u64);
        for p in pages {
            w.put_u32(p.0);
            let log = &self.diffs[&p];
            w.put_u64(log.len() as u64);
            for e in log {
                wire::put_diff(&mut w, &e.diff);
                wire::put_vt(&mut w, &e.t);
            }
        }
        w.into_bytes()
    }

    /// Decode a stable save back into (wn, diffs) and install them,
    /// replacing the current contents (restart path).
    pub fn decode_stable(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(bytes);
        let wn_len = r.get_u64()? as usize;
        let mut wn = Vec::with_capacity(wn_len);
        for _ in 0..wn_len {
            let seq = r.get_u32()?;
            let pages = wire::get_pages(&mut r)?;
            wn.push(WnLogEntry {
                seq,
                pages,
                saved: true,
            });
        }
        let np = r.get_u64()? as usize;
        let mut diffs: HashMap<PageId, Vec<DiffLogEntry>> = HashMap::with_capacity(np);
        for _ in 0..np {
            let page = PageId(r.get_u32()?);
            let len = r.get_u64()? as usize;
            let mut log = Vec::with_capacity(len);
            for _ in 0..len {
                let diff = Arc::new(wire::get_diff(&mut r)?);
                let t = wire::get_vt(&mut r)?;
                log.push(DiffLogEntry {
                    diff,
                    t,
                    saved: true,
                });
            }
            diffs.insert(page, log);
        }
        self.wn = wn;
        self.diffs = diffs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_page::{Diff, Interval, Page};

    fn vt(v: &[u32]) -> VectorClock {
        VectorClock::from_vec(v.to_vec())
    }

    fn diff(me: ProcId, page: u32, seq: u32) -> Arc<Diff> {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[seq as u8; 8]);
        Arc::new(Diff::create(PageId(page), Interval { proc: me, seq }, &twin, &cur).unwrap())
    }

    #[test]
    fn interval_logging_accounts_bytes() {
        let mut l = VolatileLogs::new(0, 2);
        l.log_interval(1, vec![PageId(0)], &vt(&[1, 0]), &[diff(0, 0, 1)]);
        assert!(l.volatile_bytes() > 0);
        assert_eq!(l.counters().created_bytes, l.volatile_bytes());
        assert_eq!(l.counters().discarded_bytes, 0);
    }

    #[test]
    fn rule1_trims_covered_write_notices() {
        let mut l = VolatileLogs::new(0, 2);
        for seq in 1..=5 {
            l.log_interval(seq, vec![PageId(seq)], &vt(&[seq, 0]), &[]);
        }
        l.trim_rule1(3);
        let seqs: Vec<_> = l.wn.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert!(l.counters().discarded_bytes > 0);
    }

    #[test]
    fn rule2_trims_by_acquirer_checkpoint() {
        let mut l = VolatileLogs::new(0, 2);
        l.log_rel(
            1,
            RelEntry {
                acq_seq: 0,
                lock: 3,
                gen: 0,
                req_vt: vt(&[0, 0]),
                t_after: vt(&[1, 2]),
            },
        );
        l.log_rel(
            1,
            RelEntry {
                acq_seq: 1,
                lock: 3,
                gen: 0,
                req_vt: vt(&[1, 2]),
                t_after: vt(&[1, 5]),
            },
        );
        l.log_acq(
            1,
            RelEntry {
                acq_seq: 0,
                lock: 4,
                gen: 0,
                req_vt: vt(&[0, 0]),
                t_after: vt(&[2, 1]),
            },
        );
        // Process 1 checkpointed at [1,3]: the t_after=[1,2] grant is
        // strictly older and covered; the boundary would be retained.
        let tckp = vec![vt(&[0, 0]), vt(&[1, 3])];
        // Our own checkpoint at [3,1]: acq mirror entry t_after[me]=2 is
        // strictly below and trimmed.
        l.trim_rule2(&tckp, &vt(&[3, 1]));
        assert_eq!(l.rel[1].len(), 1);
        assert_eq!(l.rel[1][0].acq_seq, 1);
        assert!(l.acq[1].is_empty());
    }

    #[test]
    fn rule3_trims_diffs_covered_by_starting_copy() {
        let mut l = VolatileLogs::new(0, 2);
        l.log_interval(1, vec![PageId(9)], &vt(&[1, 0]), &[diff(0, 9, 1)]);
        l.log_interval(2, vec![PageId(9)], &vt(&[2, 0]), &[diff(0, 9, 2)]);
        l.log_interval(3, vec![PageId(7)], &vt(&[3, 0]), &[diff(0, 7, 3)]);
        let mut p0v = HashMap::new();
        p0v.insert(PageId(9), 1u32); // home's oldest retained copy has our interval 1
        l.trim_rule3(&p0v);
        assert_eq!(l.diffs[&PageId(9)].len(), 1);
        assert_eq!(l.diffs[&PageId(9)][0].diff.interval.seq, 2);
        assert_eq!(l.diffs[&PageId(7)].len(), 1); // unknown p0: untouched
        assert!(l.counters().discarded_bytes > 0);
    }

    #[test]
    fn stable_encode_decode_roundtrip() {
        let mut l = VolatileLogs::new(0, 2);
        l.log_interval(
            1,
            vec![PageId(0), PageId(2)],
            &vt(&[1, 0]),
            &[diff(0, 0, 1)],
        );
        l.log_interval(2, vec![PageId(2)], &vt(&[2, 1]), &[diff(0, 2, 2)]);
        let bytes = l.encode_stable();
        // Saving marks entries; decoding marks them saved too.
        assert!(l.mark_saved() > 0);
        assert_eq!(l.mark_saved(), 0, "second save writes nothing new");
        let mut l2 = VolatileLogs::new(0, 2);
        l2.decode_stable(&bytes).unwrap();
        assert_eq!(l2.wn, l.wn);
        assert_eq!(l2.diffs.len(), 2);
        assert_eq!(l2.diffs[&PageId(0)], l.diffs[&PageId(0)]);
        assert_eq!(l2.diffs[&PageId(2)], l.diffs[&PageId(2)]);
    }

    #[test]
    fn find_rel_locates_grants_for_retransmission() {
        let mut l = VolatileLogs::new(0, 2);
        l.log_rel(
            1,
            RelEntry {
                acq_seq: 5,
                lock: 0,
                gen: 0,
                req_vt: vt(&[0, 1]),
                t_after: vt(&[2, 1]),
            },
        );
        assert!(l.find_rel(1, 5).is_some());
        assert!(l.find_rel(1, 4).is_none());
    }

    #[test]
    fn barrier_trim_drops_old_episodes() {
        let mut l = VolatileLogs::new(0, 2);
        for ep in 0..4 {
            l.log_bar(BarEntry {
                episode: ep,
                arrive_vt: vt(&[0, 0]),
                result_vt: vt(&[0, 0]),
            });
        }
        l.trim_bar(2);
        let eps: Vec<_> = l.bar.iter().map(|e| e.episode).collect();
        assert_eq!(eps, vec![2, 3]);
    }
}
