//! Log-based recovery.
//!
//! A restarted node (§4.3 of the paper):
//!
//! 1. restores processor-equivalent state from its last local checkpoint
//!    (vector timestamp, homed pages, counters, application state at a step
//!    boundary, saved logs);
//! 2. performs a handshake collecting from every peer its write-notice log,
//!    the grants it sent us (`rel_log[us]`), the mirror restoring our own
//!    release logs (`acq_log[us]`), barrier crossing logs, and lock-chain
//!    generations (manager rebuild);
//! 3. fully restores its homed pages by applying every collected diff in a
//!    linear extension of happens-before, gated by how much of our own
//!    history each diff's creator had seen;
//! 4. re-executes the application from the checkpointed step, replaying
//!    acquires and barriers from the collected logs and page misses by
//!    *local emulation of a home* — maximal starting copy plus partially
//!    ordered diffs;
//! 5. switches to live execution at the first operation with no log record
//!    (the crash point), processing the backlog of deferred peer requests.

use std::collections::HashMap;
use std::sync::Arc;

use dsm_page::{Page, PageId, ProcId, VectorClock};
use dsm_storage::SegmentKind;
use dsm_trace::{EventKind, RecPhase};
use hlrc::barrier::BarrierManager;
use hlrc::WnTable;

use crate::ft::ckpt::CheckpointBlob;
use crate::ft::logs::{DiffLogEntry, RelEntry, VolatileLogs};
use crate::msg::Payload;
use crate::runtime::node::{apply_pending_home, handle_msg, Mode, NodeShared, NodeState};

/// One remote page being rebuilt by local home emulation.
#[derive(Debug)]
pub(crate) struct ReplayPage {
    /// The evolving copy (starts as the maximal starting copy `p0`).
    pub copy: Page,
    /// Versions applied so far (starts as `p0.v`).
    pub version: VectorClock,
    /// Collected, not-yet-applied diffs (kept in linear-extension order).
    pub entries: Vec<DiffLogEntry>,
}

/// Everything the replay needs, attached to the node while recovering.
#[derive(Debug, Default)]
pub(crate) struct ReplayState {
    /// When the recovery began (for the recovery-time statistic).
    pub started: Option<std::time::Instant>,
    /// When replay (phase 4→5 re-execution) began, for the trace span.
    pub replay_from: Option<std::time::Instant>,
    /// Grants to this node, keyed by our acquisition sequence number.
    pub rel: HashMap<u64, (ProcId, RelEntry)>,
    /// Completed barrier episodes: episode → joined timestamp.
    pub bar_results: HashMap<u64, VectorClock>,
    /// Emulated-home copies of remote pages.
    pub pages: HashMap<PageId, ReplayPage>,
    /// Diffs for our homed pages not yet applied (gated by how much of our
    /// own history their creators had seen).
    pub pending_home: Vec<DiffLogEntry>,
    /// Highest interval of OURS any collected peer record proves existed:
    /// peers only learn our interval k after the op that created it
    /// completed, so a record carrying our component `> vt[me]` during
    /// replay is proof the op at hand finished before the crash. Needed to
    /// recognize a *final* self-granted acquire (which leaves no mirrored
    /// grant record and no later logged event of our own).
    pub evidence_self: u32,
}

/// Sort key: a linear extension of the happens-before partial order on
/// diffs (if `a.t <= b.t` pointwise with `a != b`, then `sum(a) < sum(b)`).
pub(crate) fn linear_key(e: &DiffLogEntry) -> (u64, usize, u32) {
    let sum: u64 = e.t.as_slice().iter().map(|&x| x as u64).sum();
    (sum, e.diff.interval.proc, e.diff.interval.seq)
}

/// Restore node state from the last checkpoint, collect peer logs, rebuild
/// homed pages, and install the replay state. Returns the application's
/// `(step, encoded state)` to resume from.
pub(crate) fn run_recovery(shared: &Arc<NodeShared>) -> (u64, Vec<u8>) {
    let me = shared.me;
    let n = shared.n;

    // ---- Phase 1: restore from the restart checkpoint ----------------------
    let t_recovery = std::time::Instant::now();
    let homed: Vec<PageId>;
    let (step, app_state) = {
        let mut st = shared.state.lock();
        assert_eq!(
            st.mode,
            Mode::Recovering,
            "recovery outside Recovering mode"
        );
        st.recoveries += 1;

        let store = Arc::clone(&st.ft.as_ref().expect("recovery requires FT").store);
        let mut retained_blobs: Vec<CheckpointBlob> = store
            .segment_ids(SegmentKind::Checkpoint)
            .into_iter()
            .map(|id| {
                CheckpointBlob::decode(&store.read_segment(SegmentKind::Checkpoint, id).unwrap())
                    .expect("corrupt checkpoint blob")
            })
            .collect();
        retained_blobs.sort_by_key(|b| b.seq);
        let latest = retained_blobs.last().cloned();

        // Reset protocol state.
        st.wn_table = WnTable::new();
        st.pending_grants.clear();
        st.lock_chain_info.clear();
        st.wait = crate::runtime::node::WaitSlot::None;
        st.prefetch.clear();
        st.pt.home_store().clear_waiting();
        st.wn_since_barrier.clear();
        {
            let mut sync = st.sync.lock();
            sync.lock_mgr = hlrc::LockManagerTable::new(me);
            sync.bar_mgr = None;
        }
        st.rec_inbox.clear();

        let (step, app_state) = match &latest {
            Some(ckpt) => {
                st.vt = ckpt.tckp.clone();
                st.acq_seq_next = ckpt.acq_seq_next;
                st.bar_episode = ckpt.bar_episode;
                st.tenure = ckpt
                    .tenures
                    .iter()
                    .map(|&(l, a, _, r)| (l, (a, r)))
                    .collect();
                st.tenure_gen = ckpt.tenures.iter().map(|&(l, _, g, _)| (l, g)).collect();
                st.held = ckpt
                    .tenures
                    .iter()
                    .filter(|&&(_, _, _, released)| !released)
                    .map(|&(l, _, _, _)| l)
                    .collect();
                st.last_release_vt = ckpt.last_release_vts.iter().cloned().collect();
                st.pt.reset_for_restart(&ckpt.needed);
                // Restore homed pages; zero any never-checkpointed ones.
                let in_ckpt: std::collections::HashSet<PageId> =
                    ckpt.home_pages.iter().map(|(p, _, _)| *p).collect();
                for p in st.pt.homed_pages() {
                    if !in_ckpt.contains(&p) {
                        let zeros = vec![0u8; st.page_size];
                        st.pt.restore_home_page(p, &zeros, VectorClock::zero(n));
                    }
                }
                for (p, v, bytes) in &ckpt.home_pages {
                    st.pt.restore_home_page(*p, bytes, v.clone());
                }
                (ckpt.step, ckpt.app_state.clone())
            }
            None => {
                // Crash before the first checkpoint: restart from scratch.
                st.vt = VectorClock::zero(n);
                st.acq_seq_next = 0;
                st.bar_episode = 0;
                st.tenure.clear();
                st.tenure_gen.clear();
                st.held.clear();
                st.last_release_vt.clear();
                st.pt.reset_for_restart(&[]);
                for p in st.pt.homed_pages() {
                    let zeros = vec![0u8; st.page_size];
                    st.pt.restore_home_page(p, &zeros, VectorClock::zero(n));
                }
                (0, Vec::new())
            }
        };
        st.alloc_cursor = 0;
        st.shared_bytes = st.pt.len() as u64 * st.page_size as u64;

        // Reset FT state from stable storage.
        {
            let ft = st.ft.as_mut().unwrap();
            ft.report.recoveries += 1;
            ft.logs = VolatileLogs::new(me, n);
            if let Some(saved) = store.read_segment(SegmentKind::Log, 0) {
                ft.logs.decode_stable(&saved).expect("corrupt saved logs");
            }
            ft.retained = retained_blobs
                .iter()
                .map(|b| crate::ft::RetainedCkpt {
                    seq: b.seq,
                    versions: b
                        .home_pages
                        .iter()
                        .map(|(p, v, _)| (*p, v.clone()))
                        .collect(),
                })
                .collect();
            match &latest {
                Some(ckpt) => {
                    ft.ckpt_seq = ckpt.seq;
                    ft.last_ckpt_vt = ckpt.tckp.clone();
                    ft.last_ckpt_episode = ckpt.bar_episode;
                    ft.last_bar_arrive_seq = ckpt.last_bar_arrive_seq;
                }
                None => {
                    ft.ckpt_seq = 0;
                    ft.last_ckpt_vt = VectorClock::zero(n);
                    ft.last_ckpt_episode = 0;
                    ft.last_bar_arrive_seq = 0;
                }
            }
            ft.tckp = vec![VectorClock::zero(n); n];
            ft.peer_ckpt_seq = vec![0; n];
            ft.peer_ckpt_episode = vec![0; n];
            ft.p0v_known.clear();
            ft.p0v_sent.clear();
            ft.piggy_sent = vec![u64::MAX; n];
            ft.ckpt_due = false;

            // Own write notices back into the table and the since-barrier
            // buffer.
            let bar_seq = ft.last_bar_arrive_seq;
            let own_wn: Vec<(u32, Vec<PageId>)> = ft
                .logs
                .wn
                .iter()
                .map(|e| (e.seq, e.pages.clone()))
                .collect();
            for (seq, pages) in own_wn {
                let iv = dsm_page::Interval { proc: me, seq };
                st.wn_table.insert_parts(iv, pages.clone());
                if seq > bar_seq {
                    st.wn_since_barrier.push(hlrc::WriteNotice {
                        interval: iv,
                        pages,
                    });
                }
            }
            st.wn_since_barrier.sort_by_key(|w| w.interval.seq);
        }

        homed = st.pt.homed_pages();

        st.hists
            .rec_restore
            .record(t_recovery.elapsed().as_nanos() as u64);
        st.tracer.emit_span(
            EventKind::RecoveryPhase {
                phase: RecPhase::Restore,
            },
            t_recovery,
        );

        // ---- Phase 2: handshake ---------------------------------------------
        for p in 0..n {
            if p != me {
                st.send(p, Payload::RecLogReq);
            }
        }
        (step, app_state)
    };

    // ---- Phase 3: collect and merge log replies -----------------------------
    let t_collect = std::time::Instant::now();
    let mut replay = ReplayState::default();
    {
        let mut st = shared.state.lock();
        let mut got: std::collections::HashSet<ProcId> = std::collections::HashSet::new();
        while got.len() < n - 1 {
            let mut i = 0;
            while i < st.rec_inbox.len() {
                if matches!(st.rec_inbox[i].1, Payload::RecLogReply { .. }) {
                    let (peer, payload) = st.rec_inbox.remove(i);
                    if !got.insert(peer) {
                        continue;
                    }
                    let Payload::RecLogReply {
                        wn,
                        rel_for_you,
                        acq_mirror,
                        bar,
                        bar_mgr,
                        lock_chains,
                        gen_floor,
                    } = payload
                    else {
                        unreachable!()
                    };
                    for e in wn {
                        st.wn_table.insert_parts(
                            dsm_page::Interval {
                                proc: peer,
                                seq: e.seq,
                            },
                            e.pages,
                        );
                    }
                    // The peer's rel_log[me] is simultaneously our acquire
                    // replay input and the mirror restoring our acq_log.
                    st.ft.as_mut().unwrap().logs.acq[peer] = rel_for_you.clone();
                    for e in rel_for_you {
                        replay.evidence_self = replay.evidence_self.max(e.t_after.get(me));
                        replay.rel.insert(e.acq_seq, (peer, e));
                    }
                    // acq_mirror restores our rel_log[peer] and the chain
                    // info for grants we issued. Its timestamps also carry
                    // our own clock component: a grant we gave after
                    // releasing interval k proves interval k completed.
                    {
                        for e in &acq_mirror {
                            replay.evidence_self = replay.evidence_self.max(e.t_after.get(me));
                            let c = st
                                .lock_chain_info
                                .entry(e.lock)
                                .or_insert((e.gen, peer, e.acq_seq));
                            if e.gen >= c.0 {
                                *c = (e.gen, peer, e.acq_seq);
                            }
                        }
                        let ft = st.ft.as_mut().unwrap();
                        ft.logs.rel[peer] = acq_mirror;
                    }
                    for e in &bar {
                        replay.evidence_self = replay.evidence_self.max(e.result_vt.get(me));
                        replay.bar_results.insert(e.episode, e.result_vt.clone());
                    }
                    for e in &bar_mgr {
                        replay.evidence_self = replay.evidence_self.max(e.result_vt.get(me));
                        replay.bar_results.insert(e.episode, e.result_vt.clone());
                    }
                    // Manager rebuild: chains for locks we manage.
                    // Chain reset: the peer discarded its queued edges for
                    // our locks when serving the handshake and reports only
                    // materialized acquisitions (its delivered tenures, the
                    // grants in its release log). Rebuild tails from those;
                    // the discarded edges' requesters re-drive their
                    // acquisitions and are chained fresh. `gen_floor` keeps
                    // fresh edges above every pre-crash generation,
                    // including the discarded ones.
                    {
                        let mut sync = st.sync.lock();
                        for (lock, gen, grantee, grantee_acq, granter) in lock_chains {
                            if lock % n == me {
                                sync.lock_mgr.restore_chain(
                                    lock,
                                    gen,
                                    grantee,
                                    grantee_acq,
                                    granter,
                                );
                            }
                        }
                        for (lock, gen) in gen_floor {
                            if lock % n == me {
                                sync.lock_mgr.bound_gen(lock, gen);
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if got.len() < n - 1 {
                shared
                    .cv
                    .wait_for(&mut st, std::time::Duration::from_secs(30));
            }
        }
        // Our own chains: locks we manage where we granted (restored from
        // the grantees' mirrors — every entry was a delivered grant), plus
        // our own checkpoint-restored tenures of locks we manage (replayed
        // tenures restore theirs as the replay reaches them).
        let own_chains: Vec<(hlrc::LockId, u64, ProcId, u64)> = st
            .lock_chain_info
            .iter()
            .map(|(&l, &(g, t, a))| (l, g, t, a))
            .collect();
        let own_tenures: Vec<(hlrc::LockId, u64, u64)> = st
            .tenure
            .iter()
            .filter(|(&l, _)| l % n == me)
            .map(|(&l, &(a, _))| (l, st.tenure_gen.get(&l).copied().unwrap_or(0), a))
            .collect();
        {
            let mut sync = st.sync.lock();
            for (lock, gen, grantee, grantee_acq) in own_chains {
                if lock % n == me {
                    sync.lock_mgr
                        .restore_chain(lock, gen, grantee, grantee_acq, Some(me));
                }
            }
            for (lock, gen, acq) in own_tenures {
                sync.lock_mgr.restore_chain(lock, gen, me, acq, None);
            }
        }
        // Rebuild the barrier-manager mirror for future recoveries of peers.
        if me == 0 {
            let entries: Vec<crate::ft::logs::MgrBarEntry> = replay
                .bar_results
                .iter()
                .map(|(&episode, vt)| crate::ft::logs::MgrBarEntry {
                    episode,
                    arrival_vts: vec![VectorClock::zero(n); n],
                    result_vt: vt.clone(),
                })
                .collect();
            let ft = st.ft.as_mut().unwrap();
            for e in entries {
                ft.logs.log_bar_mgr(e);
            }
            ft.logs.bar_mgr.sort_by_key(|e| e.episode);
        }

        // ---- Phase 4: restore homed pages -----------------------------------
        for &page in &homed {
            for p in 0..n {
                if p != me {
                    st.send(p, Payload::RecDiffReq { page });
                }
            }
        }
        let want = homed.len() * (n - 1);
        let mut entries: Vec<DiffLogEntry> = Vec::new();
        let mut got_diffs = 0usize;
        while got_diffs < want {
            let mut i = 0;
            while i < st.rec_inbox.len() {
                if matches!(st.rec_inbox[i].1, Payload::RecDiffReply { .. }) {
                    let (_, payload) = st.rec_inbox.remove(i);
                    let Payload::RecDiffReply { entries: es, .. } = payload else {
                        unreachable!()
                    };
                    entries.extend(es);
                    got_diffs += 1;
                } else {
                    i += 1;
                }
            }
            if got_diffs < want {
                shared
                    .cv
                    .wait_for(&mut st, std::time::Duration::from_secs(30));
            }
        }
        entries.sort_by_key(linear_key);
        for e in &entries {
            replay.evidence_self = replay.evidence_self.max(e.t.get(me));
        }
        replay.pending_home = entries;
        replay.started = Some(t_recovery);
        replay.replay_from = Some(std::time::Instant::now());
        st.replay = Some(replay);
        apply_pending_home(&mut st);
        st.hists
            .rec_log_collect
            .record(t_collect.elapsed().as_nanos() as u64);
        st.tracer.emit_span(
            EventKind::RecoveryPhase {
                phase: RecPhase::LogCollect,
            },
            t_collect,
        );
    }

    (step, app_state)
}

/// Switch from replay to live execution: the first operation with no log
/// record is the crash point.
pub(crate) fn go_live(st: &mut NodeState) {
    apply_pending_home(st);
    let replay = st.replay.take().expect("go_live without replay state");
    if let (Some(t0), Some(ft)) = (replay.started, st.ft.as_mut()) {
        ft.report.recovery_time += t0.elapsed();
    }
    if let Some(t0) = replay.replay_from {
        st.hists.rec_replay.record(t0.elapsed().as_nanos() as u64);
        st.tracer.emit_span(
            EventKind::RecoveryPhase {
                phase: RecPhase::Replay,
            },
            t0,
        );
    }
    if !replay.pending_home.is_empty() {
        for e in &replay.pending_home {
            eprintln!(
                "[go_live diag] node {} vt={} leftover diff page {} iv {} t={}",
                st.me, st.vt, e.diff.page, e.diff.interval, e.t
            );
        }
        panic!(
            "node {}: homed-page diffs left unapplied at the crash point (vt={})",
            st.me, st.vt
        );
    }
    let n = st.n;
    if st.me == 0 {
        // Restore the barrier manager. Arrival timestamps and notice sets
        // for the last completed episode are rebuilt conservatively (zero
        // arrivals, all notices the joined timestamp covers); receivers skip
        // notices they already cover, so extras are harmless.
        let mut mgr = BarrierManager::new(n);
        let ep = st.bar_episode;
        let last = if ep > 0 {
            replay.bar_results.get(&(ep - 1)).map(|vt| {
                let all_wns = st.wn_table.missing_between(&VectorClock::zero(n), vt);
                (vt.clone(), vec![VectorClock::zero(n); n], all_wns)
            })
        } else {
            None
        };
        mgr.restore(ep, last);
        st.sync.lock().bar_mgr = Some(mgr);
    }
    st.set_mode(Mode::Normal);
    let backlog = std::mem::take(&mut st.backlog);
    for (from, payload) in backlog {
        handle_msg(st, from, payload);
    }
}
