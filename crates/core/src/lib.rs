#![warn(missing_docs)]
//! # ftdsm — fault-tolerant home-based software distributed shared memory
//!
//! A reproduction of *Sultan, Nguyen, Iftode: "Scalable Fault-Tolerant
//! Distributed Shared Memory" (SC 2000)*: a Home-based Lazy Release
//! Consistency (HLRC) software DSM extended with independent checkpointing,
//! volatile sender-based logging, Lazy Log Trimming (LLT) and Checkpoint
//! Garbage Collection (CGC), recovering from single-node fail-stop failures
//! by local log-driven replay.
//!
//! The cluster is simulated inside one process (one application thread plus
//! one protocol service thread per node over a byte-accounted fabric; see
//! DESIGN.md for the substitutions relative to the paper's Myrinet/VMMC
//! testbed).
//!
//! ## Quickstart
//!
//! ```
//! use ftdsm::{run, ClusterConfig, HomeAlloc};
//!
//! let cfg = ClusterConfig::base(2).with_page_size(1024);
//! let report = run(cfg, &[], |proc| {
//!     // SPMD: the same closure runs on every node.
//!     let counts = proc.alloc_vec::<u64>(2, HomeAlloc::Interleaved);
//!     let me = proc.me();
//!     proc.acquire(0);
//!     counts.set(proc, me, (me as u64 + 1) * 10);
//!     proc.release(0);
//!     proc.barrier();
//!     counts.get(proc, 0) + counts.get(proc, 1)
//! });
//! assert_eq!(report.results, vec![30, 30]);
//! ```

pub mod config;
pub mod ft;
pub mod monitor;
pub mod msg;
pub mod runtime;
pub mod shareable;
pub mod stats;
pub mod wire;

pub use config::{
    seed_from_env, CkptPolicy, ClusterConfig, FailureSpec, FtConfig, HomeAlloc, MetricsConfig,
};
pub use dsm_member::{MemberConfig, MemberStats};
pub use dsm_net::{FaultPlan, FaultRule};
pub use dsm_page::{GlobalAddr, PageId};
pub use dsm_storage::{DiskMode, DiskModel};
pub use dsm_trace::{Trace, TraceConfig};
pub use hlrc::LockId;
pub use monitor::{Monitor, MonitorReport, Violation};
pub use runtime::{run, AppState, Process, SharedVec};
pub use shareable::Shareable;
pub use stats::{Breakdown, FtReport, NodeReport, RunReport};
