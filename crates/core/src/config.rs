//! Cluster and fault-tolerance configuration.

use std::path::PathBuf;
use std::time::Duration;

use dsm_member::MemberConfig;
use dsm_net::FaultPlan;
use dsm_storage::DiskModel;
use dsm_trace::TraceConfig;

/// The cluster seed when `FTDSM_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xF7D5;

/// Read the cluster seed from the `FTDSM_SEED` environment variable
/// (decimal, or hex with an `0x` prefix); falls back to [`DEFAULT_SEED`].
/// Every chaos/membership test failure echoes the seed it ran with, so any
/// failure reproduces with `FTDSM_SEED=<seed> cargo test …`.
pub fn seed_from_env() -> u64 {
    match std::env::var("FTDSM_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("FTDSM_SEED not a u64: {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// When a node decides to take an independent checkpoint.
///
/// Decisions are evaluated at synchronization points (the paper samples the
/// volatile log size only there) and latch a "checkpoint due" flag; the
/// checkpoint itself is taken at the application's next safe point (a step
/// boundary of [`crate::Process::run_steps`]), where private state can be
/// captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CkptPolicy {
    /// The paper's log-overflow policy `OF(L)`: checkpoint when the volatile
    /// log exceeds `l` times the shared-memory footprint.
    LogOverflow {
        /// Limit as a fraction of the shared footprint (e.g. 0.1).
        l: f64,
    },
    /// Checkpoint every `steps` application safe points.
    EverySteps(u64),
    /// Checkpoint after every `k`-th barrier episode. Because all nodes
    /// cross the same episodes, their checkpoints align without any extra
    /// coordination messages — the "checkpoints taken by all processes at a
    /// barrier" scheme the paper suggests for barrier-heavy applications
    /// (§5.4), which amortizes the stall inside the barrier wait instead of
    /// spreading stalls randomly between barriers.
    AtBarrier(u64),
    /// Checkpoint only when the application calls
    /// [`crate::Process::request_checkpoint`].
    Manual,
    /// Never checkpoint (logging still runs; useful for overhead isolation).
    Never,
}

/// Fault-tolerance configuration.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Checkpoint policy.
    pub policy: CkptPolicy,
    /// Maximum number of per-page `p0.v[writer]` integers piggybacked on a
    /// single home→writer message (the lazy CGC/LLT propagation).
    pub piggy_page_batch: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            policy: CkptPolicy::LogOverflow { l: 0.1 },
            piggy_page_batch: 32,
        }
    }
}

/// How shared allocations choose page homes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeAlloc {
    /// Pages round-robin across nodes (page i of the allocation homed at
    /// `(first_page + i) % n`).
    Interleaved,
    /// The allocation's pages are split into `n` contiguous blocks, block
    /// `k` homed at node `k` — the distribution SPLASH-style apps get from
    /// first-touch.
    Blocked,
    /// All pages homed at one node.
    Node(usize),
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (the paper uses 8).
    pub nodes: usize,
    /// Page size in bytes (power of two, multiple of 8).
    pub page_size: usize,
    /// Fault tolerance: `None` runs the base HLRC protocol.
    pub ft: Option<FtConfig>,
    /// Stable-storage timing model.
    pub disk: DiskModel,
    /// Protocol event tracing. Defaults to the `FTDSM_TRACE*` environment
    /// variables, so any run can be traced without code changes.
    pub trace: TraceConfig,
    /// The run's seed: drives the chaos plan's fault decisions. Defaults to
    /// `FTDSM_SEED` (see [`seed_from_env`]).
    pub seed: u64,
    /// Fault injection on the fabric. The plan's own `seed` field is
    /// ignored — the cluster seed above is threaded in so one knob
    /// reproduces a run. Enabling chaos auto-enables membership (the retry
    /// layer is what makes a lossy fabric survivable).
    pub chaos: Option<FaultPlan>,
    /// Heartbeat membership / failure detection, plus the request
    /// timeout-retry layer. `None` (the default) keeps the original
    /// orchestrated-recovery behavior with a reliable fabric.
    pub membership: Option<MemberConfig>,
    /// Run the online protocol-invariant monitor against the live event
    /// stream. Forces tracing on (the monitor is an event sink); the run
    /// panics at collection time on the first violation, with the offending
    /// causal flow attached.
    pub monitor: bool,
    /// Periodic metrics sampling during the run. `None` still registers the
    /// metrics handles (they are a handful of atomics); it just skips the
    /// sampler thread. Defaults to the `FTDSM_METRICS_EVERY_MS` /
    /// `FTDSM_METRICS_OUT` environment variables.
    pub metrics: Option<MetricsConfig>,
    /// Test-only: after the first diff-batch apply on a home node, re-emit
    /// the apply event with its already-applied interval, simulating a stale
    /// (duplicate) apply. Exists so tests can prove the invariant monitor
    /// catches real protocol bugs; never set outside tests.
    pub inject_stale_apply: bool,
}

/// Periodic metrics sampling configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Sampling period.
    pub every: Duration,
    /// Where to append JSONL snapshots (one object per sample). A sibling
    /// `.prom` file with the final Prometheus exposition is written next to
    /// it. `None` keeps the series in memory only (returned in the report).
    pub out: Option<PathBuf>,
}

impl MetricsConfig {
    /// Read the sampling config from `FTDSM_METRICS_EVERY_MS` (period in
    /// milliseconds; absent or 0 disables sampling) and `FTDSM_METRICS_OUT`
    /// (optional JSONL path).
    pub fn from_env() -> Option<Self> {
        let ms: u64 = std::env::var("FTDSM_METRICS_EVERY_MS")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        if ms == 0 {
            return None;
        }
        Some(MetricsConfig {
            every: Duration::from_millis(ms),
            out: std::env::var("FTDSM_METRICS_OUT").ok().map(PathBuf::from),
        })
    }
}

impl ClusterConfig {
    /// Base-protocol configuration (no fault tolerance), instant disk.
    pub fn base(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            page_size: 4096,
            ft: None,
            disk: DiskModel::instant(),
            trace: TraceConfig::from_env(),
            seed: seed_from_env(),
            chaos: None,
            membership: None,
            monitor: false,
            metrics: MetricsConfig::from_env(),
            inject_stale_apply: false,
        }
    }

    /// Fault-tolerant configuration with the default `OF(0.1)` policy and an
    /// instant disk (tests); benchmarks override `disk`.
    pub fn fault_tolerant(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            page_size: 4096,
            ft: Some(FtConfig::default()),
            disk: DiskModel::instant(),
            trace: TraceConfig::from_env(),
            seed: seed_from_env(),
            chaos: None,
            membership: None,
            monitor: false,
            metrics: MetricsConfig::from_env(),
            inject_stale_apply: false,
        }
    }

    /// Replace the page size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Replace the checkpoint policy (enables FT if it was off).
    pub fn with_policy(mut self, policy: CkptPolicy) -> Self {
        match &mut self.ft {
            Some(ft) => ft.policy = policy,
            None => {
                self.ft = Some(FtConfig {
                    policy,
                    ..FtConfig::default()
                })
            }
        }
        self
    }

    /// Replace the disk model.
    pub fn with_disk(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// Replace the trace configuration (e.g. `TraceConfig::enabled()`).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the seed (normally left to `FTDSM_SEED`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a chaos fault plan to the fabric. The plan's embedded seed is
    /// replaced by the cluster seed; membership (and with it the retry
    /// layer) is switched on if it wasn't already.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        if self.membership.is_none() {
            self.membership = Some(MemberConfig::default());
        }
        self
    }

    /// Enable heartbeat membership / failure detection with `cfg`.
    pub fn with_membership(mut self, cfg: MemberConfig) -> Self {
        self.membership = Some(cfg);
        self
    }

    /// Enable (or disable) the online protocol-invariant monitor. Enabling
    /// it forces tracing on — the monitor consumes the live event stream.
    pub fn with_monitor(mut self, on: bool) -> Self {
        self.monitor = on;
        if on && !self.trace.enabled {
            self.trace = TraceConfig::enabled();
        }
        self
    }

    /// Enable periodic metrics sampling.
    pub fn with_metrics(mut self, m: MetricsConfig) -> Self {
        self.metrics = Some(m);
        self
    }

    /// Is fault tolerance enabled?
    pub fn ft_enabled(&self) -> bool {
        self.ft.is_some()
    }
}

/// A scripted fail-stop failure: node `node` crashes when its DSM operation
/// counter reaches `at_op`. The paper's model allows a single failure at a
/// time; the runtime rejects overlapping failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSpec {
    /// The victim.
    pub node: usize,
    /// Crash when the victim's cumulative DSM-operation count reaches this
    /// value (operations = reads, writes, syncs — anything the runtime
    /// mediates).
    pub at_op: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ClusterConfig::base(8)
            .with_page_size(1024)
            .with_policy(CkptPolicy::LogOverflow { l: 1.0 });
        assert_eq!(c.nodes, 8);
        assert_eq!(c.page_size, 1024);
        assert!(c.ft_enabled());
        match c.ft.unwrap().policy {
            CkptPolicy::LogOverflow { l } => assert_eq!(l, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn base_config_has_no_ft() {
        assert!(!ClusterConfig::base(4).ft_enabled());
    }
}
