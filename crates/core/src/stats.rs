//! Execution statistics.
//!
//! Each node's application thread accumulates a wall-clock [`Breakdown`]
//! around every DSM operation (Figure 3 of the paper), and the
//! fault-tolerance layer tracks log/checkpoint byte counters (Tables 3–4,
//! Figure 4). The harness aggregates per-node reports into the paper's
//! tables.

use std::time::Duration;

use dsm_member::MemberStats;
use dsm_metrics::TimeSeries;
use dsm_net::stats::TrafficSnapshot;
use dsm_net::PhaseAcc;
use dsm_page::PoolStats;
use dsm_storage::StoreStats;
use dsm_trace::{LatencyHists, Trace};

use crate::ft::logs::LogCounters;
use crate::monitor::MonitorReport;

/// Wall-clock execution-time breakdown of one node's application thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Total application wall time.
    pub total: Duration,
    /// Waiting for page fetches from homes.
    pub page_wait: Duration,
    /// Waiting for lock grants.
    pub lock_wait: Duration,
    /// Waiting at barriers.
    pub barrier_wait: Duration,
    /// Protocol work on the application thread (diff creation, write-notice
    /// application, message assembly).
    pub protocol: Duration,
    /// Fault-tolerance logging and trimming work.
    pub logging: Duration,
    /// Modeled stable-storage write time.
    pub disk_write: Duration,
}

impl Breakdown {
    /// Computation time: whatever the overheads don't account for.
    pub fn compute(&self) -> Duration {
        self.total
            .saturating_sub(self.page_wait)
            .saturating_sub(self.lock_wait)
            .saturating_sub(self.barrier_wait)
            .saturating_sub(self.protocol)
            .saturating_sub(self.logging)
            .saturating_sub(self.disk_write)
    }

    /// Elementwise sum of two breakdowns.
    pub fn merged(&self, o: &Breakdown) -> Breakdown {
        Breakdown {
            total: self.total + o.total,
            page_wait: self.page_wait + o.page_wait,
            lock_wait: self.lock_wait + o.lock_wait,
            barrier_wait: self.barrier_wait + o.barrier_wait,
            protocol: self.protocol + o.protocol,
            logging: self.logging + o.logging,
            disk_write: self.disk_write + o.disk_write,
        }
    }
}

/// Fault-tolerance statistics of one node.
#[derive(Debug, Clone, Default)]
pub struct FtReport {
    /// Checkpoints taken.
    pub ckpts_taken: u64,
    /// Volatile-log byte counters (created / discarded by trimming).
    pub log_counters: LogCounters,
    /// Cumulative bytes of volatile logs saved to stable storage.
    pub log_bytes_saved: u64,
    /// Largest observed stable-log residency (Table 4 "max log disk").
    pub max_stable_log_bytes: u64,
    /// Largest observed checkpoint-window size (Table 4 `Wmax`).
    pub max_ckpt_window: usize,
    /// `(checkpoint number, stable-log bytes after that checkpoint)` —
    /// Figure 4's curve.
    pub stable_log_curve: Vec<(u64, u64)>,
    /// Stable-storage statistics (disk traffic, modeled write time).
    pub store: StoreStats,
    /// Number of recoveries this node performed.
    pub recoveries: u64,
    /// Total wall time spent in recovery (checkpoint restore + log
    /// collection + replay, up to the transition back to live execution).
    pub recovery_time: std::time::Duration,
}

/// Everything measured on one node.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Application-thread time breakdown.
    pub breakdown: Breakdown,
    /// Network traffic sent by this node.
    pub traffic: TrafficSnapshot,
    /// Fault-tolerance statistics (zeroed when FT is off).
    pub ft: FtReport,
    /// DSM operations performed.
    pub ops: u64,
    /// Protocol latency histograms (always collected; cheap).
    pub hists: LatencyHists,
    /// Twin/copy buffer pool statistics (hits = allocation-free reuses).
    pub pool: PoolStats,
    /// Service-thread protocol time attributed per message kind (sorted by
    /// kind name). The sum equals `breakdown.protocol`'s service share.
    pub svc_time_by_kind: Vec<(&'static str, Duration)>,
    /// Messages sent by this node per payload kind (sorted by kind name).
    pub msg_kinds: Vec<(&'static str, u64)>,
    /// Membership/failure-detection counters (zeroed when membership is off).
    pub member: MemberStats,
    /// Request retransmissions issued by this node (page/lock/barrier/diff
    /// traffic resent after the retry timeout; zero when retries are off).
    pub retransmits: u64,
    /// Duplicate deliveries this node detected and suppressed (re-granted
    /// locks, re-delivered pages, stale diff acks, mismatched prefetches).
    pub dup_suppressed: u64,
}

/// The result of a cluster run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-node application results (in node order).
    pub results: Vec<R>,
    /// Per-node statistics.
    pub nodes: Vec<NodeReport>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Bytes of shared memory allocated.
    pub shared_bytes: u64,
    /// FNV-1a hash of the final shared memory contents (read from the
    /// authoritative home copies). Crash-free and crash+recovery runs of a
    /// deterministic application must produce the same hash.
    pub shared_hash: u64,
    /// The run's protocol trace (empty rings unless tracing was enabled);
    /// export with [`dsm_trace::export`].
    pub trace: Trace,
    /// Receive-side latency attribution per message kind, cluster-wide:
    /// queue wait vs chaos-injected delay. Empty unless tracing was on.
    pub phases: Vec<(&'static str, PhaseAcc)>,
    /// Periodic metrics snapshots sampled during the run (empty when
    /// metrics sampling was off).
    pub metrics: TimeSeries,
    /// Invariant-monitor summary (`None` when the monitor was off). A run
    /// with violations panics before this report is returned; the field
    /// exists so clean runs can assert the monitor actually consumed
    /// events.
    pub monitor: Option<MonitorReport>,
}

impl<R> RunReport<R> {
    /// Sum of all nodes' traffic.
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.nodes
            .iter()
            .map(|n| n.traffic)
            .fold(TrafficSnapshot::default(), |a, b| a + b)
    }

    /// Breakdown averaged... summed across nodes (the paper normalizes, so
    /// sums and averages are interchangeable for ratios).
    pub fn total_breakdown(&self) -> Breakdown {
        self.nodes
            .iter()
            .map(|n| n.breakdown)
            .fold(Breakdown::default(), |a, b| a.merged(&b))
    }

    /// Total checkpoints across the cluster.
    pub fn total_ckpts(&self) -> u64 {
        self.nodes.iter().map(|n| n.ft.ckpts_taken).sum()
    }

    /// Max checkpoint window across the cluster (Table 4 `Wmax`).
    pub fn max_ckpt_window(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.ft.max_ckpt_window)
            .max()
            .unwrap_or(0)
    }

    /// All nodes' latency histograms folded together.
    pub fn total_hists(&self) -> LatencyHists {
        let mut acc = LatencyHists::default();
        for n in &self.nodes {
            acc.merge(&n.hists);
        }
        acc
    }

    /// All nodes' page-pool statistics folded together.
    pub fn total_pool(&self) -> PoolStats {
        let mut acc = PoolStats::default();
        for n in &self.nodes {
            acc.merge(&n.pool);
        }
        acc
    }

    /// All nodes' per-kind service time folded together (sorted by kind).
    pub fn total_svc_time_by_kind(&self) -> Vec<(&'static str, Duration)> {
        let mut acc: std::collections::BTreeMap<&'static str, Duration> = Default::default();
        for n in &self.nodes {
            for &(k, d) in &n.svc_time_by_kind {
                *acc.entry(k).or_default() += d;
            }
        }
        acc.into_iter().collect()
    }

    /// All nodes' membership counters folded together.
    pub fn total_member(&self) -> MemberStats {
        let mut acc = MemberStats::default();
        for n in &self.nodes {
            acc.suspicions += n.member.suspicions;
            acc.false_suspicions += n.member.false_suspicions;
            acc.down_events += n.member.down_events;
            acc.up_events += n.member.up_events;
            acc.pings_sent += n.member.pings_sent;
        }
        acc
    }

    /// Total request retransmissions across the cluster.
    pub fn total_retransmits(&self) -> u64 {
        self.nodes.iter().map(|n| n.retransmits).sum()
    }

    /// Total suppressed duplicate deliveries across the cluster.
    pub fn total_dup_suppressed(&self) -> u64 {
        self.nodes.iter().map(|n| n.dup_suppressed).sum()
    }

    /// All nodes' per-kind sent-message counts folded together.
    pub fn total_msg_kinds(&self) -> Vec<(&'static str, u64)> {
        let mut acc: std::collections::BTreeMap<&'static str, u64> = Default::default();
        for n in &self.nodes {
            for &(k, c) in &n.msg_kinds {
                *acc.entry(k).or_default() += c;
            }
        }
        acc.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_residual() {
        let b = Breakdown {
            total: Duration::from_secs(10),
            page_wait: Duration::from_secs(1),
            lock_wait: Duration::from_secs(2),
            barrier_wait: Duration::from_secs(3),
            protocol: Duration::from_millis(500),
            logging: Duration::from_millis(250),
            disk_write: Duration::from_millis(250),
        };
        assert_eq!(b.compute(), Duration::from_secs(3));
    }

    #[test]
    fn compute_saturates_rather_than_panics() {
        let b = Breakdown {
            total: Duration::from_secs(1),
            page_wait: Duration::from_secs(5),
            ..Default::default()
        };
        assert_eq!(b.compute(), Duration::ZERO);
    }
}
