//! Online protocol-invariant monitor.
//!
//! The monitor is a [`dsm_trace::EventSink`]: it consumes the live event
//! stream as nodes emit it and checks a catalog of protocol invariants on
//! the fly. A violation is recorded (and echoed to stderr immediately, so a
//! wedged soak still shows it); at collection time the runtime panics on
//! the first violation with the offending causal flow attached, turning a
//! silent corruption into a pinpointed, replayable failure.
//!
//! ## Invariant catalog
//!
//! 1. **Version monotonicity** — on each home node, per `(page, writer)`,
//!    applied interval sequence numbers strictly increase: a duplicate or
//!    out-of-order diff apply is exactly the corruption the per-writer
//!    version gate exists to prevent. State resets when the *home* crashes
//!    (its copy is rebuilt) and clears per writer when the writer returns
//!    (`MemberUp`): recovery replay legitimately re-applies the writer's
//!    logged diffs.
//! 2. **Lock tenure uniqueness** — per `(lock, generation)`, at most one
//!    distinct grantee. Re-granting the same generation to the same node is
//!    a legal retransmission replay; to a different node it is a split
//!    tenure.
//! 3. **Barrier episode order** — each node's `BarrierRelease` episodes
//!    strictly increase (reset when that node crashes), and every node's
//!    final episode agrees at finish (nodes that crashed mid-run and nodes
//!    that never entered a barrier are exempt from the final check only if
//!    they saw no release at all).
//! 4. **Recovery phase order** — after a `CrashInjected` on a node, its
//!    `RecoveryPhase` events run restore → log_collect → replay, each at
//!    most once per incarnation.
//! 5. **Heartbeat legality** — per `(observer, subject)`: no second
//!    `MemberDown` without an intervening `MemberUp`, and any `MemberDown`
//!    is preceded by at least one `Suspect` of the same subject
//!    cluster-wide (confirmation requires suspicion somewhere).
//!
//! The monitor never holds a reference back to the [`dsm_trace::Trace`]
//! (that would leak the rings via an `Arc` cycle); it tracks the last flow
//! id each node was serving and the runtime stitches the full flow from the
//! trace at panic time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dsm_trace::{Event, EventKind, EventSink, RecPhase};
use parking_lot::Mutex;

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke (short stable name).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
    /// Node the violating event was recorded on.
    pub node: usize,
    /// Trace-epoch timestamp of the violating event.
    pub ts_ns: u64,
    /// The causal flow the node was serving when it violated (0 if none —
    /// e.g. an app-thread event outside any message handler).
    pub flow: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] n{} @{}ns: {} (flow {})",
            self.invariant, self.node, self.ts_ns, self.detail, self.flow
        )
    }
}

/// Summary of a finished monitor run (attached to the run report).
#[derive(Debug, Clone, Default)]
pub struct MonitorReport {
    /// Events the monitor consumed. Zero means the monitor never saw the
    /// stream — an assertion that it actually ran.
    pub events_seen: u64,
    /// All recorded violations (empty on a clean run).
    pub violations: Vec<Violation>,
}

#[derive(Default)]
struct PerNode {
    /// Applied interval per (page, writer) — strictly increasing.
    applied: HashMap<(u32, usize), u64>,
    /// Last barrier release episode seen.
    last_episode: Option<u32>,
    /// Recovery phases seen since the last crash (in arrival order).
    rec_phases: Vec<RecPhase>,
    /// Are we between a CrashInjected and the end of replay?
    recovering: bool,
    /// Flow id of the message this node is currently serving (last MsgRecv).
    last_flow: u64,
    /// Per subject: down-without-up count (heartbeat legality).
    down_pending: HashMap<usize, bool>,
}

struct Inner {
    nodes: Vec<PerNode>,
    /// Grantee per (lock, generation).
    tenures: HashMap<(u32, u64), usize>,
    /// Subjects suspected by anyone, ever (cluster-wide suspicion pool).
    suspected: Vec<bool>,
    violations: Vec<Violation>,
}

/// The online monitor. Install with [`dsm_trace::Trace::set_sink`]; call
/// [`Monitor::finish`] after the run for the cross-node final checks.
pub struct Monitor {
    inner: Mutex<Inner>,
    events_seen: AtomicU64,
}

impl Monitor {
    /// A monitor for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        Monitor {
            inner: Mutex::new(Inner {
                nodes: (0..n).map(|_| PerNode::default()).collect(),
                tenures: HashMap::new(),
                suspected: vec![false; n],
                violations: Vec::new(),
            }),
            events_seen: AtomicU64::new(0),
        }
    }

    fn violate(inner: &mut Inner, e: &Event, invariant: &'static str, detail: String) {
        let v = Violation {
            invariant,
            detail,
            node: e.node,
            ts_ns: e.ts_ns,
            flow: inner.nodes[e.node].last_flow,
        };
        // Echo the first violation immediately: a soak that wedges after
        // the corruption still shows what broke.
        if inner.violations.is_empty() {
            eprintln!("[monitor] INVARIANT VIOLATION: {v}");
        }
        inner.violations.push(v);
    }

    /// Cross-node checks that only make sense once the run is over.
    /// Returns the final report.
    pub fn finish(&self) -> MonitorReport {
        let mut inner = self.inner.lock();
        // Barrier agreement: every node that saw any release must agree on
        // the final episode.
        let finals: Vec<(usize, u32)> = inner
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.last_episode.map(|e| (i, e)))
            .collect();
        if let Some(&(first_node, first_ep)) = finals.first() {
            for &(node, ep) in &finals[1..] {
                if ep != first_ep {
                    let v = Violation {
                        invariant: "barrier-agreement",
                        detail: format!(
                            "final barrier episode disagrees: n{first_node} ended at \
                             {first_ep}, n{node} at {ep}"
                        ),
                        node,
                        ts_ns: 0,
                        flow: 0,
                    };
                    if inner.violations.is_empty() {
                        eprintln!("[monitor] INVARIANT VIOLATION: {v}");
                    }
                    inner.violations.push(v);
                }
            }
        }
        MonitorReport {
            events_seen: self.events_seen.load(Ordering::Relaxed),
            violations: inner.violations.clone(),
        }
    }
}

impl EventSink for Monitor {
    fn on_event(&self, e: &Event) {
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        match &e.kind {
            EventKind::MsgRecv { flow, .. } => {
                inner.nodes[e.node].last_flow = *flow;
            }
            EventKind::DiffApply {
                page,
                writer,
                interval,
                ..
            } => {
                let key = (*page, *writer);
                let prev = inner.nodes[e.node].applied.get(&key).copied();
                match prev {
                    Some(p) if *interval <= p => {
                        let detail = format!(
                            "diff for page {page} writer {writer} applied at interval \
                             {interval} but interval {p} was already applied \
                             ({})",
                            if *interval == p {
                                "duplicate apply"
                            } else {
                                "out-of-order apply"
                            }
                        );
                        Self::violate(inner, e, "version-monotonicity", detail);
                    }
                    _ => {
                        inner.nodes[e.node].applied.insert(key, *interval);
                    }
                }
            }
            EventKind::LockGrant { lock, to, gen } => {
                match inner.tenures.get(&(*lock, *gen)) {
                    // Same grantee again: legal retransmission replay.
                    Some(prev) if prev == to => {}
                    Some(prev) => {
                        let detail = format!(
                            "lock {lock} generation {gen} granted to n{to} but was \
                             already granted to n{prev} (split tenure)"
                        );
                        Self::violate(inner, e, "tenure-uniqueness", detail);
                    }
                    None => {
                        inner.tenures.insert((*lock, *gen), *to);
                    }
                }
            }
            EventKind::BarrierRelease { episode } => {
                let node = &mut inner.nodes[e.node];
                if let Some(prev) = node.last_episode {
                    if *episode <= prev {
                        let detail = format!(
                            "barrier release for episode {episode} after episode {prev} \
                             was already released"
                        );
                        node.last_episode = Some(*episode);
                        Self::violate(inner, e, "barrier-order", detail);
                        return;
                    }
                }
                node.last_episode = Some(*episode);
            }
            EventKind::CrashInjected { .. } => {
                let node = &mut inner.nodes[e.node];
                // The home copy is rebuilt from checkpoint + peer logs; its
                // apply history starts over. Barrier progress likewise.
                node.applied.clear();
                node.last_episode = None;
                node.rec_phases.clear();
                node.recovering = true;
            }
            EventKind::RecoveryPhase { phase } => {
                let node = &mut inner.nodes[e.node];
                if !node.recovering {
                    let detail =
                        format!("recovery phase {} without a preceding crash", phase.name());
                    Self::violate(inner, e, "recovery-order", detail);
                    return;
                }
                let expected = match node.rec_phases.len() {
                    0 => RecPhase::Restore,
                    1 => RecPhase::LogCollect,
                    2 => RecPhase::Replay,
                    _ => {
                        let detail =
                            format!("fourth recovery phase {} in one incarnation", phase.name());
                        Self::violate(inner, e, "recovery-order", detail);
                        return;
                    }
                };
                if *phase != expected {
                    let detail = format!(
                        "recovery phase {} arrived where {} was expected",
                        phase.name(),
                        expected.name()
                    );
                    Self::violate(inner, e, "recovery-order", detail);
                    return;
                }
                node.rec_phases.push(*phase);
                if *phase == RecPhase::Replay {
                    node.recovering = false;
                }
            }
            EventKind::Suspect { node: subject } if *subject < inner.suspected.len() => {
                inner.suspected[*subject] = true;
            }
            EventKind::MemberDown { node: subject } => {
                if !inner.suspected.get(*subject).copied().unwrap_or(false) {
                    let detail = format!(
                        "n{} confirmed n{subject} down but no node ever suspected it",
                        e.node
                    );
                    Self::violate(inner, e, "heartbeat-legality", detail);
                }
                let node = &mut inner.nodes[e.node];
                if node.down_pending.insert(*subject, true) == Some(true) {
                    let detail = format!(
                        "n{} saw n{subject} down twice without an Up in between",
                        e.node
                    );
                    Self::violate(inner, e, "heartbeat-legality", detail);
                }
            }
            EventKind::MemberUp { node: subject } => {
                let node = &mut inner.nodes[e.node];
                node.down_pending.insert(*subject, false);
                // The returned writer replays its logged diffs; the home
                // legitimately re-applies them from scratch.
                node.applied.retain(|(_, w), _| w != subject);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize, ts_ns: u64, kind: EventKind) -> Event {
        Event {
            ts_ns,
            dur_ns: 0,
            node,
            kind,
        }
    }

    fn apply(node: usize, ts: u64, page: u32, writer: usize, interval: u64) -> Event {
        ev(
            node,
            ts,
            EventKind::DiffApply {
                page,
                bytes: 64,
                writer,
                interval,
            },
        )
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let m = Monitor::new(2);
        m.on_event(&apply(0, 1, 3, 1, 1));
        m.on_event(&apply(0, 2, 3, 1, 2));
        m.on_event(&ev(0, 3, EventKind::BarrierRelease { episode: 1 }));
        m.on_event(&ev(1, 3, EventKind::BarrierRelease { episode: 1 }));
        let r = m.finish();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.events_seen, 4);
    }

    #[test]
    fn duplicate_apply_is_caught_with_flow() {
        let m = Monitor::new(2);
        m.on_event(&ev(
            0,
            1,
            EventKind::MsgRecv {
                kind: "DiffBatch",
                from: 1,
                bytes: 100,
                flow: 42,
                queue_ns: 0,
                chaos_ns: 0,
            },
        ));
        m.on_event(&apply(0, 2, 3, 1, 5));
        m.on_event(&apply(0, 3, 3, 1, 5));
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.invariant, "version-monotonicity");
        assert_eq!(v.flow, 42);
        assert!(v.detail.contains("duplicate apply"));
    }

    #[test]
    fn split_tenure_is_caught_but_regrant_is_legal() {
        let m = Monitor::new(3);
        let grant = |to| EventKind::LockGrant {
            lock: 5,
            to,
            gen: 7,
        };
        m.on_event(&ev(0, 1, grant(1)));
        m.on_event(&ev(0, 2, grant(1))); // retransmission replay: legal
        m.on_event(&ev(0, 3, grant(2))); // split tenure: violation
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "tenure-uniqueness");
    }

    #[test]
    fn crash_resets_version_and_barrier_state() {
        let m = Monitor::new(2);
        m.on_event(&apply(0, 1, 3, 1, 9));
        m.on_event(&ev(0, 2, EventKind::BarrierRelease { episode: 4 }));
        m.on_event(&ev(1, 2, EventKind::BarrierRelease { episode: 4 }));
        m.on_event(&ev(0, 3, EventKind::CrashInjected { at_op: 100 }));
        // Replay re-applies old intervals and re-runs old episodes: legal.
        m.on_event(&apply(0, 4, 3, 1, 1));
        m.on_event(&ev(0, 5, EventKind::BarrierRelease { episode: 1 }));
        m.on_event(&ev(
            0,
            6,
            EventKind::RecoveryPhase {
                phase: RecPhase::Restore,
            },
        ));
        m.on_event(&ev(
            0,
            7,
            EventKind::RecoveryPhase {
                phase: RecPhase::LogCollect,
            },
        ));
        m.on_event(&ev(
            0,
            8,
            EventKind::RecoveryPhase {
                phase: RecPhase::Replay,
            },
        ));
        // Catch back up to the cluster's episode.
        m.on_event(&ev(0, 9, EventKind::BarrierRelease { episode: 4 }));
        let r = m.finish();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn out_of_order_recovery_phase_is_caught() {
        let m = Monitor::new(2);
        m.on_event(&ev(0, 1, EventKind::CrashInjected { at_op: 10 }));
        m.on_event(&ev(
            0,
            2,
            EventKind::RecoveryPhase {
                phase: RecPhase::Replay,
            },
        ));
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "recovery-order");
    }

    #[test]
    fn down_without_suspicion_is_caught() {
        let m = Monitor::new(3);
        m.on_event(&ev(0, 1, EventKind::MemberDown { node: 2 }));
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "heartbeat-legality");

        // With a suspicion anywhere first, the same Down is clean.
        let m = Monitor::new(3);
        m.on_event(&ev(1, 1, EventKind::Suspect { node: 2 }));
        m.on_event(&ev(0, 2, EventKind::MemberDown { node: 2 }));
        assert!(m.finish().violations.is_empty());
    }

    #[test]
    fn double_down_without_up_is_caught() {
        let m = Monitor::new(3);
        m.on_event(&ev(0, 1, EventKind::Suspect { node: 2 }));
        m.on_event(&ev(0, 2, EventKind::MemberDown { node: 2 }));
        m.on_event(&ev(0, 3, EventKind::MemberUp { node: 2 }));
        m.on_event(&ev(0, 4, EventKind::MemberDown { node: 2 })); // legal: Up between
        m.on_event(&ev(0, 5, EventKind::MemberDown { node: 2 })); // violation
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].detail.contains("twice"));
    }

    #[test]
    fn member_up_clears_writer_history_at_observer() {
        let m = Monitor::new(3);
        m.on_event(&apply(0, 1, 7, 2, 9));
        m.on_event(&ev(0, 2, EventKind::MemberUp { node: 2 }));
        // Writer 2 replays from its log: old intervals re-apply legally.
        m.on_event(&apply(0, 3, 7, 2, 1));
        // Another writer's history is untouched.
        m.on_event(&apply(0, 4, 7, 1, 3));
        m.on_event(&apply(0, 5, 7, 1, 3)); // still a violation
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].detail.contains("writer 1"));
    }

    #[test]
    fn final_barrier_disagreement_is_caught() {
        let m = Monitor::new(3);
        m.on_event(&ev(0, 1, EventKind::BarrierRelease { episode: 5 }));
        m.on_event(&ev(1, 1, EventKind::BarrierRelease { episode: 4 }));
        let r = m.finish();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "barrier-agreement");
    }
}
