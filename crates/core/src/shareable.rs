//! Typed access to shared memory.
//!
//! A [`Shareable`] value has a fixed-size little-endian byte representation
//! that the DSM reads and writes through the page layer. Primitives and
//! fixed-size arrays of primitives are provided; applications implement it
//! for their own plain-data structs.

/// A fixed-size, plain-data value storable in shared memory.
pub trait Shareable: Copy {
    /// Encoded size in bytes.
    const BYTES: usize;

    /// Encode into `dst` (exactly `Self::BYTES` long).
    fn write_to(&self, dst: &mut [u8]);

    /// Decode from `src` (exactly `Self::BYTES` long).
    fn read_from(src: &[u8]) -> Self;
}

macro_rules! impl_shareable_primitive {
    ($($t:ty),*) => {$(
        impl Shareable for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_to(&self, dst: &mut [u8]) {
                dst.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_from(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().unwrap())
            }
        }
    )*};
}

impl_shareable_primitive!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Shareable for bool {
    const BYTES: usize = 1;
    #[inline]
    fn write_to(&self, dst: &mut [u8]) {
        dst[0] = *self as u8;
    }
    #[inline]
    fn read_from(src: &[u8]) -> Self {
        src[0] != 0
    }
}

impl<T: Shareable, const N: usize> Shareable for [T; N] {
    const BYTES: usize = T::BYTES * N;
    #[inline]
    fn write_to(&self, dst: &mut [u8]) {
        for (i, v) in self.iter().enumerate() {
            v.write_to(&mut dst[i * T::BYTES..(i + 1) * T::BYTES]);
        }
    }
    #[inline]
    fn read_from(src: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&src[i * T::BYTES..(i + 1) * T::BYTES]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Shareable + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::BYTES];
        v.write_to(&mut buf);
        assert_eq!(T::read_from(&buf), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(42u8);
        roundtrip(-7i32);
        roundtrip(u64::MAX);
        roundtrip(std::f64::consts::E);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn arrays_roundtrip() {
        roundtrip([1.5f64, -2.25, 0.0]);
        roundtrip([[1u32, 2], [3, 4]]);
        assert_eq!(<[f64; 3]>::BYTES, 24);
    }
}
