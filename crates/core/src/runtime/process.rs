//! The application-facing DSM handle.
//!
//! One [`Process`] per node, used by the application thread. All shared
//! memory access, synchronization, allocation, checkpoint safe points, and
//! (after a crash) log-based replay run through it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_page::{GlobalAddr, Layout, PageId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter};
use dsm_trace::EventKind;
use hlrc::barrier::Arrival;
use hlrc::locks::AcqReq;
use hlrc::{AccessOutcome, LockId};
use parking_lot::MutexGuard;

use crate::config::HomeAlloc;
use crate::ft::logs::{BarEntry, RelEntry};
use crate::ft::recovery::{self, linear_key, ReplayPage};
use crate::msg::Payload;
use crate::runtime::node::{
    apply_pending_home, barrier_manager_arrive, dispatch_lock_action, end_interval, fetch_needed,
    grant_now, issue_prefetch, retransmit_stale_diffs, retransmit_wait_slot, CrashSignal,
    GrantData, Mode, NodeShared, NodeState, ReleaseData, WaitSlot,
};
use crate::shareable::Shareable;
use crate::stats::Breakdown;

/// Maximum size of a single typed access.
const MAX_ACCESS: usize = 256;

/// How long a blocked DSM operation waits before declaring a deadlock.
const WAIT_DEADLINE: Duration = Duration::from_secs(60);

/// Application private state that can be captured in a checkpoint.
///
/// Everything the application mutates across steps must live in one value
/// implementing this trait (see [`Process::run_steps`]); the paper
/// checkpoints processor state, which a thread cannot snapshot, so the
/// state is captured at step boundaries instead.
pub trait AppState {
    /// Encode into the checkpoint.
    fn encode(&self, w: &mut ByteWriter);
    /// Decode from a checkpoint.
    fn decode(r: &mut ByteReader) -> Self;
}

impl AppState for () {
    fn encode(&self, _w: &mut ByteWriter) {}
    fn decode(_r: &mut ByteReader) -> Self {}
}

impl AppState for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_u64().expect("corrupt app state")
    }
}

impl AppState for Vec<u8> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self);
    }
    fn decode(r: &mut ByteReader) -> Self {
        r.get_bytes().expect("corrupt app state").to_vec()
    }
}

impl AppState for Vec<f64> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            w.put_f64(*v);
        }
    }
    fn decode(r: &mut ByteReader) -> Self {
        let len = r.get_u64().expect("corrupt app state") as usize;
        (0..len)
            .map(|_| r.get_f64().expect("corrupt app state"))
            .collect()
    }
}

/// A typed, fixed-length array in shared memory.
#[derive(Debug, Clone, Copy)]
pub struct SharedVec<T> {
    base: GlobalAddr,
    len: usize,
    _t: std::marker::PhantomData<T>,
}

impl<T: Shareable> SharedVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    pub fn addr(&self, i: usize) -> GlobalAddr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + (i * T::BYTES) as u64
    }

    /// Read element `i`.
    pub fn get(&self, proc: &mut Process, i: usize) -> T {
        proc.read(self.addr(i))
    }

    /// Write element `i`.
    pub fn set(&self, proc: &mut Process, i: usize, v: T) {
        proc.write(self.addr(i), v)
    }
}

/// Lock the node state, count the operation, and fire scripted crashes.
fn begin_op(shared: &NodeShared) -> MutexGuard<'_, NodeState> {
    let mut st = shared.state.lock();
    st.ops += 1;
    if let Some(&t) = st.crash_queue.first() {
        if st.ops >= t && st.mode == Mode::Normal && st.replay.is_none() {
            st.crash_queue.remove(0);
            st.tracer.emit(EventKind::CrashInjected { at_op: st.ops });
            drop(st);
            std::panic::panic_any(CrashSignal);
        }
    }
    st
}

/// Block on the node condition variable until `take` produces a value.
///
/// When the node has a retry timeout configured ([`NodeState::retry_after`]),
/// the blocked request described by [`NodeState::wait`] — and any in-flight
/// diff batches — are retransmitted each time that timeout elapses without
/// the wait completing. The check is time-based (elapsed since last send)
/// rather than wait-timeout-based: unrelated traffic notifies the condvar
/// constantly, and a notification-reset timer would never fire under load.
fn wait_until<T>(
    shared: &NodeShared,
    st: &mut MutexGuard<'_, NodeState>,
    mut take: impl FnMut(&mut NodeState) -> Option<T>,
) -> T {
    let start = Instant::now();
    let retry = st.retry_after;
    let mut retries = 0u64;
    let mut last_send = Instant::now();
    loop {
        if let Some(v) = take(st) {
            if retry.is_some() {
                st.hists.retransmits.record(retries);
            }
            return v;
        }
        let slice = match retry {
            Some(after) => {
                if last_send.elapsed() >= after {
                    retries += retransmit_wait_slot(st);
                    retransmit_stale_diffs(st);
                    last_send = Instant::now();
                }
                after.min(Duration::from_millis(200))
            }
            None => Duration::from_millis(200),
        };
        let r = shared.cv.wait_for(st, slice);
        if r.timed_out() && start.elapsed() > WAIT_DEADLINE {
            panic!(
                "node {}: DSM operation blocked for {:?} — deadlock? wait={:?} vt={} held={:?} pending={:?}",
                shared.me, WAIT_DEADLINE, st.wait, st.vt, st.held, st.pending_grants
            );
        }
    }
}

/// Like [`wait_until`] but gives up after `timeout`, returning `None`.
/// Used for waits on state someone else may abandon (e.g. a prefetch batch
/// whose reply was dropped by the network) where the caller has a fallback.
fn wait_until_for<T>(
    shared: &NodeShared,
    st: &mut MutexGuard<'_, NodeState>,
    timeout: Duration,
    mut take: impl FnMut(&mut NodeState) -> Option<T>,
) -> Option<T> {
    let start = Instant::now();
    loop {
        if let Some(v) = take(st) {
            return Some(v);
        }
        let left = timeout.checked_sub(start.elapsed())?;
        shared.cv.wait_for(st, left.min(Duration::from_millis(200)));
    }
}

/// The DSM handle of one node's application thread.
pub struct Process {
    shared: Arc<NodeShared>,
    me: usize,
    n: usize,
    layout: Layout,
    breakdown: Breakdown,
    started: Instant,
    /// Set when this incarnation restarted after a crash.
    recovering: bool,
    /// The step to resume run_steps from (checkpoint restore).
    restored_step: u64,
    /// Encoded application state from the restart checkpoint.
    restored_state: Option<Vec<u8>>,
}

impl Process {
    pub(crate) fn new(shared: Arc<NodeShared>, recovering: bool) -> Self {
        let (me, n, page_size) = {
            let st = shared.state.lock();
            (st.me, st.n, st.page_size)
        };
        Process {
            shared,
            me,
            n,
            layout: Layout::new(page_size),
            breakdown: Breakdown::default(),
            started: Instant::now(),
            recovering,
            restored_step: 0,
            restored_state: None,
        }
    }

    /// This node's rank (0-based).
    pub fn me(&self) -> usize {
        self.me
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// True when this incarnation resumed from a checkpoint (applications
    /// guard one-time initialization writes with `!resuming()` or put them
    /// in step 0 of [`Process::run_steps`]).
    pub fn resuming(&self) -> bool {
        self.recovering && (self.restored_step > 0 || self.restored_state.is_some())
    }

    /// Run the recovery procedure (called by the cluster runtime before
    /// re-invoking the application closure).
    pub(crate) fn recover(&mut self) {
        let (step, state) = recovery::run_recovery(&self.shared);
        self.restored_step = step;
        self.restored_state = if state.is_empty() { None } else { Some(state) };
    }

    // ---- operation plumbing -------------------------------------------------
    // Guards are obtained through free functions on a locally cloned Arc so
    // that `&mut self` (breakdown timers) stays available while the node
    // state is locked.

    // ---- allocation ---------------------------------------------------------

    /// Allocate `bytes` of shared memory (page granular). Every node must
    /// perform the same allocations in the same order (SPMD); homes are
    /// chosen deterministically per `home`.
    pub fn alloc(&mut self, bytes: u64, home: HomeAlloc) -> GlobalAddr {
        let shared = Arc::clone(&self.shared);
        let mut st = begin_op(&shared);
        let pages = self.layout.pages_for(bytes).max(1);
        let first = st.alloc_cursor;
        let n = st.n;
        for i in 0..pages {
            let idx = first + i;
            let home_node = match home {
                HomeAlloc::Interleaved => idx as usize % n,
                HomeAlloc::Blocked => (i as u64 * n as u64 / pages as u64) as usize,
                HomeAlloc::Node(p) => {
                    assert!(p < n, "home node {p} out of range");
                    p
                }
            };
            if (idx as usize) < st.pt.len() {
                // Deterministic re-allocation during recovery replay.
                debug_assert_eq!(st.pt.home_of(PageId(idx)), home_node);
            } else {
                let id = st.pt.add_page(home_node);
                debug_assert_eq!(id.0, idx);
                st.shared_bytes += self.layout.page_size() as u64;
            }
        }
        st.alloc_cursor = first + pages;
        crate::runtime::node::drain_unalloc(&mut st);
        self.layout.page_base(PageId(first))
    }

    /// Allocate a typed shared array.
    pub fn alloc_vec<T: Shareable>(&mut self, len: usize, home: HomeAlloc) -> SharedVec<T> {
        let base = self.alloc((len * T::BYTES) as u64, home);
        SharedVec {
            base,
            len,
            _t: std::marker::PhantomData,
        }
    }

    // ---- reads and writes ----------------------------------------------------

    /// Read a typed value.
    pub fn read<T: Shareable>(&mut self, addr: GlobalAddr) -> T {
        let mut buf = [0u8; MAX_ACCESS];
        assert!(T::BYTES <= MAX_ACCESS, "typed access too large");
        self.access(addr, T::BYTES, None, &mut buf);
        T::read_from(&buf[..T::BYTES])
    }

    /// Write a typed value.
    pub fn write<T: Shareable>(&mut self, addr: GlobalAddr, v: T) {
        let mut buf = [0u8; MAX_ACCESS];
        assert!(T::BYTES <= MAX_ACCESS, "typed access too large");
        v.write_to(&mut buf[..T::BYTES]);
        self.access(addr, T::BYTES, Some(T::BYTES), &mut buf);
    }

    /// Read `dst.len()` raw bytes.
    pub fn read_bytes(&mut self, addr: GlobalAddr, dst: &mut [u8]) {
        let len = dst.len();
        self.access(addr, len, None, dst);
    }

    /// Write raw bytes.
    pub fn write_bytes(&mut self, addr: GlobalAddr, src: &[u8]) {
        let mut buf = src.to_vec();
        let len = src.len();
        self.access(addr, len, Some(len), &mut buf);
    }

    /// The access engine: chunk over pages, faulting pages in as needed.
    /// `write` is `Some(len)` when `buf[..len]` should be written, otherwise
    /// the bytes are read into `buf`.
    fn access(&mut self, addr: GlobalAddr, len: usize, write: Option<usize>, buf: &mut [u8]) {
        {
            let _st = begin_op(&self.shared); // op accounting + crash injection
        }
        let mut done = 0usize;
        while done < len {
            let cur = addr + done as u64;
            let page = self.layout.page_of(cur);
            let off = self.layout.offset_in_page(cur);
            let chunk = (self.layout.page_size() - off).min(len - done);
            self.fault_in(page);
            let mut st = self.shared.state.lock();
            // The page may have been invalidated between fault_in and now
            // only by our own sync ops (we hold the app thread), so it is
            // still accessible; service-applied invalidations only happen
            // at our sync points.
            match st.pt.ensure_access(page) {
                AccessOutcome::Ready => {
                    if write.is_some() {
                        st.pt.write(page, off, &buf[done..done + chunk]);
                    } else {
                        st.pt.read_into(page, off, &mut buf[done..done + chunk]);
                    }
                    done += chunk;
                }
                AccessOutcome::NeedFetch { .. } => {
                    // Raced with our own protocol activity: fault in again.
                    drop(st);
                }
            }
        }
    }

    /// Make `page` accessible: fetch from home, wait for in-flight diffs on
    /// our own homed page, or (during recovery) emulate the home locally.
    fn fault_in(&mut self, page: PageId) {
        let shared = Arc::clone(&self.shared);
        loop {
            let mut st = shared.state.lock();
            match st.pt.ensure_access(page) {
                AccessOutcome::Ready => return,
                AccessOutcome::NeedFetch { home, needed } => {
                    if st.replay.is_some() {
                        if home == self.me {
                            apply_pending_home(&mut st);
                            assert!(
                                matches!(st.pt.ensure_access(page), AccessOutcome::Ready),
                                "homed page {page} not ready during replay"
                            );
                            return;
                        }
                        self.replay_materialize(&mut st, page, home);
                        continue;
                    }
                    let t0 = Instant::now();
                    st.tracer.emit(EventKind::PageFault { page: page.0 });
                    if home == self.me {
                        // Wait for in-flight diffs to reach our own copy.
                        wait_until(&shared, &mut st, |st| {
                            matches!(st.pt.ensure_access(page), AccessOutcome::Ready).then_some(())
                        });
                        self.breakdown.page_wait += t0.elapsed();
                        st.hists.page_fetch.record(t0.elapsed().as_nanos() as u64);
                        st.tracer.emit_span(
                            EventKind::PageReply {
                                page: page.0,
                                from: home,
                            },
                            t0,
                        );
                        return;
                    }
                    // A prefetch batch already covers this page: wait for
                    // that batch instead of issuing a duplicate fetch. The
                    // entry is removed when its reply is processed whether
                    // or not the install succeeded, so a miss falls through
                    // to the ordinary single-page fetch below.
                    if st.prefetch.contains_key(&page) {
                        let covered = |st: &mut NodeState| {
                            (!st.prefetch.contains_key(&page)
                                || matches!(st.pt.ensure_access(page), AccessOutcome::Ready))
                            .then_some(())
                        };
                        // With retries enabled the batch reply may have been
                        // dropped outright; bound the wait and fall back to a
                        // (retried) single-page fetch. A straggler reply for
                        // the abandoned entry is dropped by install_prefetched.
                        match st.retry_after {
                            Some(after) => {
                                if wait_until_for(&shared, &mut st, after, covered).is_none() {
                                    st.prefetch.remove(&page);
                                    st.hists
                                        .prefetch_miss
                                        .record(t0.elapsed().as_nanos() as u64);
                                    continue;
                                }
                            }
                            None => wait_until(&shared, &mut st, covered),
                        }
                        if matches!(st.pt.ensure_access(page), AccessOutcome::Ready) {
                            st.hists.prefetch_hit.record(t0.elapsed().as_nanos() as u64);
                            self.breakdown.page_wait += t0.elapsed();
                            st.hists.page_fetch.record(t0.elapsed().as_nanos() as u64);
                            st.tracer.emit_span(
                                EventKind::PageReply {
                                    page: page.0,
                                    from: home,
                                },
                                t0,
                            );
                            return;
                        }
                        st.hists
                            .prefetch_miss
                            .record(t0.elapsed().as_nanos() as u64);
                        continue;
                    }
                    let needed = fetch_needed(&st, page, needed);
                    let req_id = st.req_id_next;
                    st.req_id_next += 1;
                    st.wait = WaitSlot::Page {
                        page,
                        req_id,
                        home,
                        needed: needed.clone(),
                        reply: None,
                    };
                    st.send(
                        home,
                        Payload::PageReq {
                            page,
                            needed,
                            req_id,
                        },
                    );
                    let (version, bytes) = wait_until(&shared, &mut st, |st| {
                        if let WaitSlot::Page { reply, .. } = &mut st.wait {
                            reply.take()
                        } else {
                            None
                        }
                    });
                    st.wait = WaitSlot::None;
                    // The reply's shared buffer is installed as-is: the
                    // fetch path (serve → deposit → install) copies zero
                    // page bytes end to end.
                    st.hists.fetch_copy.record(0);
                    st.pt.install_fetch(page, bytes, &version);
                    self.breakdown.page_wait += t0.elapsed();
                    st.hists.page_fetch.record(t0.elapsed().as_nanos() as u64);
                    st.tracer.emit_span(
                        EventKind::PageReply {
                            page: page.0,
                            from: home,
                        },
                        t0,
                    );
                    return;
                }
            }
        }
    }

    /// Recovery: build the emulated-home copy of `page` and install it.
    fn replay_materialize(
        &mut self,
        st: &mut MutexGuard<'_, NodeState>,
        page: PageId,
        home: usize,
    ) {
        let n = self.n;
        if !st.replay.as_ref().unwrap().pages.contains_key(&page) {
            // Collect the maximal starting copy and every writer's diff log.
            let tckp = st.ft.as_ref().unwrap().last_ckpt_vt.clone();
            st.send(home, Payload::RecPageReq { page, tckp });
            for p in 0..n {
                if p != self.me {
                    st.send(p, Payload::RecDiffReq { page });
                }
            }
            let mut base: Option<(VectorClock, std::sync::Arc<[u8]>)> = None;
            let mut entries = Vec::new();
            let mut diff_replies = 0usize;
            wait_until(&self.shared, st, |st| {
                let mut i = 0;
                while i < st.rec_inbox.len() {
                    let matches_page = match &st.rec_inbox[i].1 {
                        Payload::RecPageReply { page: p, .. } => *p == page,
                        Payload::RecDiffReply { page: p, .. } => *p == page,
                        _ => false,
                    };
                    if matches_page {
                        let (_, payload) = st.rec_inbox.remove(i);
                        match payload {
                            Payload::RecPageReply { version, bytes, .. } => {
                                base = Some((version, bytes));
                            }
                            Payload::RecDiffReply { entries: es, .. } => {
                                entries.extend(es);
                                diff_replies += 1;
                            }
                            _ => unreachable!(),
                        }
                    } else {
                        i += 1;
                    }
                }
                (base.is_some() && diff_replies == n - 1).then_some(())
            });
            // Our own logged diffs participate too (the pre-crash fetched
            // copy included them).
            if let Some(own) = st.ft.as_ref().unwrap().logs.diffs.get(&page) {
                entries.extend(own.iter().cloned());
            }
            entries.sort_by_key(linear_key);
            let (version, bytes) = base.unwrap();
            let rp = ReplayPage {
                copy: dsm_page::Page::from_shared(bytes),
                version,
                entries,
            };
            st.replay.as_mut().unwrap().pages.insert(page, rp);
        }
        // Our replay keeps regenerating own diffs (logged at every replayed
        // interval end); merge any that appeared since the page was first
        // materialized so that re-materialization after an invalidation
        // reproduces our own writes. Duplicates are harmless — the
        // per-writer version gate below skips them.
        {
            let me = self.me;
            let fresh: Vec<_> = st
                .ft
                .as_ref()
                .unwrap()
                .logs
                .diffs
                .get(&page)
                .map(|own| own.to_vec())
                .unwrap_or_default();
            let replay = st.replay.as_mut().unwrap();
            let rp = replay.pages.get_mut(&page).unwrap();
            let mut changed = false;
            for e in fresh {
                if e.diff.interval.seq > rp.version.get(me)
                    && !rp
                        .entries
                        .iter()
                        .any(|x| x.diff.interval == e.diff.interval)
                {
                    rp.entries.push(e);
                    changed = true;
                }
            }
            if changed {
                rp.entries.sort_by_key(linear_key);
            }
        }
        // Apply every diff that happened before our current replay point.
        let vt = st.vt.clone();
        let replay = st.replay.as_mut().unwrap();
        let rp = replay.pages.get_mut(&page).unwrap();
        let mut rest = Vec::with_capacity(rp.entries.len());
        for e in rp.entries.drain(..) {
            let writer = e.diff.interval.proc;
            if vt.covers(&e.t) {
                if e.diff.interval.seq > rp.version.get(writer) {
                    e.diff.apply(&mut rp.copy);
                    rp.version.set(writer, e.diff.interval.seq);
                }
            } else {
                rest.push(e);
            }
        }
        rp.entries = rest;
        // Share the emulated-home copy straight into the page table: later
        // replayed diffs copy-on-write `rp.copy`, so the installed buffer
        // stays a consistent snapshot.
        let bytes = rp.copy.share();
        let version = rp.version.clone();
        st.pt.install_fetch(page, bytes, &version);
    }

    // ---- synchronization -----------------------------------------------------

    /// Acquire a lock (LRC acquire: joins the granter's release timestamp
    /// and applies the write notices we were missing).
    pub fn acquire(&mut self, lock: LockId) {
        let shared = Arc::clone(&self.shared);
        let mut st = begin_op(&shared);
        assert!(
            !st.held.contains(&lock),
            "node {} re-acquiring held lock {lock}",
            self.me
        );
        if st.replay.is_some() {
            if self.try_replay_acquire(&mut st, lock) {
                return;
            }
            recovery::go_live(&mut st);
        }
        let acq_seq = st.acq_seq_next;
        st.acq_seq_next += 1;
        let manager = lock % st.n;
        st.tracer.emit(EventKind::LockRequest { lock: lock as u32 });
        let req_vt = st.vt.clone();
        st.wait = WaitSlot::Lock {
            lock,
            acq_seq,
            manager,
            req_vt: req_vt.clone(),
            grant: None,
        };
        if manager == self.me {
            let action = st.sync.lock().lock_mgr.on_request(
                lock,
                AcqReq {
                    requester: self.me,
                    acq_seq,
                    vt: req_vt,
                },
            );
            if let Some(a) = action {
                dispatch_lock_action(&mut st, a);
            }
        } else {
            st.send(
                manager,
                Payload::LockAcq {
                    lock,
                    acq_seq,
                    vt: req_vt,
                },
            );
        }
        let t0 = Instant::now();
        let g = wait_until(&shared, &mut st, |st| {
            if let WaitSlot::Lock { grant, .. } = &mut st.wait {
                grant.take()
            } else {
                None
            }
        });
        st.wait = WaitSlot::None;
        self.breakdown.lock_wait += t0.elapsed();
        st.hists.lock_wait.record(t0.elapsed().as_nanos() as u64);
        st.tracer
            .emit_span(EventKind::LockAcquire { lock: lock as u32 }, t0);
        self.apply_grant(&mut st, g);
    }

    fn apply_grant(&mut self, st: &mut MutexGuard<'_, NodeState>, g: GrantData) {
        let (p, l) = end_interval(st);
        self.breakdown.protocol += p;
        self.breakdown.logging += l;
        let pre = st.vt.clone();
        st.vt.join(&g.vt);
        let mut invalidated = Vec::new();
        for wn in &g.wns {
            if pre.covers_interval(wn.interval) {
                continue;
            }
            st.wn_table.insert(wn.clone());
            for &pg in &wn.pages {
                st.pt.invalidate(pg, wn.interval.proc, wn.interval.seq);
                invalidated.push(pg);
            }
        }
        issue_prefetch(st, &invalidated);
        let t_after = st.vt.clone();
        if let Some(ft) = st.ft.as_mut() {
            ft.logs.log_acq(
                g.granter,
                RelEntry {
                    acq_seq: g.acq_seq,
                    lock: g.lock,
                    gen: g.gen,
                    req_vt: pre,
                    t_after,
                },
            );
        }
        st.tenure.insert(g.lock, (g.acq_seq, false));
        st.tenure_gen.insert(g.lock, g.gen);
        st.held.insert(g.lock);
    }

    fn try_replay_acquire(&mut self, st: &mut MutexGuard<'_, NodeState>, lock: LockId) -> bool {
        let acq_seq = st.acq_seq_next;
        let replay = st.replay.as_ref().unwrap();
        match replay.rel.get(&acq_seq).cloned() {
            Some((granter, entry)) => {
                assert_eq!(
                    entry.lock, lock,
                    "replay acquire lock mismatch at acq_seq {acq_seq}"
                );
                st.acq_seq_next += 1;
                let (p, l) = end_interval(st);
                self.breakdown.protocol += p;
                self.breakdown.logging += l;
                let pre = st.vt.clone();
                st.vt.join(&entry.t_after);
                self.apply_replay_invalidations(st, &pre);
                st.tenure.insert(lock, (acq_seq, false));
                st.tenure_gen.insert(lock, entry.gen);
                st.held.insert(lock);
                if lock % st.n == self.me {
                    // We manage this lock: our replayed tenure is a chain
                    // position the handshake could not report (peers report
                    // their own tenures and issued grants, not ours).
                    st.sync.lock().lock_mgr.restore_chain(
                        lock,
                        entry.gen,
                        self.me,
                        acq_seq,
                        Some(granter),
                    );
                }
                apply_pending_home(st);
                true
            }
            None => {
                // No peer logged a grant for this acquisition. Either the
                // acquire never completed (the crash point) or it was a
                // *self-grant* — we were the chain tail and granted
                // ourselves, and the grant record died with us. Evidence of
                // any later logged event of ours proves the acquire
                // completed, and since no peer granted it, it must have
                // been a self-grant: replaying one is purely local (the
                // grant joins our own release timestamp — a no-op — and
                // carries no notices).
                let later_rel = replay.rel.keys().any(|&s| s > acq_seq);
                let later_bar = replay.bar_results.keys().any(|&e| e >= st.bar_episode);
                // A grant we *gave* (mirrored in a peer's acq_log) or a
                // peer diff whose timestamp carries our component beyond
                // the replayed clock is equally conclusive: peers can only
                // have seen interval vt[me]+1 if the op that created it —
                // at or after this acquire — completed before the crash.
                let later_iv = replay.evidence_self > st.vt.get(st.me);
                if !(later_rel || later_bar || later_iv) {
                    return false;
                }
                st.acq_seq_next += 1;
                let (p, l) = end_interval(st);
                self.breakdown.protocol += p;
                self.breakdown.logging += l;
                st.tenure.insert(lock, (acq_seq, false));
                st.held.insert(lock);
                if lock % st.n == self.me {
                    // We also manage this lock: our self-grant proves we
                    // were the chain tail *at this tenure*. A self-grant's
                    // generation died with the old manager incarnation, but
                    // the run of consecutive self-granted tenures extends
                    // back to our newest peer-granted tenure (generation
                    // `tenure_gen`), and any tenure after the run was
                    // granted *by us* — restored from our mirrored release
                    // log with its real, higher generation. So a restored
                    // tail newer than `tenure_gen` means the chain moved
                    // past the run (claiming the tail would let our
                    // post-recovery acquire self-grant without the peers'
                    // write notices); anything else is stale and the run's
                    // end is the true tail.
                    let me = self.me;
                    let g_run = st.tenure_gen.get(&lock).copied().unwrap_or(0);
                    let mut sync = st.sync.lock();
                    let moved_past = sync
                        .lock_mgr
                        .tail_gen_of(lock)
                        .is_some_and(|g| g > g_run && sync.lock_mgr.tail_of(lock) != Some(me));
                    if !moved_past {
                        sync.lock_mgr.force_tail(lock, me, acq_seq);
                    }
                    drop(sync);
                }
                apply_pending_home(st);
                true
            }
        }
    }

    fn apply_replay_invalidations(
        &mut self,
        st: &mut MutexGuard<'_, NodeState>,
        pre: &VectorClock,
    ) {
        let post = st.vt.clone();
        for iv in pre.missing_from(&post) {
            if let Some(pages) = st.wn_table.get(iv).map(|p| p.to_vec()) {
                for pg in pages {
                    st.pt.invalidate(pg, iv.proc, iv.seq);
                }
            }
        }
    }

    /// Release a lock (flushes the interval's diffs to their homes).
    pub fn release(&mut self, lock: LockId) {
        let shared = Arc::clone(&self.shared);
        let mut st = begin_op(&shared);
        assert!(
            st.held.contains(&lock),
            "node {} releasing unheld lock {lock}",
            self.me
        );
        let (p, l) = end_interval(&mut st);
        self.breakdown.protocol += p;
        self.breakdown.logging += l;
        let vt = st.vt.clone();
        st.last_release_vt.insert(lock, vt);
        st.held.remove(&lock);
        if let Some(t) = st.tenure.get_mut(&lock) {
            t.1 = true;
        }
        if st.replay.is_some() {
            apply_pending_home(&mut st);
            return;
        }
        // Serve only the queued forwards chaining behind tenures we have now
        // released; one chaining behind a *future* tenure of ours (our next
        // in-flight acquisition) stays queued until that tenure's release.
        let released_acq = st.tenure.get(&lock).map(|&(a, _)| a).unwrap_or(u64::MAX);
        if let Some(mut q) = st.pending_grants.remove(&lock) {
            let (now, later): (Vec<_>, Vec<_>) =
                q.drain(..).partition(|pg| pg.pred_acq <= released_acq);
            if !later.is_empty() {
                st.pending_grants.insert(lock, later);
            }
            for pg in now {
                grant_now(&mut st, lock, pg.requester, pg.acq_seq, pg.gen, pg.req_vt);
            }
        }
        let fp = st.shared_bytes;
        if let Some(ft) = st.ft.as_mut() {
            ft.policy_check_sync(fp);
        }
    }

    /// Global barrier.
    pub fn barrier(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut st = begin_op(&shared);
        if st.replay.is_some() {
            if self.try_replay_barrier(&mut st) {
                return;
            }
            recovery::go_live(&mut st);
        }
        let (p, l) = end_interval(&mut st);
        self.breakdown.protocol += p;
        self.breakdown.logging += l;
        let episode = st.bar_episode;
        st.tracer.emit(EventKind::BarrierEnter {
            episode: episode as u32,
        });
        let arrive_vt = st.vt.clone();
        let own_wns = std::mem::take(&mut st.wn_since_barrier);
        let me = self.me;
        if let Some(ft) = st.ft.as_mut() {
            ft.last_bar_arrive_seq = arrive_vt.get(me);
        }
        st.wait = WaitSlot::Barrier {
            episode,
            arrive_vt: arrive_vt.clone(),
            own_wns: own_wns.clone(),
            release: None,
        };
        if me == 0 {
            barrier_manager_arrive(
                &mut st,
                Arrival {
                    proc: 0,
                    episode,
                    vt: arrive_vt.clone(),
                    own_wns,
                },
            );
        } else {
            st.send(
                0,
                Payload::BarrierArrive {
                    episode,
                    vt: arrive_vt.clone(),
                    own_wns,
                },
            );
        }
        let t0 = Instant::now();
        let rel: ReleaseData = wait_until(&shared, &mut st, |st| {
            if let WaitSlot::Barrier { release, .. } = &mut st.wait {
                release.take()
            } else {
                None
            }
        });
        st.wait = WaitSlot::None;
        self.breakdown.barrier_wait += t0.elapsed();
        st.hists.barrier_wait.record(t0.elapsed().as_nanos() as u64);
        st.tracer.emit_span(
            EventKind::BarrierRelease {
                episode: episode as u32,
            },
            t0,
        );

        let pre = st.vt.clone();
        st.vt.join(&rel.vt);
        let mut invalidated = Vec::new();
        for wn in &rel.wns {
            if pre.covers_interval(wn.interval) {
                continue;
            }
            st.wn_table.insert(wn.clone());
            for &pg in &wn.pages {
                st.pt.invalidate(pg, wn.interval.proc, wn.interval.seq);
                invalidated.push(pg);
            }
        }
        issue_prefetch(&mut st, &invalidated);
        let result_vt = st.vt.clone();
        if let Some(ft) = st.ft.as_mut() {
            ft.logs.log_bar(BarEntry {
                episode,
                arrive_vt,
                result_vt,
            });
        }
        let crossed = st.bar_episode;
        st.bar_episode += 1;
        let fp = st.shared_bytes;
        if let Some(ft) = st.ft.as_mut() {
            ft.policy_check_sync(fp);
            ft.policy_check_barrier(crossed);
        }
    }

    fn try_replay_barrier(&mut self, st: &mut MutexGuard<'_, NodeState>) -> bool {
        let episode = st.bar_episode;
        let Some(result) = st
            .replay
            .as_ref()
            .unwrap()
            .bar_results
            .get(&episode)
            .cloned()
        else {
            return false;
        };
        let (p, l) = end_interval(st);
        self.breakdown.protocol += p;
        self.breakdown.logging += l;
        let arrive_vt = st.vt.clone();
        let me = self.me;
        if let Some(ft) = st.ft.as_mut() {
            ft.last_bar_arrive_seq = arrive_vt.get(me);
        }
        st.wn_since_barrier.clear();
        let pre = st.vt.clone();
        st.vt.join(&result);
        self.apply_replay_invalidations(st, &pre);
        let result_vt = st.vt.clone();
        if let Some(ft) = st.ft.as_mut() {
            ft.logs.log_bar(BarEntry {
                episode,
                arrive_vt,
                result_vt,
            });
        }
        st.bar_episode += 1;
        apply_pending_home(st);
        true
    }

    // ---- checkpoint safe points ------------------------------------------------

    /// Request a checkpoint at the next safe point (for
    /// [`crate::CkptPolicy::Manual`] and application-directed checkpoints —
    /// the memory-exclusion style optimization the paper discusses).
    pub fn request_checkpoint(&mut self) {
        let mut st = self.shared.state.lock();
        if let Some(ft) = st.ft.as_mut() {
            ft.ckpt_due = true;
        }
    }

    /// One-time initialization: runs `f` followed by a barrier, skipped
    /// entirely when resuming from a checkpoint (the restored state already
    /// contains the initialization's effects, and re-crossing its barrier
    /// would desynchronize replay). Use this for everything an application
    /// does before its [`Process::run_steps`] loop.
    pub fn init_phase(&mut self, f: impl FnOnce(&mut Process)) {
        if self.resuming() {
            return;
        }
        f(self);
        self.barrier();
    }

    /// Step-structured execution with checkpoint safe points.
    ///
    /// Runs `body(self, state, step)` for `step in 0..total`. At each step
    /// boundary the runtime may take an independent checkpoint capturing
    /// `state`; after a crash, execution resumes from the checkpointed step
    /// with `state` restored, replaying the DSM operations in between from
    /// the peers' logs.
    pub fn run_steps<S: AppState>(
        &mut self,
        state: &mut S,
        total: u64,
        mut body: impl FnMut(&mut Process, &mut S, u64),
    ) {
        let start = if self.recovering {
            if let Some(bytes) = self.restored_state.take() {
                let mut r = ByteReader::new(&bytes);
                *state = S::decode(&mut r);
            }
            self.restored_step
        } else {
            0
        };
        for step in start..total {
            self.safe_point(step, state);
            body(self, state, step);
        }
    }

    fn safe_point<S: AppState>(&mut self, step: u64, state: &S) {
        let mut st = self.shared.state.lock();
        if st.replay.is_some() {
            return; // no checkpoints while replaying
        }
        let due = match st.ft.as_mut() {
            Some(ft) => ft.ckpt_due_at_step(step),
            None => false,
        };
        if !due {
            return;
        }
        let mut w = ByteWriter::new();
        state.encode(&mut w);
        let (logging, disk) = crate::ft::take_checkpoint(&mut st, step, w.into_bytes());
        self.breakdown.logging += logging;
        self.breakdown.disk_write += disk;
    }

    // ---- lifecycle ----------------------------------------------------------

    /// Flush any unsynchronized writes and fold this incarnation's
    /// breakdown into the node report.
    pub(crate) fn finish(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock();
        if st.replay.is_some() {
            // The application completed entirely under replay (it had
            // finished before the crash): transition to live so peers can
            // be served.
            recovery::go_live(&mut st);
        }
        let (p, l) = end_interval(&mut st);
        self.breakdown.protocol += p;
        self.breakdown.logging += l;
        self.flush_stats(&mut st);
    }

    /// Fold timing into the node report without finishing (crash path).
    pub(crate) fn flush_stats(&mut self, st: &mut NodeState) {
        self.breakdown.total = self.started.elapsed();
        st.breakdown_acc = st.breakdown_acc.merged(&self.breakdown);
        self.breakdown = Breakdown::default();
        self.started = Instant::now();
    }

    /// Crash path: record partial timing.
    pub(crate) fn abandon(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock();
        self.flush_stats(&mut st);
    }
}
