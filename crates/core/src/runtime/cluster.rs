//! Cluster construction and the run loop.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_net::Fabric;
use dsm_page::VectorClock;
use dsm_storage::StableStore;
use dsm_trace::Trace;
use hlrc::barrier::BarrierManager;
use hlrc::{LockManagerTable, PageTable, WnTable};
use parking_lot::{Condvar, Mutex};

use crate::config::{ClusterConfig, FailureSpec};
use crate::ft::FtState;
use crate::msg::Msg;
use crate::runtime::node::{
    service_loop, CrashSignal, Mode, NodeShared, NodeState, SyncState, WaitSlot,
};
use crate::runtime::process::Process;
use crate::stats::{NodeReport, RunReport};

/// Keep injected fail-stop crashes (which are implemented as panics with a
/// [`CrashSignal`] payload) out of stderr; real panics still print, followed
/// by the flight-recorder tail of any trace-enabled run in the process.
fn install_crash_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CrashSignal>() {
                return;
            }
            default(info);
            dsm_trace::dump_flight_recorders("panic");
        }));
    });
}

/// Run an SPMD application on a simulated cluster.
///
/// `app` is invoked once per node with that node's [`Process`] handle (and
/// re-invoked after a scripted crash, with recovery and replay handled by
/// the runtime). Returns the per-node results plus all statistics.
pub fn run<R, F>(config: ClusterConfig, failures: &[FailureSpec], app: F) -> RunReport<R>
where
    F: Fn(&mut Process) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    install_crash_hook();
    let n = config.nodes;
    assert!(n >= 2, "a DSM cluster needs at least two nodes");
    if !failures.is_empty() {
        assert!(
            config.ft_enabled(),
            "failure injection requires fault tolerance"
        );
    }

    let trace = Trace::new(n, &config.trace);
    if trace.is_enabled() {
        trace.register_flight_recorder();
    }
    let (fabric, endpoints) = Fabric::<Msg>::new(n);
    let mut shareds: Vec<Arc<NodeShared>> = Vec::with_capacity(n);
    for (i, mut ep) in endpoints.into_iter().enumerate() {
        ep.attach_tracer(trace.tracer(i));
        let store = Arc::new(StableStore::new(config.disk));
        let mut crash_queue: Vec<u64> = failures
            .iter()
            .filter(|f| f.node == i)
            .map(|f| f.at_op)
            .collect();
        crash_queue.sort_unstable();
        let state = NodeState {
            me: i,
            n,
            page_size: config.page_size,
            mode: Mode::Normal,
            mode_flag: Arc::new(AtomicU8::new(Mode::Normal.flag())),
            pt: PageTable::new(i, n, config.page_size),
            vt: VectorClock::zero(n),
            wn_table: WnTable::new(),
            sync: Arc::new(Mutex::new(SyncState {
                lock_mgr: LockManagerTable::new(i),
                bar_mgr: (i == 0).then(|| BarrierManager::new(n)),
            })),
            held: Default::default(),
            tenure: Default::default(),
            last_release_vt: Default::default(),
            pending_grants: Default::default(),
            lock_chain_info: Default::default(),
            wait: WaitSlot::None,
            rec_inbox: Vec::new(),
            backlog: Vec::new(),
            pending_unalloc: Vec::new(),
            prefetch: HashMap::new(),
            acq_seq_next: 0,
            bar_episode: 0,
            req_id_next: 0,
            wn_since_barrier: Vec::new(),
            shared_bytes: 0,
            alloc_cursor: 0,
            ft: config
                .ft
                .clone()
                .map(|cfg| FtState::new(i, n, cfg, Arc::clone(&store))),
            replay: None,
            protocol_time_svc: Duration::ZERO,
            svc_time_by_kind: HashMap::new(),
            shutdown: false,
            ops: 0,
            crash_queue,
            recoveries: 0,
            ep: Arc::new(ep),
            breakdown_acc: Default::default(),
            tracer: trace.tracer(i),
            hists: Default::default(),
        };
        shareds.push(Arc::new(NodeShared {
            state: Mutex::new(state),
            cv: Condvar::new(),
            me: i,
            n,
        }));
    }

    let service_handles: Vec<_> = shareds
        .iter()
        .map(|s| {
            let s = Arc::clone(s);
            std::thread::Builder::new()
                .name(format!("dsm-svc-{}", s.me))
                .spawn(move || service_loop(s))
                .expect("spawn service thread")
        })
        .collect();

    let app = Arc::new(app);
    let active_recoveries = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let app_handles: Vec<_> = (0..n)
        .map(|i| {
            let shared = Arc::clone(&shareds[i]);
            let app = Arc::clone(&app);
            let fabric = fabric.clone();
            let active = Arc::clone(&active_recoveries);
            std::thread::Builder::new()
                .name(format!("dsm-app-{i}"))
                .spawn(move || {
                    let mut recovering = false;
                    loop {
                        let mut proc = Process::new(Arc::clone(&shared), recovering);
                        if recovering {
                            proc.recover();
                            active.fetch_sub(1, Ordering::SeqCst);
                        }
                        let res = catch_unwind(AssertUnwindSafe(|| app(&mut proc)));
                        match res {
                            Ok(v) => {
                                proc.finish();
                                return v;
                            }
                            Err(p) if p.is::<CrashSignal>() => {
                                proc.abandon();
                                let prev = active.fetch_add(1, Ordering::SeqCst);
                                assert_eq!(
                                    prev, 0,
                                    "overlapping failures violate the single-fault model"
                                );
                                // Fail-stop: drop protocol state visibility,
                                // lose queued input.
                                {
                                    let mut st = shared.state.lock();
                                    st.set_mode(Mode::Crashed);
                                    st.wait = WaitSlot::None;
                                    st.replay = None;
                                    st.prefetch.clear();
                                    // Fence the lock-free fast path: after
                                    // the mode flag flips, drain the sync
                                    // and shard locks so no fast-path op
                                    // started before the flip is still in
                                    // flight, then drop parked fetches
                                    // (requesters retransmit on NodeUp).
                                    drop(st.sync.lock());
                                    let home = st.pt.home_store();
                                    home.quiesce();
                                    home.clear_waiting();
                                }
                                fabric.crash(i);
                                {
                                    let st = shared.state.lock();
                                    st.ep.drain();
                                }
                                // Failure-detection delay.
                                std::thread::sleep(Duration::from_millis(10));
                                {
                                    let mut st = shared.state.lock();
                                    st.set_mode(Mode::Recovering);
                                    st.backlog.clear();
                                    st.rec_inbox.clear();
                                    st.pending_unalloc.clear();
                                }
                                fabric.restart(i);
                                recovering = true;
                            }
                            Err(p) => resume_unwind(p),
                        }
                    }
                })
                .expect("spawn app thread")
        })
        .collect();

    let results: Vec<R> = app_handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        })
        .collect();
    let wall = t0.elapsed();

    // Let in-flight protocol traffic (final diff flushes) quiesce.
    let mut last = fabric.stats().total().msgs_sent;
    let mut quiet = 0;
    while quiet < 3 {
        std::thread::sleep(Duration::from_millis(25));
        let now = fabric.stats().total().msgs_sent;
        if now == last {
            quiet += 1;
        } else {
            quiet = 0;
            last = now;
        }
    }

    // Stop the service threads before collecting reports: the fast path
    // folds its accumulated per-kind timing and histograms into the node
    // state only at loop exit.
    for s in shareds.iter() {
        let mut st = s.state.lock();
        st.shutdown = true;
        st.ep.wake();
    }
    for h in service_handles {
        let _ = h.join();
    }

    // Collect reports and compute the final shared-memory hash from the
    // authoritative home copies.
    let mut nodes = Vec::with_capacity(n);
    let mut shared_bytes = 0;
    let total_pages = shareds[0].state.lock().pt.len();
    let mut hash: u64 = 0xcbf29ce484222325;
    let debug_pages = std::env::var_os("FTDSM_DEBUG_PAGES").is_some();
    for p in 0..total_pages {
        let page = dsm_page::PageId(p as u32);
        let home = shareds[0].state.lock().pt.home_of(page);
        let st = shareds[home].state.lock();
        let (version, bytes) = st.pt.home_snapshot(page);
        let mut ph: u64 = 0xcbf29ce484222325;
        for &b in bytes.iter() {
            ph ^= b as u64;
            ph = ph.wrapping_mul(0x100000001b3);
        }
        if debug_pages {
            let words: Vec<u64> = bytes[..64]
                .chunks(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            eprintln!("[dump] page {page} home {home} v={version} hash {ph:016x} words {words:?}");
        }
        hash ^= ph;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    for (i, s) in shareds.iter().enumerate() {
        let mut st = s.state.lock();
        shared_bytes = shared_bytes.max(st.shared_bytes);
        let mut breakdown = st.breakdown_acc;
        breakdown.protocol += st.protocol_time_svc;
        let ft = match st.ft.as_mut() {
            Some(ft) => {
                ft.report.log_counters = ft.logs.counters();
                ft.report.store = ft.store.stats();
                ft.report.clone()
            }
            None => Default::default(),
        };
        let mut svc_time_by_kind: Vec<_> =
            st.svc_time_by_kind.iter().map(|(&k, &d)| (k, d)).collect();
        svc_time_by_kind.sort_unstable_by_key(|&(k, _)| k);
        nodes.push(NodeReport {
            breakdown,
            traffic: fabric.stats().node(i).snapshot(),
            ft,
            ops: st.ops,
            hists: st.hists.clone(),
            pool: st.pt.pool_stats(),
            svc_time_by_kind,
            msg_kinds: fabric.stats().node(i).kind_counts(),
        });
    }

    RunReport {
        results,
        nodes,
        wall,
        shared_bytes,
        shared_hash: hash,
        trace,
    }
}
