//! Cluster construction and the run loop.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_member::{Detector, MemberConfig};
use dsm_metrics::Registry;
use dsm_net::Fabric;
use dsm_page::VectorClock;
use dsm_storage::StableStore;
use dsm_trace::{EventSink, Histogram, Trace, TraceConfig};
use hlrc::barrier::BarrierManager;
use hlrc::{LockManagerTable, PageTable, WnTable};
use parking_lot::{Condvar, Mutex};

use crate::config::{ClusterConfig, FailureSpec};
use crate::ft::FtState;
use crate::monitor::Monitor;
use crate::msg::Msg;
use crate::runtime::node::{
    apply_member_actions, retransmit_stale_diffs, service_loop, CrashSignal, MemberRuntime, Mode,
    NodeShared, NodeState, SyncState, WaitSlot,
};
use crate::runtime::process::Process;
use crate::stats::{NodeReport, RunReport};

/// Keep injected fail-stop crashes (which are implemented as panics with a
/// [`CrashSignal`] payload) out of stderr; real panics still print, followed
/// by the flight-recorder tail of any trace-enabled run in the process.
fn install_crash_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CrashSignal>() {
                return;
            }
            default(info);
            dsm_trace::dump_flight_recorders("panic");
            dsm_metrics::dump_on_panic();
        }));
    });
}

/// Sample the cluster's live counters into the registry and snapshot it.
/// Never blocks on a contended lock — the sampler must not perturb the run
/// (a skipped node is re-sampled next period).
fn sample_metrics(
    reg: &Registry,
    fabric: &Fabric<Msg>,
    shareds: &[Arc<NodeShared>],
) -> dsm_metrics::Snapshot {
    let t = fabric.stats().total();
    reg.counter("fabric_msgs_sent_total").store(t.msgs_sent);
    reg.counter("fabric_base_bytes_sent_total")
        .store(t.base_bytes_sent);
    reg.counter("fabric_ft_bytes_sent_total")
        .store(t.ft_bytes_sent);
    reg.counter("fabric_msgs_dropped_total")
        .store(t.msgs_dropped);
    reg.counter("fabric_chaos_dropped_total")
        .store(t.chaos_dropped);
    reg.counter("fabric_chaos_delayed_total")
        .store(t.chaos_delayed);
    reg.counter("fabric_chaos_duplicated_total")
        .store(t.chaos_duplicated);
    reg.counter("fabric_partition_blocked_total")
        .store(t.partition_blocked);
    for s in shareds {
        if let Some(st) = s.state.try_lock() {
            let me = st.me;
            reg.gauge(&format!("node_recoveries{{node=\"{me}\"}}"))
                .set(st.recoveries as i64);
            reg.gauge(&format!("node_retransmits{{node=\"{me}\"}}"))
                .set(st.retransmits as i64);
            reg.gauge(&format!("node_dup_suppressed{{node=\"{me}\"}}"))
                .set(st.dup_suppressed as i64);
            reg.gauge(&format!("node_diff_outbox_depth{{node=\"{me}\"}}"))
                .set(st.diff_outbox.iter().map(VecDeque::len).sum::<usize>() as i64);
            let pool = st.pt.pool_stats();
            reg.counter(&format!("pool_hits_total{{node=\"{me}\"}}"))
                .store(pool.hits);
            reg.counter(&format!("pool_misses_total{{node=\"{me}\"}}"))
                .store(pool.misses);
            reg.counter(&format!("pool_recycled_total{{node=\"{me}\"}}"))
                .store(pool.recycled);
            if let Some(mr) = &st.member {
                if let Some(det) = mr.det.try_lock() {
                    let ms = det.stats();
                    reg.counter(&format!("member_suspicions_total{{node=\"{me}\"}}"))
                        .store(ms.suspicions);
                    reg.counter(&format!("member_down_events_total{{node=\"{me}\"}}"))
                        .store(ms.down_events);
                    reg.counter(&format!("member_up_events_total{{node=\"{me}\"}}"))
                        .store(ms.up_events);
                    reg.counter(&format!("member_pings_sent_total{{node=\"{me}\"}}"))
                        .store(ms.pings_sent);
                }
            }
        }
    }
    reg.snapshot()
}

/// Run an SPMD application on a simulated cluster.
///
/// `app` is invoked once per node with that node's [`Process`] handle (and
/// re-invoked after a scripted crash, with recovery and replay handled by
/// the runtime). Returns the per-node results plus all statistics.
pub fn run<R, F>(config: ClusterConfig, failures: &[FailureSpec], app: F) -> RunReport<R>
where
    F: Fn(&mut Process) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    install_crash_hook();
    let n = config.nodes;
    assert!(n >= 2, "a DSM cluster needs at least two nodes");
    if !failures.is_empty() {
        assert!(
            config.ft_enabled(),
            "failure injection requires fault tolerance"
        );
    }

    // The monitor is an event sink: it needs the stream, so it forces
    // tracing on even if the config left it off.
    let trace_cfg = if config.monitor && !config.trace.enabled {
        TraceConfig::enabled()
    } else {
        config.trace.clone()
    };
    let trace = Trace::new(n, &trace_cfg);
    if trace.is_enabled() {
        trace.register_flight_recorder();
    }
    let monitor: Option<Arc<Monitor>> = config.monitor.then(|| Arc::new(Monitor::new(n)));
    if let Some(m) = &monitor {
        trace.set_sink(Some(Arc::clone(m) as Arc<dyn EventSink>));
    }
    let metrics_registry = Registry::new();
    metrics_registry.register_flight_recorder();
    let inject_stale_apply = config
        .inject_stale_apply
        .then(|| Arc::new(AtomicBool::new(true)));
    // Chaos auto-enables membership: the heartbeat/retry layer is what makes
    // a lossy fabric survivable.
    let membership: Option<MemberConfig> = config
        .membership
        .clone()
        .or_else(|| config.chaos.as_ref().map(|_| MemberConfig::default()));
    let (fabric, endpoints) = Fabric::<Msg>::new(n);
    if let Some(plan) = &config.chaos {
        // One knob reproduces a run: the cluster seed replaces whatever the
        // plan was built with.
        let mut plan = plan.clone();
        plan.seed = config.seed;
        fabric.set_fault_plan(&plan);
    }
    let mut shareds: Vec<Arc<NodeShared>> = Vec::with_capacity(n);
    for (i, mut ep) in endpoints.into_iter().enumerate() {
        ep.attach_tracer(trace.tracer(i));
        let store = Arc::new(StableStore::new(config.disk));
        let mut crash_queue: Vec<u64> = failures
            .iter()
            .filter(|f| f.node == i)
            .map(|f| f.at_op)
            .collect();
        crash_queue.sort_unstable();
        let state = NodeState {
            me: i,
            n,
            page_size: config.page_size,
            mode: Mode::Normal,
            mode_flag: Arc::new(AtomicU8::new(Mode::Normal.flag())),
            pt: PageTable::new(i, n, config.page_size),
            vt: VectorClock::zero(n),
            wn_table: WnTable::new(),
            sync: Arc::new(Mutex::new(SyncState {
                lock_mgr: LockManagerTable::new(i),
                bar_mgr: (i == 0).then(|| BarrierManager::new(n)),
            })),
            held: Default::default(),
            tenure: Default::default(),
            tenure_gen: Default::default(),
            last_release_vt: Default::default(),
            pending_grants: Default::default(),
            lock_chain_info: Default::default(),
            wait: WaitSlot::None,
            rec_inbox: Vec::new(),
            backlog: Vec::new(),
            pending_unalloc: Vec::new(),
            prefetch: HashMap::new(),
            acq_seq_next: 0,
            bar_episode: 0,
            req_id_next: 0,
            wn_since_barrier: Vec::new(),
            shared_bytes: 0,
            alloc_cursor: 0,
            ft: config
                .ft
                .clone()
                .map(|cfg| FtState::new(i, n, cfg, Arc::clone(&store))),
            replay: None,
            protocol_time_svc: Duration::ZERO,
            svc_time_by_kind: HashMap::new(),
            shutdown: false,
            ops: 0,
            crash_queue,
            recoveries: 0,
            ep: Arc::new(ep),
            member: membership.as_ref().map(|cfg| {
                Arc::new(MemberRuntime {
                    det: Mutex::new(Detector::new(i, n, cfg.clone(), Instant::now())),
                    rtt: Mutex::new(Histogram::new()),
                    susp: Mutex::new(Histogram::new()),
                })
            }),
            retry_after: membership.as_ref().map(|cfg| cfg.retry_after),
            retransmits: 0,
            dup_suppressed: 0,
            diff_outbox: (0..n).map(|_| VecDeque::new()).collect(),
            diff_inflight: vec![None; n],
            diff_seq_next: 0,
            own_diff_seq: HashMap::new(),
            breakdown_acc: Default::default(),
            tracer: trace.tracer(i),
            hists: Default::default(),
            cur_flow: 0,
            inject_stale_apply: inject_stale_apply.clone(),
        };
        shareds.push(Arc::new(NodeShared {
            state: Mutex::new(state),
            cv: Condvar::new(),
            me: i,
            n,
        }));
    }

    let service_handles: Vec<_> = shareds
        .iter()
        .map(|s| {
            let s = Arc::clone(s);
            std::thread::Builder::new()
                .name(format!("dsm-svc-{}", s.me))
                .spawn(move || service_loop(s))
                .expect("spawn service thread")
        })
        .collect();

    // One heartbeat ticker per node: drives the failure detector's timers
    // and the diff-outbox retransmission scan. Tickers run until explicitly
    // stopped (heartbeats never quiesce, so they must die before the
    // traffic-quiesce loop below can converge).
    let ticker_stop = Arc::new(AtomicBool::new(false));
    let ticker_handles: Vec<_> = match &membership {
        None => Vec::new(),
        Some(cfg) => shareds
            .iter()
            .map(|s| {
                let shared = Arc::clone(s);
                let stop = Arc::clone(&ticker_stop);
                let every = cfg.heartbeat_every;
                std::thread::Builder::new()
                    .name(format!("dsm-hb-{}", s.me))
                    .spawn(move || {
                        let (mr, ep, tracer, mode_flag) = {
                            let st = shared.state.lock();
                            (
                                st.member.clone().expect("ticker without member runtime"),
                                Arc::clone(&st.ep),
                                st.tracer.clone(),
                                Arc::clone(&st.mode_flag),
                            )
                        };
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(every);
                            // A crashed node is silent: no heartbeats, no
                            // retransmissions — that silence is exactly what
                            // the peers' detectors pick up.
                            if mode_flag.load(Ordering::SeqCst) == Mode::Crashed.flag() {
                                continue;
                            }
                            let actions = mr.det.lock().tick(Instant::now());
                            apply_member_actions(&shared, &ep, &tracer, &mr, actions);
                            // Retransmit stale in-flight diff batches. Skip
                            // when the big lock is busy — the app thread owns
                            // it while computing; the next tick retries.
                            if let Some(mut st) = shared.state.try_lock() {
                                if st.mode != Mode::Crashed {
                                    retransmit_stale_diffs(&mut st);
                                }
                            }
                        }
                    })
                    .expect("spawn heartbeat ticker")
            })
            .collect(),
    };

    // Periodic metrics sampler: one thread, snapshots every `every` into an
    // in-memory series (and a JSONL file when configured). A final snapshot
    // is always taken at teardown, so even a short run reports metrics.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_series = Arc::new(Mutex::new(dsm_metrics::TimeSeries::new()));
    let metrics_handle = config.metrics.clone().map(|mcfg| {
        let reg = metrics_registry.clone();
        let fabric = fabric.clone();
        let shareds = shareds.clone();
        let stop = Arc::clone(&metrics_stop);
        let series = Arc::clone(&metrics_series);
        std::thread::Builder::new()
            .name("dsm-metrics".into())
            .spawn(move || {
                use std::io::Write;
                let mut out = mcfg.out.as_ref().and_then(|p| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(p)
                        .ok()
                });
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(mcfg.every);
                    let snap = sample_metrics(&reg, &fabric, &shareds);
                    if let Some(f) = out.as_mut() {
                        let _ = writeln!(f, "{}", snap.to_jsonl());
                    }
                    series.lock().push(snap);
                }
            })
            .expect("spawn metrics sampler")
    });

    let app = Arc::new(app);
    let active_recoveries = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let app_handles: Vec<_> = (0..n)
        .map(|i| {
            let shared = Arc::clone(&shareds[i]);
            let app = Arc::clone(&app);
            let fabric = fabric.clone();
            let active = Arc::clone(&active_recoveries);
            let membership = membership.clone();
            std::thread::Builder::new()
                .name(format!("dsm-app-{i}"))
                .spawn(move || {
                    let mut recovering = false;
                    loop {
                        let mut proc = Process::new(Arc::clone(&shared), recovering);
                        if recovering {
                            proc.recover();
                            active.fetch_sub(1, Ordering::SeqCst);
                        }
                        let res = catch_unwind(AssertUnwindSafe(|| app(&mut proc)));
                        match res {
                            Ok(v) => {
                                proc.finish();
                                return v;
                            }
                            Err(p) if p.is::<CrashSignal>() => {
                                proc.abandon();
                                let prev = active.fetch_add(1, Ordering::SeqCst);
                                assert_eq!(
                                    prev, 0,
                                    "overlapping failures violate the single-fault model"
                                );
                                // Fail-stop: drop protocol state visibility,
                                // lose queued input.
                                {
                                    let mut st = shared.state.lock();
                                    st.set_mode(Mode::Crashed);
                                    st.wait = WaitSlot::None;
                                    st.replay = None;
                                    st.prefetch.clear();
                                    // Fail-stop loses the volatile diff
                                    // outbox with everything else; replay
                                    // regenerates the diffs under new seqs.
                                    for q in st.diff_outbox.iter_mut() {
                                        q.clear();
                                    }
                                    for s in st.diff_inflight.iter_mut() {
                                        *s = None;
                                    }
                                    st.own_diff_seq.clear();
                                    // Fence the lock-free fast path: after
                                    // the mode flag flips, drain the sync
                                    // and shard locks so no fast-path op
                                    // started before the flip is still in
                                    // flight, then drop parked fetches
                                    // (requesters retransmit on NodeUp).
                                    drop(st.sync.lock());
                                    let home = st.pt.home_store();
                                    home.quiesce();
                                    home.clear_waiting();
                                }
                                fabric.crash(i);
                                {
                                    let st = shared.state.lock();
                                    st.ep.drain();
                                }
                                // Stay dead long enough for the failure to
                                // be observable. With membership on, that
                                // means longer than the detection bound, so
                                // peers must notice the silence themselves —
                                // no orchestrated hint ever reaches them.
                                let dead_for = match &membership {
                                    Some(cfg) => cfg.detection_bound() + cfg.heartbeat_every * 4,
                                    None => Duration::from_millis(10),
                                };
                                std::thread::sleep(dead_for);
                                {
                                    let mut st = shared.state.lock();
                                    // New incarnation before the ticker sees
                                    // Recovering: the next heartbeat already
                                    // carries the bumped number, which is how
                                    // peers learn we are back.
                                    if let Some(mr) = &st.member {
                                        mr.det.lock().begin_new_incarnation(Instant::now());
                                    }
                                    st.set_mode(Mode::Recovering);
                                    st.backlog.clear();
                                    st.rec_inbox.clear();
                                    st.pending_unalloc.clear();
                                }
                                if membership.is_some() {
                                    // Peers discover the restart from the
                                    // incarnation bump in our heartbeats and
                                    // retransmit on their own Up event.
                                    fabric.restart_silent(i);
                                } else {
                                    fabric.restart(i);
                                }
                                recovering = true;
                            }
                            Err(p) => resume_unwind(p),
                        }
                    }
                })
                .expect("spawn app thread")
        })
        .collect();

    let results: Vec<R> = app_handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        })
        .collect();
    let wall = t0.elapsed();

    // With the retry layer on, the final diff flushes may still be waiting
    // for acks under loss; keep the tickers retransmitting until every
    // outbox drains (ack received ⇒ the home applied the batch).
    if membership.is_some() {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let drained = shareds.iter().all(|s| {
                let st = s.state.lock();
                st.diff_inflight.iter().all(Option::is_none)
                    && st.diff_outbox.iter().all(VecDeque::is_empty)
            });
            if drained {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "diff outboxes failed to drain (FTDSM_SEED={:#x})",
                config.seed
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Stop the heartbeat tickers before watching traffic quiesce —
    // heartbeats never go quiet on their own.
    ticker_stop.store(true, Ordering::SeqCst);
    for h in ticker_handles {
        let _ = h.join();
    }

    // Let in-flight protocol traffic (final diff flushes) quiesce.
    let mut last = fabric.stats().total().msgs_sent;
    let mut quiet = 0;
    while quiet < 3 {
        std::thread::sleep(Duration::from_millis(25));
        let now = fabric.stats().total().msgs_sent;
        if now == last {
            quiet += 1;
        } else {
            quiet = 0;
            last = now;
        }
    }

    // Stop the service threads before collecting reports: the fast path
    // folds its accumulated per-kind timing and histograms into the node
    // state only at loop exit.
    for s in shareds.iter() {
        let mut st = s.state.lock();
        st.shutdown = true;
        st.ep.wake();
    }
    for h in service_handles {
        let _ = h.join();
    }

    // Stop the metrics sampler and take the closing snapshot.
    metrics_stop.store(true, Ordering::SeqCst);
    if let Some(h) = metrics_handle {
        let _ = h.join();
    }
    let final_snap = sample_metrics(&metrics_registry, &fabric, &shareds);
    let mut metrics = metrics_series.lock().clone();
    if let Some(mcfg) = &config.metrics {
        if let Some(path) = &mcfg.out {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", final_snap.to_jsonl());
            }
            // Final state in Prometheus exposition format next to the JSONL.
            let _ = std::fs::write(path.with_extension("prom"), final_snap.to_prometheus());
        }
    }
    metrics.push(final_snap);

    // The monitor's verdict: fail the run loudly on the first violation,
    // with the offending causal flow stitched from the trace.
    let monitor_report = monitor.as_ref().map(|m| {
        trace.set_sink(None);
        let rep = m.finish();
        if let Some(v) = rep.violations.first() {
            let mut msg = format!(
                "protocol invariant violated: {v}\n  (FTDSM_SEED={:#x}, {} violations total)\n",
                config.seed,
                rep.violations.len()
            );
            let flow = trace.events_for_flow(v.flow);
            if !flow.is_empty() {
                msg.push_str("  causal flow:\n");
                for e in &flow {
                    msg.push_str(&format!("    {e}\n"));
                }
            }
            panic!("{msg}");
        }
        rep
    });

    // Collect reports and compute the final shared-memory hash from the
    // authoritative home copies.
    let mut nodes = Vec::with_capacity(n);
    let mut shared_bytes = 0;
    let total_pages = shareds[0].state.lock().pt.len();
    let mut hash: u64 = 0xcbf29ce484222325;
    let debug_pages = std::env::var_os("FTDSM_DEBUG_PAGES").is_some();
    for p in 0..total_pages {
        let page = dsm_page::PageId(p as u32);
        let home = shareds[0].state.lock().pt.home_of(page);
        let st = shareds[home].state.lock();
        let (version, bytes) = st.pt.home_snapshot(page);
        let mut ph: u64 = 0xcbf29ce484222325;
        for &b in bytes.iter() {
            ph ^= b as u64;
            ph = ph.wrapping_mul(0x100000001b3);
        }
        if debug_pages {
            let words: Vec<u64> = bytes[..64]
                .chunks(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            eprintln!("[dump] page {page} home {home} v={version} hash {ph:016x} words {words:?}");
        }
        hash ^= ph;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    for (i, s) in shareds.iter().enumerate() {
        let mut st = s.state.lock();
        shared_bytes = shared_bytes.max(st.shared_bytes);
        // Fold the member layer's off-big-lock samples and counters in.
        let member = match st.member.clone() {
            Some(mr) => {
                st.hists.heartbeat_rtt.merge(&mr.rtt.lock());
                st.hists.suspicion_latency.merge(&mr.susp.lock());
                mr.det.lock().stats()
            }
            None => Default::default(),
        };
        let mut breakdown = st.breakdown_acc;
        breakdown.protocol += st.protocol_time_svc;
        let ft = match st.ft.as_mut() {
            Some(ft) => {
                ft.report.log_counters = ft.logs.counters();
                ft.report.store = ft.store.stats();
                ft.report.clone()
            }
            None => Default::default(),
        };
        let mut svc_time_by_kind: Vec<_> =
            st.svc_time_by_kind.iter().map(|(&k, &d)| (k, d)).collect();
        svc_time_by_kind.sort_unstable_by_key(|&(k, _)| k);
        nodes.push(NodeReport {
            breakdown,
            traffic: fabric.stats().node(i).snapshot(),
            ft,
            ops: st.ops,
            hists: st.hists.clone(),
            pool: st.pt.pool_stats(),
            svc_time_by_kind,
            msg_kinds: fabric.stats().node(i).kind_counts(),
            member,
            retransmits: st.retransmits,
            dup_suppressed: st.dup_suppressed,
        });
    }

    RunReport {
        results,
        nodes,
        wall,
        shared_bytes,
        shared_hash: hash,
        trace,
        phases: fabric.stats().total_phases(),
        metrics,
        monitor: monitor_report,
    }
}
