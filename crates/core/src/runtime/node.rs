//! Per-node runtime state and the protocol service loop.
//!
//! Each node is a pair of threads sharing a [`NodeState`] behind a mutex:
//! the *application* thread runs user code and blocks on a condition
//! variable when an operation needs remote data; the *service* thread
//! receives fabric messages, advances the protocol, and notifies waiters.
//! This mirrors the paper's setup, where VMMC handlers service remote
//! requests while the application computes.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_net::{Endpoint, Event};
use dsm_page::{Diff, PageId, ProcId, VectorClock};
use dsm_trace::{EventKind, LatencyHists, NodeTracer};
use hlrc::barrier::{Arrival, ArriveOutcome, BarrierManager};
use hlrc::locks::{AcqReq, LockAction, LockManagerTable};
use hlrc::{LockId, PageTable, WnTable, WriteNotice};
use parking_lot::{Condvar, Mutex};

use crate::ft::logs::{DiffLogEntry, MgrBarEntry, RelEntry};
use crate::ft::recovery::ReplayState;
use crate::ft::FtState;
use crate::msg::{Msg, Payload, Piggy};

/// Panic payload used to simulate a fail-stop crash of the application
/// thread at a DSM operation boundary.
#[derive(Debug)]
pub struct CrashSignal;

/// Node liveness as seen by its own runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Normal,
    Crashed,
    Recovering,
}

/// A lock grant in flight to the application thread.
#[derive(Debug, Clone)]
pub(crate) struct GrantData {
    pub lock: LockId,
    pub acq_seq: u64,
    pub gen: u64,
    pub granter: ProcId,
    pub vt: VectorClock,
    pub wns: Vec<WriteNotice>,
}

/// A barrier release in flight to the application thread.
#[derive(Debug, Clone)]
pub(crate) struct ReleaseData {
    pub episode: u64,
    pub vt: VectorClock,
    pub wns: Vec<WriteNotice>,
}

/// What the application thread is currently blocked on.
#[derive(Debug)]
pub(crate) enum WaitSlot {
    None,
    Page {
        page: PageId,
        req_id: u64,
        home: ProcId,
        needed: VectorClock,
        /// The shared page buffer from the reply, installed without copying.
        reply: Option<(VectorClock, Arc<[u8]>)>,
    },
    Lock {
        lock: LockId,
        acq_seq: u64,
        manager: ProcId,
        req_vt: VectorClock,
        grant: Option<GrantData>,
    },
    Barrier {
        episode: u64,
        arrive_vt: VectorClock,
        own_wns: Vec<WriteNotice>,
        release: Option<ReleaseData>,
    },
}

/// A forwarded acquire queued while this node still holds the lock.
#[derive(Debug, Clone)]
pub(crate) struct PendingGrant {
    pub requester: ProcId,
    pub acq_seq: u64,
    pub gen: u64,
    /// Our tenure (by our own acquisition number) this grant chains behind.
    pub pred_acq: u64,
    pub req_vt: VectorClock,
}

/// The mutable state of one node.
pub(crate) struct NodeState {
    pub me: ProcId,
    pub n: usize,
    pub page_size: usize,
    pub mode: Mode,
    pub pt: PageTable,
    pub vt: VectorClock,
    pub wn_table: WnTable,
    pub lock_mgr: LockManagerTable,
    pub bar_mgr: Option<BarrierManager>,
    pub held: HashSet<LockId>,
    /// Latest tenure per lock: (our own acquisition sequence number,
    /// released?). Deterministic local knowledge, reconstructed exactly by
    /// checkpoint restore plus replay — the basis of forward gating.
    pub tenure: HashMap<LockId, (u64, bool)>,
    pub last_release_vt: HashMap<LockId, VectorClock>,
    pub pending_grants: HashMap<LockId, Vec<PendingGrant>>,
    /// Highest grant generation this node issued or queued, per lock, with
    /// the grantee and the grantee's acquisition sequence number (reported
    /// to a recovering manager for chain rebuild).
    pub lock_chain_info: HashMap<LockId, (u64, ProcId, u64)>,
    pub wait: WaitSlot,
    /// Recovery replies deposited by the service thread while recovering.
    pub rec_inbox: Vec<(ProcId, Payload)>,
    /// Non-recovery messages deferred while recovering.
    pub backlog: Vec<(ProcId, Payload)>,
    /// Messages referencing pages this node has not allocated yet (SPMD
    /// allocation is local, so an eager peer can request a page before our
    /// application thread reaches the corresponding alloc). Replayed by
    /// [`crate::Process::alloc`].
    pub pending_unalloc: Vec<(ProcId, Payload)>,
    /// Remote fetches waiting for in-flight diffs at this home.
    pub waiting_fetches: Vec<(ProcId, PageId, VectorClock, u64)>,
    pub acq_seq_next: u64,
    pub bar_episode: u64,
    pub req_id_next: u64,
    /// Own write notices since the last barrier arrival.
    pub wn_since_barrier: Vec<WriteNotice>,
    pub shared_bytes: u64,
    /// Allocation cursor (page index of the next allocation).
    pub alloc_cursor: u32,
    pub ft: Option<FtState>,
    pub replay: Option<ReplayState>,
    /// Service-thread protocol handler time.
    pub protocol_time_svc: Duration,
    pub shutdown: bool,
    /// DSM operations executed (crash-injection clock).
    pub ops: u64,
    /// Scripted failures (ascending op counts).
    pub crash_queue: Vec<u64>,
    pub recoveries: u64,
    pub ep: Arc<Endpoint<Msg>>,
    /// Breakdown accumulated across this node's incarnations.
    pub breakdown_acc: crate::stats::Breakdown,
    /// Protocol event tracer (a no-op handle when tracing is disabled).
    pub tracer: NodeTracer,
    /// Latency histograms accumulated across this node's incarnations.
    pub hists: LatencyHists,
}

/// Everything shared between a node's threads.
pub(crate) struct NodeShared {
    pub state: Mutex<NodeState>,
    pub cv: Condvar,
    pub me: ProcId,
    pub n: usize,
}

impl NodeState {
    /// Send a protocol message with the FT piggyback attached (when it
    /// carries news: a checkpoint timestamp the destination hasn't seen,
    /// `p0.v` hints, or — on barrier releases — the gossip table).
    pub(crate) fn send(&mut self, to: ProcId, payload: Payload) {
        let gossip = matches!(payload, Payload::BarrierRelease { .. });
        let piggy = self.make_piggy(to, gossip);
        let ep = Arc::clone(&self.ep);
        ep.send(to, Msg { payload, piggy });
    }

    fn make_piggy(&mut self, to: ProcId, gossip: bool) -> Option<Piggy> {
        let me = self.me;
        let homed = if self.pt.is_empty() {
            Vec::new()
        } else {
            self.pt.homed_pages()
        };
        let ft = self.ft.as_mut()?;
        let mut p0v = Vec::new();
        if !homed.is_empty() && !ft.retained.is_empty() {
            let batch = ft.cfg.piggy_page_batch;
            let start = ft.piggy_cursor % homed.len();
            for k in 0..homed.len() {
                if p0v.len() >= batch {
                    break;
                }
                let page = homed[(start + k) % homed.len()];
                ft.piggy_cursor = (start + k + 1) % homed.len();
                if !self.pt.home_meta(page).writers.contains(&to) {
                    continue;
                }
                if let Some(v) = ft.cover_version(me, page) {
                    let bound = v.get(to);
                    if bound > 0 && ft.p0v_sent.get(&(page, to)).copied().unwrap_or(0) < bound {
                        ft.p0v_sent.insert((page, to), bound);
                        p0v.push((page, bound));
                    }
                }
            }
        }
        let news = ft.piggy_sent[to] != ft.ckpt_seq;
        let table = if gossip {
            ft.gossip_table(me)
        } else {
            Vec::new()
        };
        if !news && p0v.is_empty() && table.is_empty() {
            return None;
        }
        ft.piggy_sent[to] = ft.ckpt_seq;
        Some(Piggy {
            tckp: ft.last_ckpt_vt.clone(),
            ckpt_seq: ft.ckpt_seq,
            ckpt_episode: ft.last_ckpt_episode,
            p0v,
            table,
        })
    }

    /// Deposit a grant for the blocked application thread.
    pub(crate) fn deposit_grant(&mut self, g: GrantData) {
        if let WaitSlot::Lock { acq_seq, grant, .. } = &mut self.wait {
            if *acq_seq == g.acq_seq && grant.is_none() {
                *grant = Some(g);
            }
        }
        // Anything else is a stale retransmission: drop.
    }

    /// Deposit a barrier release.
    pub(crate) fn deposit_release(&mut self, r: ReleaseData) {
        if let WaitSlot::Barrier {
            episode, release, ..
        } = &mut self.wait
        {
            if *episode == r.episode && release.is_none() {
                *release = Some(r);
            }
        }
    }

    /// Deposit a page reply (the shared buffer, never a copy).
    pub(crate) fn deposit_page(&mut self, req_id: u64, version: VectorClock, bytes: Arc<[u8]>) {
        if let WaitSlot::Page {
            req_id: want,
            reply,
            ..
        } = &mut self.wait
        {
            if *want == req_id && reply.is_none() {
                *reply = Some((version, bytes));
            }
        }
    }
}

/// End the current interval: turn twins into diffs, publish write notices,
/// send diffs to remote homes, and (FT) log everything.
///
/// Returns (protocol time, logging time) spent.
pub(crate) fn end_interval(st: &mut NodeState) -> (Duration, Duration) {
    if st.pt.written_pages().is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let t0 = Instant::now();
    let me = st.me;
    let iv = st.vt.tick(me);
    let diffs: Vec<Arc<Diff>> = st.pt.end_interval(iv).into_iter().map(Arc::new).collect();
    st.hists.diff_create.record(t0.elapsed().as_nanos() as u64);
    if diffs.is_empty() {
        // Twins existed but no word actually changed: nothing to publish.
        return (t0.elapsed(), Duration::ZERO);
    }
    let pages: Vec<PageId> = diffs.iter().map(|d| d.page).collect();
    if st.tracer.enabled() {
        for d in &diffs {
            st.tracer.emit(EventKind::DiffCreate {
                page: d.page.0,
                bytes: d.payload_bytes() as u32,
            });
        }
    }
    st.wn_table.insert_parts(iv, pages.clone());
    st.wn_since_barrier.push(WriteNotice {
        interval: iv,
        pages: pages.clone(),
    });

    // Group diffs for remote homes (reference bumps, not payload copies).
    let mut per_home: HashMap<ProcId, Vec<Arc<Diff>>> = HashMap::new();
    for d in &diffs {
        let home = st.pt.home_of(d.page);
        if home != me {
            per_home.entry(home).or_default().push(Arc::clone(d));
        }
    }
    let proto = t0.elapsed();

    // FT: log the write notice and every diff (including homed pages').
    // The log entry shares the diff object just sent in the batch — logging
    // costs one Arc bump plus the timestamp, never a payload copy.
    let t1 = Instant::now();
    if let Some(ft) = st.ft.as_mut() {
        let t = st.vt.clone();
        let entries = diffs
            .into_iter()
            .map(|diff| DiffLogEntry {
                diff,
                t: t.clone(),
                saved: false,
            })
            .collect();
        ft.logs.log_interval(iv.seq, pages, entries);
    }
    let logging = t1.elapsed();

    for (home, batch) in per_home {
        st.send(home, Payload::DiffBatch { diffs: batch });
    }
    (proto, logging)
}

/// Apply the pending homed-page diffs whose creators had seen at most
/// `st.vt[me]` of our history (recovery replay ordering; see DESIGN.md).
pub(crate) fn apply_pending_home(st: &mut NodeState) {
    let Some(replay) = st.replay.as_mut() else {
        return;
    };
    if replay.pending_home.is_empty() {
        return;
    }
    let bound = st.vt.get(st.me);
    // `pending_home` is kept sorted in a linear extension of happens-before;
    // applying the eligible subset in order preserves same-word ordering.
    let mut rest = Vec::with_capacity(replay.pending_home.len());
    for e in replay.pending_home.drain(..) {
        if e.t.get(st.me) <= bound {
            st.pt.home_apply_diff(&e.diff);
            if st.tracer.enabled() {
                st.tracer.emit(EventKind::DiffApply {
                    page: e.diff.page.0,
                    bytes: e.diff.payload_bytes() as u32,
                });
            }
        } else {
            rest.push(e);
        }
    }
    replay.pending_home = rest;
    serve_waiting_fetches(st);
}

/// Produce a grant right now (the lock is free at this node).
pub(crate) fn grant_now(
    st: &mut NodeState,
    lock: LockId,
    requester: ProcId,
    acq_seq: u64,
    gen: u64,
    req_vt: VectorClock,
) {
    let n = st.n;
    let req_vt = if req_vt.is_empty() {
        VectorClock::zero(n)
    } else {
        req_vt
    };
    let grant_vt = st
        .last_release_vt
        .get(&lock)
        .cloned()
        .unwrap_or_else(|| VectorClock::zero(n));
    let wns = st.wn_table.missing_between(&req_vt, &grant_vt);
    st.tracer.emit(EventKind::LockGrant {
        lock: lock as u32,
        to: requester,
    });
    if let Some(ft) = st.ft.as_mut() {
        let mut t_after = req_vt.clone();
        t_after.join(&grant_vt);
        ft.logs.log_rel(
            requester,
            RelEntry {
                acq_seq,
                lock,
                gen,
                req_vt,
                t_after,
            },
        );
    }
    deliver_grant(
        st,
        requester,
        GrantData {
            lock,
            acq_seq,
            gen,
            granter: st.me,
            vt: grant_vt,
            wns,
        },
    );
}

fn deliver_grant(st: &mut NodeState, to: ProcId, g: GrantData) {
    if to == st.me {
        st.deposit_grant(g);
    } else {
        st.send(
            to,
            Payload::LockGrant {
                lock: g.lock,
                acq_seq: g.acq_seq,
                gen: g.gen,
                vt: g.vt,
                wns: g.wns,
            },
        );
    }
}

/// Handle a forwarded acquire at the granter (chain predecessor).
pub(crate) fn handle_forward(
    st: &mut NodeState,
    lock: LockId,
    requester: ProcId,
    acq_seq: u64,
    gen: u64,
    pred_acq: u64,
    req_vt: VectorClock,
) {
    // Track the newest grant this node is responsible for (manager
    // recovery).
    let e = st
        .lock_chain_info
        .entry(lock)
        .or_insert((gen, requester, acq_seq));
    if gen >= e.0 {
        *e = (gen, requester, acq_seq);
    }
    // Retransmission of a grant we already produced? Replay it from the
    // release log so the requester sees an identical grant.
    if let Some(ft) = st.ft.as_ref() {
        if let Some(entry) = ft.logs.find_rel(requester, acq_seq) {
            if entry.lock == lock {
                let g = GrantData {
                    lock,
                    acq_seq,
                    gen,
                    granter: st.me,
                    vt: entry.t_after.clone(),
                    wns: st.wn_table.missing_between(&entry.req_vt, &entry.t_after),
                };
                deliver_grant(st, requester, g);
                return;
            }
        }
    }
    // The forward chains behind our tenure whose own acquisition number is
    // `pred_acq`. If we have already released that tenure (or any newer
    // one), grant immediately from our latest release timestamp
    // (conservative: extra happens-before edges are harmless). Otherwise
    // the tenure is still in flight — possibly our grant for it has not
    // even arrived yet, since the manager advances the tail at forward
    // time — and the requester queues until our release.
    // A forward can reference our tenure before its own grant has reached
    // us (the manager advances the tail at forward time): if we are
    // currently blocked acquiring this very tenure, the requester queues
    // until our release.
    let in_flight = matches!(
        &st.wait,
        WaitSlot::Lock { lock: l, acq_seq: s, .. } if *l == lock && *s == pred_acq
    );
    let grantable = pred_acq == u64::MAX
        || (!in_flight
            && match st.tenure.get(&lock) {
                None => true, // no record: the tenure predates anything we know
                Some(&(ts, released)) => pred_acq < ts || (pred_acq == ts && released),
            });
    if !grantable {
        st.pending_grants
            .entry(lock)
            .or_default()
            .push(PendingGrant {
                requester,
                acq_seq,
                gen,
                pred_acq,
                req_vt,
            });
        return;
    }
    grant_now(st, lock, requester, acq_seq, gen, req_vt);
}

/// Route a manager decision: either grant locally or forward.
pub(crate) fn dispatch_lock_action(st: &mut NodeState, a: LockAction) {
    if a.grant_from == st.me {
        handle_forward(
            st,
            a.lock,
            a.req.requester,
            a.req.acq_seq,
            a.gen,
            a.pred_acq,
            a.req.vt,
        );
    } else {
        st.send(
            a.grant_from,
            Payload::LockForward {
                lock: a.lock,
                requester: a.req.requester,
                acq_seq: a.req.acq_seq,
                gen: a.gen,
                pred_acq: a.pred_acq,
                vt: a.req.vt,
            },
        );
    }
}

/// Serve queued remote fetches whose required version is now satisfied.
pub(crate) fn serve_waiting_fetches(st: &mut NodeState) {
    if st.waiting_fetches.is_empty() {
        return;
    }
    let pending = std::mem::take(&mut st.waiting_fetches);
    for (from, page, needed, req_id) in pending {
        if st.pt.home_satisfies(page, &needed) {
            let h = st.pt.home_meta(page);
            let version = h.version.clone();
            let bytes = h.copy.share();
            st.send(
                from,
                Payload::PageReply {
                    page,
                    req_id,
                    version,
                    bytes,
                },
            );
        } else {
            st.waiting_fetches.push((from, page, needed, req_id));
        }
    }
}

/// Process a barrier arrival at the manager (local or remote).
pub(crate) fn barrier_manager_arrive(st: &mut NodeState, arrival: Arrival) {
    let mgr = st.bar_mgr.as_mut().expect("barrier arrival at non-manager");
    match mgr.arrive(arrival) {
        ArriveOutcome::Pending => {}
        ArriveOutcome::Complete(rel) => {
            if let Some(ft) = st.ft.as_mut() {
                ft.logs.log_bar_mgr(MgrBarEntry {
                    episode: rel.episode,
                    arrival_vts: rel.arrival_vts.clone(),
                    result_vt: rel.vt.clone(),
                });
            }
            let me = st.me;
            for p in 0..st.n {
                let data = ReleaseData {
                    episode: rel.episode,
                    vt: rel.vt.clone(),
                    wns: rel.per_proc_wns[p].clone(),
                };
                if p == me {
                    st.deposit_release(data);
                } else {
                    st.send(
                        p,
                        Payload::BarrierRelease {
                            episode: data.episode,
                            vt: data.vt,
                            wns: data.wns,
                        },
                    );
                }
            }
        }
        ArriveOutcome::Resend { proc, release } => {
            let data = ReleaseData {
                episode: release.episode,
                vt: release.vt.clone(),
                wns: release.per_proc_wns[proc].clone(),
            };
            if proc == st.me {
                st.deposit_release(data);
            } else {
                st.send(
                    proc,
                    Payload::BarrierRelease {
                        episode: data.episode,
                        vt: data.vt,
                        wns: data.wns,
                    },
                );
            }
        }
    }
}

/// Build the reply to a recovering peer's log-collection handshake.
fn build_rec_log_reply(st: &NodeState, r: ProcId) -> Payload {
    let ft = st.ft.as_ref().expect("recovery handshake without FT");
    Payload::RecLogReply {
        wn: ft.logs.wn.clone(),
        rel_for_you: ft.logs.rel[r].clone(),
        acq_mirror: ft.logs.acq[r].clone(),
        bar: ft.logs.bar.clone(),
        bar_mgr: ft.logs.bar_mgr.clone(),
        lock_chains: st
            .lock_chain_info
            .iter()
            .map(|(&lock, &(gen, grantee, grantee_acq))| (lock, gen, grantee, grantee_acq))
            .collect(),
    }
}

/// Serve a maximal-starting-copy request: the newest retained checkpointed
/// copy whose version the requester's restart checkpoint covers, falling
/// back to the initial zero page.
fn serve_rec_page(st: &mut NodeState, from: ProcId, page: PageId, tckp: VectorClock) {
    assert!(
        st.pt.is_home(page),
        "RecPageReq for page {page} not homed here"
    );
    let n = st.n;
    let ft = st.ft.as_ref().expect("recovery without FT");
    let mut found: Option<(VectorClock, Arc<[u8]>)> = None;
    for rc in ft.retained.iter().rev() {
        let Some(v) = rc.versions.get(&page) else {
            continue;
        };
        if tckp.covers(v) {
            let blob = ft
                .store
                .read_segment(dsm_storage::SegmentKind::Checkpoint, rc.seq)
                .expect("retained checkpoint missing from stable storage");
            let ckpt =
                crate::ft::ckpt::CheckpointBlob::decode(&blob).expect("corrupt checkpoint blob");
            let (_, v, bytes) = ckpt
                .home_pages
                .into_iter()
                .find(|(p, _, _)| *p == page)
                .expect("page missing from checkpoint");
            found = Some((v, bytes.into()));
            break;
        }
    }
    let (version, bytes) =
        found.unwrap_or_else(|| (VectorClock::zero(n), vec![0u8; st.page_size].into()));
    st.send(
        from,
        Payload::RecPageReply {
            page,
            version,
            bytes,
        },
    );
}

/// The highest page a payload references, if any.
fn max_page(payload: &Payload) -> Option<PageId> {
    match payload {
        Payload::PageReq { page, .. }
        | Payload::RecPageReq { page, .. }
        | Payload::RecDiffReq { page } => Some(*page),
        Payload::DiffBatch { diffs } => diffs.iter().map(|d| d.page).max(),
        _ => None,
    }
}

/// Handle one protocol message in normal mode.
pub(crate) fn handle_msg(st: &mut NodeState, from: ProcId, payload: Payload) {
    if let Some(p) = max_page(&payload) {
        if p.index() >= st.pt.len() {
            st.pending_unalloc.push((from, payload));
            return;
        }
    }
    match payload {
        Payload::LockAcq { lock, acq_seq, vt } => {
            debug_assert_eq!(lock % st.n, st.me, "lock request at wrong manager");
            if let Some(a) = st.lock_mgr.on_request(
                lock,
                AcqReq {
                    requester: from,
                    acq_seq,
                    vt,
                },
            ) {
                dispatch_lock_action(st, a);
            }
        }
        Payload::LockForward {
            lock,
            requester,
            acq_seq,
            gen,
            pred_acq,
            vt,
        } => {
            handle_forward(st, lock, requester, acq_seq, gen, pred_acq, vt);
        }
        Payload::LockGrant {
            lock,
            acq_seq,
            gen,
            vt,
            wns,
        } => {
            st.deposit_grant(GrantData {
                lock,
                acq_seq,
                gen,
                granter: from,
                vt,
                wns,
            });
        }
        Payload::DiffBatch { diffs } => {
            for d in &diffs {
                let t0 = Instant::now();
                st.pt.home_apply_diff(d);
                st.hists.diff_apply.record(t0.elapsed().as_nanos() as u64);
                if st.tracer.enabled() {
                    st.tracer.emit(EventKind::DiffApply {
                        page: d.page.0,
                        bytes: d.payload_bytes() as u32,
                    });
                }
            }
            serve_waiting_fetches(st);
        }
        Payload::BarrierArrive {
            episode,
            vt,
            own_wns,
        } => {
            barrier_manager_arrive(
                st,
                Arrival {
                    proc: from,
                    episode,
                    vt,
                    own_wns,
                },
            );
        }
        Payload::BarrierRelease { episode, vt, wns } => {
            st.deposit_release(ReleaseData { episode, vt, wns });
        }
        Payload::PageReq {
            page,
            needed,
            req_id,
        } => {
            if st.pt.is_home(page) && st.pt.home_satisfies(page, &needed) {
                // Serving a page is an Arc bump: the home's next write
                // copy-on-writes, leaving the served buffer untouched.
                let h = st.pt.home_meta(page);
                let version = h.version.clone();
                let bytes = h.copy.share();
                st.send(
                    from,
                    Payload::PageReply {
                        page,
                        req_id,
                        version,
                        bytes,
                    },
                );
            } else {
                assert!(
                    st.pt.is_home(page),
                    "PageReq for page {page} not homed here"
                );
                st.waiting_fetches.push((from, page, needed, req_id));
            }
        }
        Payload::PageReply {
            req_id,
            version,
            bytes,
            ..
        } => {
            st.deposit_page(req_id, version, bytes);
        }
        Payload::RecLogReq => {
            let reply = build_rec_log_reply(st, from);
            st.send(from, reply);
        }
        Payload::RecPageReq { page, tckp } => {
            serve_rec_page(st, from, page, tckp);
        }
        Payload::RecDiffReq { page } => {
            // Cloning a diff log is cheap now: each entry is an Arc bump
            // plus a vector-clock clone, never a run-payload copy.
            let entries = st
                .ft
                .as_ref()
                .and_then(|ft| ft.logs.diffs.get(&page).cloned())
                .unwrap_or_default();
            st.send(from, Payload::RecDiffReply { page, entries });
        }
        // Replies to *our* recovery arriving after we already went live are
        // stale duplicates.
        Payload::RecLogReply { .. }
        | Payload::RecPageReply { .. }
        | Payload::RecDiffReply { .. } => {}
    }
}

/// Replay messages that were deferred because they referenced pages this
/// node had not allocated yet (called after every allocation).
pub(crate) fn drain_unalloc(st: &mut NodeState) {
    if st.pending_unalloc.is_empty() {
        return;
    }
    let pending = std::mem::take(&mut st.pending_unalloc);
    for (from, payload) in pending {
        handle_msg(st, from, payload);
    }
}

/// A crashed peer restarted: re-issue lost forwards and retransmit whatever
/// request our application thread is blocked on against that peer.
pub(crate) fn handle_node_up(st: &mut NodeState, node: ProcId) {
    for a in st.lock_mgr.on_node_up(node) {
        dispatch_lock_action(st, a);
    }
    match &st.wait {
        WaitSlot::Page {
            page,
            req_id,
            home,
            needed,
            reply: None,
        } if *home == node => {
            let (page, req_id, needed) = (*page, *req_id, needed.clone());
            st.send(
                node,
                Payload::PageReq {
                    page,
                    needed,
                    req_id,
                },
            );
        }
        WaitSlot::Lock {
            lock,
            acq_seq,
            manager,
            req_vt,
            grant: None,
        } if *manager == node => {
            let (lock, acq_seq, vt) = (*lock, *acq_seq, req_vt.clone());
            st.send(node, Payload::LockAcq { lock, acq_seq, vt });
        }
        WaitSlot::Barrier {
            episode,
            arrive_vt,
            own_wns,
            release: None,
        } if node == 0 => {
            let (episode, vt, own_wns) = (*episode, arrive_vt.clone(), own_wns.clone());
            st.send(
                node,
                Payload::BarrierArrive {
                    episode,
                    vt,
                    own_wns,
                },
            );
        }
        _ => {}
    }
}

/// The service loop: one per node, owns message receipt.
pub(crate) fn service_loop(shared: Arc<NodeShared>) {
    let ep = Arc::clone(&shared.state.lock().ep);
    loop {
        {
            let st = shared.state.lock();
            if st.shutdown {
                return;
            }
        }
        let Some(ev) = ep.recv_timeout(Duration::from_millis(10)) else {
            continue;
        };
        let mut st = shared.state.lock();
        let t0 = Instant::now();
        match ev {
            Event::NodeUp { node } => match st.mode {
                Mode::Normal => handle_node_up(&mut st, node),
                // Single-fault model: no other node can restart while we are
                // crashed or recovering.
                Mode::Crashed | Mode::Recovering => {}
            },
            Event::Msg { from, msg } => {
                if st.mode != Mode::Crashed {
                    if let (Some(p), true) = (&msg.piggy, st.ft.is_some()) {
                        st.ft.as_mut().unwrap().absorb_piggy(from, p);
                    }
                }
                match st.mode {
                    Mode::Crashed => {}
                    Mode::Recovering => match msg.payload {
                        Payload::RecLogReply { .. }
                        | Payload::RecPageReply { .. }
                        | Payload::RecDiffReply { .. } => {
                            st.rec_inbox.push((from, msg.payload));
                        }
                        other => st.backlog.push((from, other)),
                    },
                    Mode::Normal => handle_msg(&mut st, from, msg.payload),
                }
            }
        }
        st.protocol_time_svc += t0.elapsed();
        drop(st);
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtConfig;
    use crate::ft::FtState;
    use dsm_net::Fabric;
    use dsm_storage::{DiskModel, StableStore};

    fn test_state(me: ProcId, n: usize, ft: bool) -> (NodeState, Vec<Arc<Endpoint<Msg>>>) {
        let (_fabric, endpoints) = Fabric::<Msg>::new(n);
        let mut eps: Vec<Arc<Endpoint<Msg>>> = endpoints.into_iter().map(Arc::new).collect();
        let ep = Arc::clone(&eps[me]);
        let store = Arc::new(StableStore::new(DiskModel::instant()));
        let st = NodeState {
            me,
            n,
            page_size: 256,
            mode: Mode::Normal,
            pt: PageTable::new(me, n, 256),
            vt: VectorClock::zero(n),
            wn_table: WnTable::new(),
            lock_mgr: LockManagerTable::new(me),
            bar_mgr: (me == 0).then(|| BarrierManager::new(n)),
            held: Default::default(),
            tenure: Default::default(),
            last_release_vt: Default::default(),
            pending_grants: Default::default(),
            lock_chain_info: Default::default(),
            wait: WaitSlot::None,
            rec_inbox: Vec::new(),
            backlog: Vec::new(),
            pending_unalloc: Vec::new(),
            waiting_fetches: Vec::new(),
            acq_seq_next: 0,
            bar_episode: 0,
            req_id_next: 0,
            wn_since_barrier: Vec::new(),
            shared_bytes: 0,
            alloc_cursor: 0,
            ft: ft.then(|| FtState::new(me, n, FtConfig::default(), store)),
            replay: None,
            protocol_time_svc: Duration::ZERO,
            shutdown: false,
            ops: 0,
            crash_queue: Vec::new(),
            recoveries: 0,
            ep,
            breakdown_acc: Default::default(),
            tracer: NodeTracer::disabled(),
            hists: Default::default(),
        };
        eps.remove(me);
        (st, eps)
    }

    #[test]
    fn forward_behind_released_tenure_grants_immediately() {
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, true)); // our acquisition #4, released
        st.last_release_vt
            .insert(9, VectorClock::from_vec(vec![2, 0, 0]));
        handle_forward(&mut st, 9, 1, 0, 10, 4, VectorClock::zero(3));
        assert!(
            st.pending_grants.is_empty(),
            "released tenure must grant now"
        );
    }

    #[test]
    fn forward_behind_unreleased_tenure_queues() {
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, false)); // still holding acquisition #4
        st.held.insert(9);
        handle_forward(&mut st, 9, 1, 0, 10, 4, VectorClock::zero(3));
        assert_eq!(st.pending_grants[&9].len(), 1);
        assert_eq!(st.pending_grants[&9][0].pred_acq, 4);
    }

    #[test]
    fn forward_behind_in_flight_acquire_queues() {
        // The grant for our own acquisition #5 has not arrived yet, but the
        // manager already chained a requester behind it.
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, true));
        st.wait = WaitSlot::Lock {
            lock: 9,
            acq_seq: 5,
            manager: 1,
            req_vt: VectorClock::zero(3),
            grant: None,
        };
        handle_forward(&mut st, 9, 2, 0, 11, 5, VectorClock::zero(3));
        assert_eq!(
            st.pending_grants[&9].len(),
            1,
            "in-flight tenure must queue"
        );
    }

    #[test]
    fn chain_start_forward_always_grants() {
        let (mut st, _eps) = test_state(0, 3, false);
        handle_forward(&mut st, 9, 1, 0, 1, u64::MAX, VectorClock::zero(3));
        assert!(st.pending_grants.is_empty());
    }

    #[test]
    fn forward_retransmission_replays_logged_grant() {
        let (mut st, _eps) = test_state(0, 3, true);
        st.last_release_vt
            .insert(9, VectorClock::from_vec(vec![3, 0, 0]));
        st.tenure.insert(9, (0, true));
        // First forward: grants and logs.
        handle_forward(&mut st, 9, 1, 7, 10, 0, VectorClock::zero(3));
        let logged = st
            .ft
            .as_ref()
            .unwrap()
            .logs
            .find_rel(1, 7)
            .cloned()
            .unwrap();
        // Retransmission (zero-length vt, as after a crash): identical grant
        // from the log, no new rel entry.
        handle_forward(&mut st, 9, 1, 7, 10, 0, VectorClock::zero(0));
        let ft = st.ft.as_ref().unwrap();
        assert_eq!(ft.logs.rel[1].len(), 1);
        assert_eq!(ft.logs.find_rel(1, 7).unwrap(), &logged);
    }

    #[test]
    fn deposits_match_only_the_waited_for_slot() {
        let (mut st, _eps) = test_state(1, 3, false);
        st.wait = WaitSlot::Page {
            page: PageId(3),
            req_id: 42,
            home: 0,
            needed: VectorClock::zero(3),
            reply: None,
        };
        // Stale reply for an older request id is dropped.
        st.deposit_page(41, VectorClock::zero(3), vec![0; 256].into());
        if let WaitSlot::Page { reply, .. } = &st.wait {
            assert!(reply.is_none());
        }
        st.deposit_page(42, VectorClock::zero(3), vec![0; 256].into());
        if let WaitSlot::Page { reply, .. } = &st.wait {
            assert!(reply.is_some());
        } else {
            panic!("slot vanished");
        }
    }

    #[test]
    fn piggyback_is_attached_only_when_it_carries_news() {
        let (mut st, _eps) = test_state(0, 2, true);
        // Fresh FT state advertises checkpoint 0 once.
        let first = st.make_piggy(1, false);
        assert!(first.is_some());
        let second = st.make_piggy(1, false);
        assert!(second.is_none(), "no news: no piggyback");
        // A gossip request always produces one (even without news) when the
        // table would be empty it still returns None though:
        let gossip = st.make_piggy(1, true);
        assert!(gossip.is_none(), "empty gossip table carries no news");
        // After a checkpoint-sequence bump, news flows again.
        st.ft.as_mut().unwrap().ckpt_seq = 1;
        assert!(st.make_piggy(1, false).is_some());
    }

    #[test]
    fn messages_for_unallocated_pages_are_deferred() {
        let (mut st, _eps) = test_state(0, 2, false);
        handle_msg(
            &mut st,
            1,
            Payload::PageReq {
                page: PageId(5),
                needed: VectorClock::zero(2),
                req_id: 0,
            },
        );
        assert_eq!(st.pending_unalloc.len(), 1);
        for _ in 0..6 {
            st.pt.add_page(0);
        }
        drain_unalloc(&mut st);
        assert!(st.pending_unalloc.is_empty());
        // The fetch is now answered (page 5 exists, zero version satisfies).
        assert!(st.waiting_fetches.is_empty());
    }
}
