//! Per-node runtime state and the protocol service loop.
//!
//! Each node is a pair of threads sharing a [`NodeState`] behind a mutex:
//! the *application* thread runs user code and blocks on a condition
//! variable when an operation needs remote data; the *service* thread
//! receives fabric messages, advances the protocol, and notifies waiters.
//! This mirrors the paper's setup, where VMMC handlers service remote
//! requests while the application computes.
//!
//! The big state lock is *not* the only lock (see DESIGN.md "Hot path").
//! Home-page state lives in the sharded [`hlrc::HomeStore`] and
//! lock/barrier-manager state in the small [`SyncState`] lock, so the
//! service loop serves `PageReq`/`PageBatchReq`/`DiffBatch`/`LockAcq`
//! traffic on a fast path that never touches the big lock while the
//! application computes under it. The big lock keeps the rarely-contended
//! rest: mode, waits, FT logs, recovery state. Lock order is big → sync →
//! shard; shard locks are leaves.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsm_member::{Action as MemberAction, Detector};
use dsm_net::{Endpoint, Event};
use dsm_page::{Diff, IntervalSeq, PageId, ProcId, VectorClock};
use dsm_trace::{EventKind, Histogram, LatencyHists, NodeTracer};
use hlrc::barrier::{Arrival, ArriveOutcome, BarrierManager};
use hlrc::locks::{AcqReq, LockAction, LockManagerTable};
use hlrc::{
    ApplyOutcome, FetchOutcome, HomeStore, LockId, PageState, PageTable, WaitingFetch, WnTable,
    WriteNotice,
};
use parking_lot::{Condvar, Mutex};

use crate::ft::logs::{MgrBarEntry, RelEntry};
use crate::ft::recovery::ReplayState;
use crate::ft::FtState;
use crate::msg::{Msg, Payload, Piggy};

/// Panic payload used to simulate a fail-stop crash of the application
/// thread at a DSM operation boundary.
#[derive(Debug)]
pub struct CrashSignal;

/// Node liveness as seen by its own runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Normal,
    Crashed,
    Recovering,
}

impl Mode {
    /// Encoding for the lock-free [`NodeState::mode_flag`] mirror.
    pub(crate) fn flag(self) -> u8 {
        match self {
            Mode::Normal => 0,
            Mode::Crashed => 1,
            Mode::Recovering => 2,
        }
    }
}

/// [`Mode::Normal`] as seen through the atomic mirror.
pub(crate) const MODE_NORMAL: u8 = 0;

/// Lock-manager and barrier-manager state, behind its own small lock.
///
/// Fast-path `LockAcq` routing (manager forwards to the chain tail) only
/// needs this state, so the service thread can route forwards while the
/// application holds the big lock. The application thread takes this lock
/// *after* the big lock (big → sync); neither is ever taken while a
/// home-store shard lock is held.
pub(crate) struct SyncState {
    pub lock_mgr: LockManagerTable,
    pub bar_mgr: Option<BarrierManager>,
}

/// The membership/failure-detection runtime of one node: the heartbeat
/// [`Detector`] plus its latency samples, each behind its own small lock so
/// that the ticker thread and the service thread drive the detector without
/// ever touching the big state lock (heartbeat processing must not stall
/// behind a computing application thread, or peers falsely suspect us).
/// The sample histograms are folded into the node's [`LatencyHists`] at
/// teardown. Lock order: never hold `det` while taking the big lock is
/// *allowed* (big → det at the crash path), so action application always
/// drops the detector guard first.
pub(crate) struct MemberRuntime {
    pub det: Mutex<Detector>,
    /// Heartbeat round-trip samples (ns).
    pub rtt: Mutex<Histogram>,
    /// First-suspicion-to-confirmed-down samples (ns).
    pub susp: Mutex<Histogram>,
}

/// A prefetch batch entry: one invalidated remote page with a batched
/// fetch in flight to its home.
#[derive(Debug, Clone)]
pub(crate) struct PrefetchEntry {
    /// Correlation id of the `PageBatchReq` that covers this page.
    pub req_id: u64,
    /// The page's home (retransmission target on `NodeUp`).
    pub home: ProcId,
}

/// A lock grant in flight to the application thread.
#[derive(Debug, Clone)]
pub(crate) struct GrantData {
    pub lock: LockId,
    pub acq_seq: u64,
    pub gen: u64,
    pub granter: ProcId,
    pub vt: VectorClock,
    pub wns: Vec<WriteNotice>,
}

/// A barrier release in flight to the application thread.
#[derive(Debug, Clone)]
pub(crate) struct ReleaseData {
    pub episode: u64,
    pub vt: VectorClock,
    pub wns: Vec<WriteNotice>,
}

/// What the application thread is currently blocked on.
#[derive(Debug)]
pub(crate) enum WaitSlot {
    None,
    Page {
        page: PageId,
        req_id: u64,
        home: ProcId,
        needed: VectorClock,
        /// The shared page buffer from the reply, installed without copying.
        reply: Option<(VectorClock, Arc<[u8]>)>,
    },
    Lock {
        lock: LockId,
        acq_seq: u64,
        manager: ProcId,
        req_vt: VectorClock,
        grant: Option<GrantData>,
    },
    Barrier {
        episode: u64,
        arrive_vt: VectorClock,
        own_wns: Vec<WriteNotice>,
        release: Option<ReleaseData>,
    },
}

/// A forwarded acquire queued while this node still holds the lock.
#[derive(Debug, Clone)]
pub(crate) struct PendingGrant {
    pub requester: ProcId,
    pub acq_seq: u64,
    pub gen: u64,
    /// Our tenure (by our own acquisition number) this grant chains behind.
    pub pred_acq: u64,
    pub req_vt: VectorClock,
}

/// The mutable state of one node.
pub(crate) struct NodeState {
    pub me: ProcId,
    pub n: usize,
    pub page_size: usize,
    pub mode: Mode,
    /// Lock-free mirror of `mode` for the service loop's fast path. Only
    /// [`NodeState::set_mode`] writes it (always under the big lock).
    pub mode_flag: Arc<AtomicU8>,
    pub pt: PageTable,
    pub vt: VectorClock,
    pub wn_table: WnTable,
    /// Lock- and barrier-manager state (its own small lock; big → sync).
    pub sync: Arc<Mutex<SyncState>>,
    pub held: HashSet<LockId>,
    /// Latest tenure per lock: (our own acquisition sequence number,
    /// released?). Deterministic local knowledge, reconstructed exactly by
    /// checkpoint restore plus replay — the basis of forward gating.
    pub tenure: HashMap<LockId, (u64, bool)>,
    /// Grant generation of the latest tenure per lock (the manager-issued
    /// edge number that granted it). Reported to a recovering manager so
    /// it can order delivered tenures; checkpointed with `tenure`. Absent
    /// (treated as 0) only for self-granted replayed tenures, whose
    /// generation died with the old manager incarnation — an underestimate
    /// is safe because generations are monotone along the chain.
    pub tenure_gen: HashMap<LockId, u64>,
    pub last_release_vt: HashMap<LockId, VectorClock>,
    pub pending_grants: HashMap<LockId, Vec<PendingGrant>>,
    /// Highest grant generation this node issued or queued, per lock, with
    /// the grantee and the grantee's acquisition sequence number (reported
    /// to a recovering manager for chain rebuild).
    pub lock_chain_info: HashMap<LockId, (u64, ProcId, u64)>,
    pub wait: WaitSlot,
    /// Recovery replies deposited by the service thread while recovering.
    pub rec_inbox: Vec<(ProcId, Payload)>,
    /// Non-recovery messages deferred while recovering.
    pub backlog: Vec<(ProcId, Payload)>,
    /// Messages referencing pages this node has not allocated yet (SPMD
    /// allocation is local, so an eager peer can request a page before our
    /// application thread reaches the corresponding alloc). Replayed by
    /// [`crate::Process::alloc`].
    pub pending_unalloc: Vec<(ProcId, Payload)>,
    /// Remote pages with a batched prefetch in flight (issued right after
    /// an acquire or barrier invalidated them). A first touch of one of
    /// these waits for the batch reply instead of sending its own
    /// `PageReq`.
    pub prefetch: HashMap<PageId, PrefetchEntry>,
    pub acq_seq_next: u64,
    pub bar_episode: u64,
    pub req_id_next: u64,
    /// Own write notices since the last barrier arrival.
    pub wn_since_barrier: Vec<WriteNotice>,
    pub shared_bytes: u64,
    /// Allocation cursor (page index of the next allocation).
    pub alloc_cursor: u32,
    pub ft: Option<FtState>,
    pub replay: Option<ReplayState>,
    /// Service-thread protocol handler time (all message kinds).
    pub protocol_time_svc: Duration,
    /// Service-thread handler time attributed per message kind (fast-path
    /// time is folded in when the service loop exits).
    pub svc_time_by_kind: HashMap<&'static str, Duration>,
    pub shutdown: bool,
    /// DSM operations executed (crash-injection clock).
    pub ops: u64,
    /// Scripted failures (ascending op counts).
    pub crash_queue: Vec<u64>,
    pub recoveries: u64,
    pub ep: Arc<Endpoint<Msg>>,
    /// Membership/failure-detection runtime; `None` keeps orchestrated
    /// recovery (perfect-knowledge `NodeUp` broadcasts).
    pub member: Option<Arc<MemberRuntime>>,
    /// Request/diff retransmission timeout; `Some` switches the retry layer
    /// on (set together with `member`).
    pub retry_after: Option<Duration>,
    /// Requests and diff batches retransmitted after a timeout.
    pub retransmits: u64,
    /// Duplicate or stale deliveries suppressed by the idempotency gates
    /// (grant/release/ack dedup, superseded prefetch replies).
    pub dup_suppressed: u64,
    /// Stop-and-wait diff outbox, indexed by home: queued `(seq, batch)`
    /// pairs, the front one in flight. Keeping at most one unacknowledged
    /// batch per home preserves first-delivery order under loss and
    /// reordering — the home's per-writer version gate makes *re*-delivery
    /// idempotent but would silently discard an older batch arriving after
    /// a newer one. Unused (empty) when the retry layer is off.
    pub diff_outbox: Vec<VecDeque<(u64, Vec<Arc<Diff>>)>>,
    /// Per home: `(seq, last transmission)` of the in-flight batch.
    pub diff_inflight: Vec<Option<(u64, Instant)>>,
    /// Last stop-and-wait sequence number issued (0 is reserved for the
    /// legacy no-ack path).
    pub diff_seq_next: u64,
    /// Per page: the interval seq of the last diff *we* published for it.
    /// With the outbox on, our own diff may still be queued locally when we
    /// re-fetch the page, and the invalidation-driven `needed` vector only
    /// covers other writers — so fetches fold this in to keep the home from
    /// serving a copy that misses our own write (the legacy path gets the
    /// same guarantee from per-channel FIFO order). Maintained only when the
    /// retry layer is on; cleared on crash (replay repopulates it).
    pub own_diff_seq: HashMap<PageId, IntervalSeq>,
    /// Breakdown accumulated across this node's incarnations.
    pub breakdown_acc: crate::stats::Breakdown,
    /// Protocol event tracer (a no-op handle when tracing is disabled).
    pub tracer: NodeTracer,
    /// Latency histograms accumulated across this node's incarnations.
    pub hists: LatencyHists,
    /// Flow id of the message currently being handled (0 outside a
    /// handler). Every message [`NodeState::send`] emits while a handler
    /// runs is causally parented on this flow, which is what lets the
    /// exporter stitch request → forward → grant chains across nodes.
    pub cur_flow: u64,
    /// Test-only (set via `ClusterConfig::inject_stale_apply`): one-shot
    /// trigger that re-emits a `DiffApply` event with an already-applied
    /// interval, so tests can prove the invariant monitor catches it.
    pub inject_stale_apply: Option<Arc<std::sync::atomic::AtomicBool>>,
}

/// Everything shared between a node's threads.
pub(crate) struct NodeShared {
    pub state: Mutex<NodeState>,
    pub cv: Condvar,
    pub me: ProcId,
    pub n: usize,
}

impl NodeState {
    /// Change the node's mode, keeping the fast path's atomic mirror in
    /// step. Every transition happens under the big lock; the store-then-
    /// quiesce fencing on the crash path is what makes the mirror safe to
    /// read without it (see DESIGN.md).
    pub(crate) fn set_mode(&mut self, m: Mode) {
        self.mode = m;
        self.mode_flag.store(m.flag(), Ordering::SeqCst);
    }

    /// Send a protocol message with the FT piggyback attached (when it
    /// carries news: a checkpoint timestamp the destination hasn't seen,
    /// `p0.v` hints, or — on barrier releases — the gossip table).
    pub(crate) fn send(&mut self, to: ProcId, payload: Payload) {
        let gossip = matches!(payload, Payload::BarrierRelease { .. });
        let piggy = self.make_piggy(to, gossip);
        let ep = Arc::clone(&self.ep);
        ep.send(to, Msg::with_parent(payload, piggy, self.cur_flow));
    }

    fn make_piggy(&mut self, to: ProcId, gossip: bool) -> Option<Piggy> {
        let me = self.me;
        let homed = if self.pt.is_empty() {
            Vec::new()
        } else {
            self.pt.homed_pages()
        };
        let ft = self.ft.as_mut()?;
        let mut p0v = Vec::new();
        if !homed.is_empty() && !ft.retained.is_empty() {
            let batch = ft.cfg.piggy_page_batch;
            let start = ft.piggy_cursor % homed.len();
            for k in 0..homed.len() {
                if p0v.len() >= batch {
                    break;
                }
                let page = homed[(start + k) % homed.len()];
                ft.piggy_cursor = (start + k + 1) % homed.len();
                if !self.pt.home_writers_contain(page, to) {
                    continue;
                }
                if let Some(v) = ft.cover_version(me, page) {
                    let bound = v.get(to);
                    if bound > 0 && ft.p0v_sent.get(&(page, to)).copied().unwrap_or(0) < bound {
                        ft.p0v_sent.insert((page, to), bound);
                        p0v.push((page, bound));
                    }
                }
            }
        }
        let news = ft.piggy_sent[to] != ft.ckpt_seq;
        let table = if gossip {
            ft.gossip_table(me)
        } else {
            Vec::new()
        };
        if !news && p0v.is_empty() && table.is_empty() {
            return None;
        }
        ft.piggy_sent[to] = ft.ckpt_seq;
        Some(Piggy {
            tckp: ft.last_ckpt_vt.clone(),
            ckpt_seq: ft.ckpt_seq,
            ckpt_episode: ft.last_ckpt_episode,
            p0v,
            table,
        })
    }

    /// Deposit a grant for the blocked application thread.
    pub(crate) fn deposit_grant(&mut self, g: GrantData) {
        if let WaitSlot::Lock { acq_seq, grant, .. } = &mut self.wait {
            if *acq_seq == g.acq_seq && grant.is_none() {
                *grant = Some(g);
                return;
            }
        }
        // Anything else is a stale retransmission: drop.
        self.dup_suppressed += 1;
    }

    /// Deposit a barrier release.
    pub(crate) fn deposit_release(&mut self, r: ReleaseData) {
        if let WaitSlot::Barrier {
            episode, release, ..
        } = &mut self.wait
        {
            if *episode == r.episode && release.is_none() {
                *release = Some(r);
                return;
            }
        }
        self.dup_suppressed += 1;
    }

    /// Deposit a page reply (the shared buffer, never a copy). Returns the
    /// reply back when no blocked fetch consumed it — the caller then
    /// offers it to the prefetch tracker (a home answers a parked batched
    /// page with an individual `PageReply` carrying the batch's `req_id`).
    pub(crate) fn deposit_page(
        &mut self,
        req_id: u64,
        version: VectorClock,
        bytes: Arc<[u8]>,
    ) -> Option<(VectorClock, Arc<[u8]>)> {
        if let WaitSlot::Page {
            req_id: want,
            reply,
            ..
        } = &mut self.wait
        {
            if *want == req_id && reply.is_none() {
                *reply = Some((version, bytes));
                return None;
            }
        }
        Some((version, bytes))
    }
}

/// End the current interval: turn twins into diffs, publish write notices,
/// send diffs to remote homes, and (FT) log everything.
///
/// Returns (protocol time, logging time) spent.
pub(crate) fn end_interval(st: &mut NodeState) -> (Duration, Duration) {
    if st.pt.written_pages().is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let t0 = Instant::now();
    let me = st.me;
    let iv = st.vt.tick(me);
    let diffs: Vec<Arc<Diff>> = st.pt.end_interval(iv).into_iter().map(Arc::new).collect();
    st.hists.diff_create.record(t0.elapsed().as_nanos() as u64);
    if diffs.is_empty() {
        // Twins existed but no word actually changed: nothing to publish.
        return (t0.elapsed(), Duration::ZERO);
    }
    let pages: Vec<PageId> = diffs.iter().map(|d| d.page).collect();
    if st.tracer.enabled() {
        for d in &diffs {
            st.tracer.emit(EventKind::DiffCreate {
                page: d.page.0,
                bytes: d.payload_bytes() as u32,
            });
        }
    }
    st.wn_table.insert_parts(iv, pages.clone());
    st.wn_since_barrier.push(WriteNotice {
        interval: iv,
        pages: pages.clone(),
    });

    // Group diffs for remote homes (reference bumps, not payload copies).
    let mut per_home: HashMap<ProcId, Vec<Arc<Diff>>> = HashMap::new();
    for d in &diffs {
        let home = st.pt.home_of(d.page);
        if home != me {
            per_home.entry(home).or_default().push(Arc::clone(d));
        }
    }
    let proto = t0.elapsed();

    // FT: log the write notice and every diff (including homed pages') as
    // one batch. The log entries share the diff objects just grouped into
    // the outgoing batches — logging costs one Arc bump plus a timestamp
    // per diff, never a payload copy.
    let t1 = Instant::now();
    if let Some(ft) = st.ft.as_mut() {
        let t = st.vt.clone();
        ft.logs.log_interval(iv.seq, pages, &t, &diffs);
    }
    let logging = t1.elapsed();

    // One coalesced DiffBatch per remote home: the release-side flush is
    // one message per home regardless of how many pages the interval wrote.
    // Deterministic order so the piggyback state advances identically on
    // replay.
    let mut per_home: Vec<_> = per_home.into_iter().collect();
    per_home.sort_unstable_by_key(|(home, _)| *home);
    for (home, batch) in per_home {
        send_diff_batch(st, home, batch);
    }
    (proto, logging)
}

/// Send one coalesced diff batch to a remote home. With the retry layer on
/// the batch enters the per-home stop-and-wait outbox; otherwise it goes
/// straight out with `seq: 0` (no ack — the reliable-fabric hot path is
/// unchanged).
pub(crate) fn send_diff_batch(st: &mut NodeState, home: ProcId, batch: Vec<Arc<Diff>>) {
    if st.retry_after.is_none() {
        st.send(
            home,
            Payload::DiffBatch {
                seq: 0,
                diffs: batch,
            },
        );
        return;
    }
    st.diff_seq_next += 1;
    let seq = st.diff_seq_next;
    for d in &batch {
        st.own_diff_seq.insert(d.page, d.interval.seq);
    }
    st.diff_outbox[home].push_back((seq, batch));
    pump_diff_outbox(st, home);
}

/// The `needed` version a fetch of `page` should carry: the accumulated
/// invalidation vector plus — when the retry layer is on — the seq of our
/// own last published diff for the page (see [`NodeState::own_diff_seq`]).
pub(crate) fn fetch_needed(st: &NodeState, page: PageId, mut needed: VectorClock) -> VectorClock {
    if st.retry_after.is_some() {
        if let Some(&seq) = st.own_diff_seq.get(&page) {
            if seq > needed.get(st.me) {
                needed.set(st.me, seq);
            }
        }
    }
    needed
}

/// Transmit the head of `home`'s diff outbox unless a batch is already in
/// flight there (stop-and-wait: the next batch goes only after the ack).
pub(crate) fn pump_diff_outbox(st: &mut NodeState, home: ProcId) {
    if st.diff_inflight[home].is_some() {
        return;
    }
    let Some((seq, batch)) = st.diff_outbox[home].front() else {
        return;
    };
    let (seq, batch) = (*seq, batch.clone());
    st.diff_inflight[home] = Some((seq, Instant::now()));
    st.send(home, Payload::DiffBatch { seq, diffs: batch });
}

/// Retransmit every in-flight diff batch older than the retry timeout
/// (driven by the membership ticker and by the application thread whenever
/// one of its own waits times out). Re-delivery is idempotent at the home
/// (per-writer version gate); the duplicate ack is dropped by seq.
pub(crate) fn retransmit_stale_diffs(st: &mut NodeState) {
    let Some(after) = st.retry_after else {
        return;
    };
    for home in 0..st.n {
        let Some((seq, sent)) = st.diff_inflight[home] else {
            continue;
        };
        if sent.elapsed() < after {
            continue;
        }
        let batch = st.diff_outbox[home]
            .front()
            .expect("in-flight batch without an outbox head")
            .1
            .clone();
        st.diff_inflight[home] = Some((seq, Instant::now()));
        st.retransmits += 1;
        if st.tracer.enabled() {
            st.tracer.emit(EventKind::Retransmit {
                kind: "DiffBatch",
                to: home,
            });
        }
        st.send(home, Payload::DiffBatch { seq, diffs: batch });
    }
}

/// Retransmit whatever request the application thread is blocked on (called
/// by the wait loop after `retry_after` of silence). Returns 1 when
/// something was resent. Every receiver path is idempotent under
/// duplication: requests dedup by `req_id`/`acq_seq`/`episode`, grants
/// replay from the release log, and installs are version-gated.
pub(crate) fn retransmit_wait_slot(st: &mut NodeState) -> u64 {
    let me = st.me;
    let (to, payload, kind) = match &st.wait {
        WaitSlot::Page {
            page,
            req_id,
            home,
            needed,
            reply: None,
        } if *home != me => (
            *home,
            Payload::PageReq {
                page: *page,
                needed: needed.clone(),
                req_id: *req_id,
            },
            "PageReq",
        ),
        WaitSlot::Lock {
            lock,
            acq_seq,
            manager,
            req_vt,
            grant: None,
        } if *manager != me => (
            *manager,
            Payload::LockAcq {
                lock: *lock,
                acq_seq: *acq_seq,
                vt: req_vt.clone(),
            },
            "LockAcq",
        ),
        WaitSlot::Lock {
            lock,
            acq_seq,
            req_vt,
            grant: None,
            ..
        } => {
            // We are the manager: re-run the request through the manager
            // table, which dedups by `acq_seq` and re-forwards the identical
            // chain action (the grant then replays from the granter's log).
            let (lock, acq_seq, vt) = (*lock, *acq_seq, req_vt.clone());
            st.retransmits += 1;
            if st.tracer.enabled() {
                st.tracer.emit(EventKind::Retransmit {
                    kind: "LockAcq",
                    to: me,
                });
            }
            let action = st.sync.lock().lock_mgr.on_request(
                lock,
                AcqReq {
                    requester: me,
                    acq_seq,
                    vt,
                },
            );
            if let Some(a) = action {
                dispatch_lock_action(st, a);
            }
            return 1;
        }
        WaitSlot::Barrier {
            episode,
            arrive_vt,
            own_wns,
            release: None,
        } if me != 0 => (
            0,
            Payload::BarrierArrive {
                episode: *episode,
                vt: arrive_vt.clone(),
                own_wns: own_wns.clone(),
            },
            "BarrierArrive",
        ),
        _ => return 0,
    };
    st.retransmits += 1;
    if st.tracer.enabled() {
        st.tracer.emit(EventKind::Retransmit { kind, to });
    }
    st.send(to, payload);
    1
}

/// Apply the actions a [`Detector`] produced. Must be called *without*
/// holding the detector lock (an `Up` action takes the big lock to drive
/// retransmissions). Sends go out as bare messages — membership traffic
/// never carries piggybacks and never enters the recovery backlog.
pub(crate) fn apply_member_actions(
    shared: &NodeShared,
    ep: &Endpoint<Msg>,
    tracer: &NodeTracer,
    mr: &MemberRuntime,
    actions: Vec<MemberAction>,
) {
    let mut suspects_traced: Vec<usize> = Vec::new();
    for a in actions {
        match a {
            MemberAction::Send { to, msg } => {
                if tracer.enabled() {
                    if let dsm_member::Wire::SuspectQuery { about } = msg {
                        if !suspects_traced.contains(&about) {
                            suspects_traced.push(about);
                            tracer.emit(EventKind::Suspect { node: about });
                        }
                    }
                }
                ep.send(to, Msg::bare(Payload::Member(msg)));
            }
            MemberAction::RttSample { ns } => mr.rtt.lock().record(ns),
            MemberAction::SuspicionLatency { ns } => mr.susp.lock().record(ns),
            MemberAction::Down { node, .. } => {
                if tracer.enabled() {
                    tracer.emit(EventKind::MemberDown { node });
                }
            }
            MemberAction::Up { node, .. } => {
                if tracer.enabled() {
                    tracer.emit(EventKind::MemberUp { node });
                }
                // The returned peer lost everything in flight to it:
                // retransmit blocked requests and in-flight prefetch batches
                // (same path orchestrated `NodeUp` events used to drive),
                // plus the in-flight diff batch, immediately.
                let mut st = shared.state.lock();
                if st.mode == Mode::Normal {
                    handle_node_up(&mut st, node);
                    if let Some((seq, _)) = st.diff_inflight[node] {
                        let batch = st.diff_outbox[node]
                            .front()
                            .expect("in-flight batch without an outbox head")
                            .1
                            .clone();
                        st.diff_inflight[node] = Some((seq, Instant::now()));
                        st.retransmits += 1;
                        st.send(node, Payload::DiffBatch { seq, diffs: batch });
                    }
                }
                drop(st);
                shared.cv.notify_all();
            }
        }
    }
}

/// Answer parked fetches that have become servable.
fn send_ready_fetches(st: &mut NodeState, ready: Vec<hlrc::ReadyFetch>) {
    for r in ready {
        st.send(
            r.from,
            Payload::PageReply {
                page: r.page,
                req_id: r.req_id,
                version: r.version,
                bytes: r.bytes,
            },
        );
    }
}

/// Drain every parked fetch the home store can now serve and answer it.
pub(crate) fn serve_waiting_fetches(st: &mut NodeState) {
    let ready = st.pt.home_store().drain_ready();
    send_ready_fetches(st, ready);
}

/// Apply the pending homed-page diffs whose creators had seen at most
/// `st.vt[me]` of our history (recovery replay ordering; see DESIGN.md).
pub(crate) fn apply_pending_home(st: &mut NodeState) {
    let Some(replay) = st.replay.as_mut() else {
        return;
    };
    if replay.pending_home.is_empty() {
        return;
    }
    let bound = st.vt.get(st.me);
    // `pending_home` is kept sorted in a linear extension of happens-before;
    // applying the eligible subset in order preserves same-word ordering.
    let mut rest = Vec::with_capacity(replay.pending_home.len());
    for e in replay.pending_home.drain(..) {
        if e.t.get(st.me) <= bound {
            let fresh = st.pt.home_apply_diff(&e.diff);
            if fresh && st.tracer.enabled() {
                st.tracer.emit(EventKind::DiffApply {
                    page: e.diff.page.0,
                    bytes: e.diff.payload_bytes() as u32,
                    writer: e.diff.interval.proc,
                    interval: e.diff.interval.seq as u64,
                });
            }
        } else {
            rest.push(e);
        }
    }
    replay.pending_home = rest;
    serve_waiting_fetches(st);
}

/// Test-only (armed via `ClusterConfig::inject_stale_apply`): re-emit the
/// `DiffApply` event for an already-applied diff, once, simulating a home
/// that applied a stale duplicate. The invariant monitor must catch it.
fn inject_stale_apply_if_armed(st: &mut NodeState, last: Option<&Diff>) {
    let Some(flag) = &st.inject_stale_apply else {
        return;
    };
    if !st.tracer.enabled() || !flag.swap(false, Ordering::Relaxed) {
        return;
    }
    if let Some(d) = last {
        st.tracer.emit(EventKind::DiffApply {
            page: d.page.0,
            bytes: d.payload_bytes() as u32,
            writer: d.interval.proc,
            interval: d.interval.seq as u64,
        });
    }
}

/// Produce a grant right now (the lock is free at this node).
pub(crate) fn grant_now(
    st: &mut NodeState,
    lock: LockId,
    requester: ProcId,
    acq_seq: u64,
    gen: u64,
    req_vt: VectorClock,
) {
    let n = st.n;
    let req_vt = if req_vt.is_empty() {
        VectorClock::zero(n)
    } else {
        req_vt
    };
    let grant_vt = st
        .last_release_vt
        .get(&lock)
        .cloned()
        .unwrap_or_else(|| VectorClock::zero(n));
    let wns = st.wn_table.missing_between(&req_vt, &grant_vt);
    st.tracer.emit(EventKind::LockGrant {
        lock: lock as u32,
        to: requester,
        gen,
    });
    if let Some(ft) = st.ft.as_mut() {
        let mut t_after = req_vt.clone();
        t_after.join(&grant_vt);
        ft.logs.log_rel(
            requester,
            RelEntry {
                acq_seq,
                lock,
                gen,
                req_vt,
                t_after,
            },
        );
    }
    deliver_grant(
        st,
        requester,
        GrantData {
            lock,
            acq_seq,
            gen,
            granter: st.me,
            vt: grant_vt,
            wns,
        },
    );
}

fn deliver_grant(st: &mut NodeState, to: ProcId, g: GrantData) {
    if to == st.me {
        st.deposit_grant(g);
    } else {
        st.send(
            to,
            Payload::LockGrant {
                lock: g.lock,
                acq_seq: g.acq_seq,
                gen: g.gen,
                vt: g.vt,
                wns: g.wns,
            },
        );
    }
}

/// Handle a forwarded acquire at the granter (chain predecessor).
pub(crate) fn handle_forward(
    st: &mut NodeState,
    lock: LockId,
    requester: ProcId,
    acq_seq: u64,
    gen: u64,
    pred_acq: u64,
    req_vt: VectorClock,
) {
    // Track the newest grant this node is responsible for (manager
    // recovery).
    let e = st
        .lock_chain_info
        .entry(lock)
        .or_insert((gen, requester, acq_seq));
    if gen >= e.0 {
        *e = (gen, requester, acq_seq);
    }
    // Retransmission of a grant we already produced? Replay it from the
    // release log so the requester sees an identical grant.
    if let Some(ft) = st.ft.as_ref() {
        if let Some(entry) = ft.logs.find_rel(requester, acq_seq) {
            if entry.lock == lock {
                let g = GrantData {
                    lock,
                    acq_seq,
                    gen,
                    granter: st.me,
                    vt: entry.t_after.clone(),
                    wns: st.wn_table.missing_between(&entry.req_vt, &entry.t_after),
                };
                deliver_grant(st, requester, g);
                return;
            }
        }
    }
    // The forward chains behind our tenure whose own acquisition number is
    // `pred_acq`. If we have already released that tenure (or any newer
    // one), grant immediately from our latest release timestamp
    // (conservative: extra happens-before edges are harmless). Otherwise
    // the tenure is still in flight — possibly our grant for it has not
    // even arrived yet, since the manager advances the tail at forward
    // time — and the requester queues until our release.
    // A forward can reference our tenure before its own grant has reached
    // us (the manager advances the tail at forward time): if we are
    // currently blocked acquiring this very tenure, the requester queues
    // until our release.
    let in_flight = matches!(
        &st.wait,
        WaitSlot::Lock { lock: l, acq_seq: s, .. } if *l == lock && *s == pred_acq
    );
    let grantable = pred_acq == u64::MAX
        || (!in_flight
            && match st.tenure.get(&lock) {
                None => true, // no record: the tenure predates anything we know
                Some(&(ts, released)) => pred_acq < ts || (pred_acq == ts && released),
            });
    if !grantable {
        // One queued edge per acquisition: a retransmitted forward
        // replaces (or is subsumed by) the copy already queued, newest
        // generation winning, so retries can't grow the queue.
        let q = st.pending_grants.entry(lock).or_default();
        if q.iter()
            .any(|pg| pg.requester == requester && pg.acq_seq == acq_seq && pg.gen > gen)
        {
            return;
        }
        q.retain(|pg| !(pg.requester == requester && pg.acq_seq == acq_seq));
        q.push(PendingGrant {
            requester,
            acq_seq,
            gen,
            pred_acq,
            req_vt,
        });
        return;
    }
    grant_now(st, lock, requester, acq_seq, gen, req_vt);
}

/// Route a manager decision: either grant locally or forward.
pub(crate) fn dispatch_lock_action(st: &mut NodeState, a: LockAction) {
    if a.grant_from == st.me {
        handle_forward(
            st,
            a.lock,
            a.req.requester,
            a.req.acq_seq,
            a.gen,
            a.pred_acq,
            a.req.vt,
        );
    } else {
        st.send(
            a.grant_from,
            Payload::LockForward {
                lock: a.lock,
                requester: a.req.requester,
                acq_seq: a.req.acq_seq,
                gen: a.gen,
                pred_acq: a.pred_acq,
                vt: a.req.vt,
            },
        );
    }
}

/// Process a barrier arrival at the manager (local or remote).
pub(crate) fn barrier_manager_arrive(st: &mut NodeState, arrival: Arrival) {
    let outcome = {
        let mut sync = st.sync.lock();
        let mgr = sync
            .bar_mgr
            .as_mut()
            .expect("barrier arrival at non-manager");
        mgr.arrive(arrival)
    };
    match outcome {
        ArriveOutcome::Pending => {}
        ArriveOutcome::Complete(rel) => {
            if let Some(ft) = st.ft.as_mut() {
                ft.logs.log_bar_mgr(MgrBarEntry {
                    episode: rel.episode,
                    arrival_vts: rel.arrival_vts.clone(),
                    result_vt: rel.vt.clone(),
                });
            }
            let me = st.me;
            for p in 0..st.n {
                let data = ReleaseData {
                    episode: rel.episode,
                    vt: rel.vt.clone(),
                    wns: rel.per_proc_wns[p].clone(),
                };
                if p == me {
                    st.deposit_release(data);
                } else {
                    st.send(
                        p,
                        Payload::BarrierRelease {
                            episode: data.episode,
                            vt: data.vt,
                            wns: data.wns,
                        },
                    );
                }
            }
        }
        ArriveOutcome::Resend { proc, release } => {
            let data = ReleaseData {
                episode: release.episode,
                vt: release.vt.clone(),
                wns: release.per_proc_wns[proc].clone(),
            };
            if proc == st.me {
                st.deposit_release(data);
            } else {
                st.send(
                    proc,
                    Payload::BarrierRelease {
                        episode: data.episode,
                        vt: data.vt,
                        wns: data.wns,
                    },
                );
            }
        }
    }
}

/// Build the reply to a recovering peer's log-collection handshake.
///
/// For locks managed by the recovering node this is also the *chain
/// reset*: queued-but-ungranted forwards are discarded here, so the
/// recovered manager rebuilds the chain only from acquisitions that
/// materialized — our own delivered tenures and the grants in our release
/// log. The discarded edges' requesters are still blocked and re-drive
/// their acquisition (retry timer under chaos, NodeUp re-send otherwise),
/// re-entering the chain behind a real tenure. Without the reset, stale
/// pre-crash edges and the manager's fresh post-crash edges can order the
/// same two waiters both ways round and deadlock the chain. This leans on
/// the failure-detection synchrony assumption (max message delay is far
/// below the detection bound): by the time this handshake runs, no
/// pre-crash forward is still in flight toward us.
fn build_rec_log_reply(st: &mut NodeState, r: ProcId) -> Payload {
    let n = st.n;
    let managed_by_r = |lock: LockId| lock % n == r;
    st.pending_grants.retain(|&lock, _| !managed_by_r(lock));

    let ft = st.ft.as_ref().expect("recovery handshake without FT");
    let mut chains: HashMap<LockId, (u64, ProcId, u64, Option<ProcId>)> = HashMap::new();
    // Our newest delivered tenure per lock the recovering node manages.
    for (&lock, &(acq, _)) in &st.tenure {
        if managed_by_r(lock) {
            let gen = st.tenure_gen.get(&lock).copied().unwrap_or(0);
            let e = chains.entry(lock).or_insert((gen, st.me, acq, None));
            if gen >= e.0 {
                *e = (gen, st.me, acq, None);
            }
        }
    }
    // The newest grant per lock in our release log: issued, hence
    // replayable here if its delivery was lost.
    for (grantee, log) in ft.logs.rel.iter().enumerate() {
        for entry in log {
            if managed_by_r(entry.lock) {
                let e = chains.entry(entry.lock).or_insert((
                    entry.gen,
                    grantee,
                    entry.acq_seq,
                    Some(st.me),
                ));
                if entry.gen >= e.0 {
                    *e = (entry.gen, grantee, entry.acq_seq, Some(st.me));
                }
            }
        }
    }
    Payload::RecLogReply {
        wn: ft.logs.wn.clone(),
        rel_for_you: ft.logs.rel[r].clone(),
        acq_mirror: ft.logs.acq[r].clone(),
        bar: ft.logs.bar.clone(),
        bar_mgr: ft.logs.bar_mgr.clone(),
        lock_chains: chains
            .into_iter()
            .map(|(lock, (gen, grantee, acq, granter))| (lock, gen, grantee, acq, granter))
            .collect(),
        gen_floor: st
            .lock_chain_info
            .iter()
            .filter(|(&lock, _)| managed_by_r(lock))
            .map(|(&lock, &(gen, _, _))| (lock, gen))
            .collect(),
    }
}

/// Serve a maximal-starting-copy request: the newest retained checkpointed
/// copy whose version the requester's restart checkpoint covers, falling
/// back to the initial zero page.
fn serve_rec_page(st: &mut NodeState, from: ProcId, page: PageId, tckp: VectorClock) {
    assert!(
        st.pt.is_home(page),
        "RecPageReq for page {page} not homed here"
    );
    let n = st.n;
    let ft = st.ft.as_ref().expect("recovery without FT");
    let mut found: Option<(VectorClock, Arc<[u8]>)> = None;
    for rc in ft.retained.iter().rev() {
        let Some(v) = rc.versions.get(&page) else {
            continue;
        };
        if tckp.covers(v) {
            let blob = ft
                .store
                .read_segment(dsm_storage::SegmentKind::Checkpoint, rc.seq)
                .expect("retained checkpoint missing from stable storage");
            let ckpt =
                crate::ft::ckpt::CheckpointBlob::decode(&blob).expect("corrupt checkpoint blob");
            let (_, v, bytes) = ckpt
                .home_pages
                .into_iter()
                .find(|(p, _, _)| *p == page)
                .expect("page missing from checkpoint");
            found = Some((v, bytes.into()));
            break;
        }
    }
    let (version, bytes) =
        found.unwrap_or_else(|| (VectorClock::zero(n), vec![0u8; st.page_size].into()));
    st.send(
        from,
        Payload::RecPageReply {
            page,
            version,
            bytes,
        },
    );
}

/// The highest page a payload references, if any.
fn max_page(payload: &Payload) -> Option<PageId> {
    match payload {
        Payload::PageReq { page, .. }
        | Payload::RecPageReq { page, .. }
        | Payload::RecDiffReq { page } => Some(*page),
        Payload::DiffBatch { diffs, .. } => diffs.iter().map(|d| d.page).max(),
        Payload::PageBatchReq { pages, .. } => pages.iter().map(|(p, _)| *p).max(),
        _ => None,
    }
}

/// Install a page delivered by a prefetch batch (either in the batched
/// reply or as a straggler `PageReply` carrying the batch's `req_id`).
/// Superseded and overtaken replies are dropped: the page stays `Invalid`
/// and a later touch fetches fresh.
fn install_prefetched(
    st: &mut NodeState,
    page: PageId,
    req_id: u64,
    version: VectorClock,
    bytes: Arc<[u8]>,
) {
    match st.prefetch.get(&page) {
        Some(e) if e.req_id == req_id => {}
        // A reply from a superseded batch (or none in flight): drop it and
        // keep the entry for the current batch's reply.
        _ => {
            st.dup_suppressed += 1;
            return;
        }
    }
    st.prefetch.remove(&page);
    if st.pt.is_home(page) {
        return;
    }
    let m = st.pt.remote_meta(page);
    // A new invalidation may have overtaken the batch; install only when
    // the reply still covers everything the page is known to need.
    if m.state == PageState::Invalid && version.covers(&m.needed) {
        st.pt.install_fetch(page, bytes, &version);
        st.hists.fetch_copy.record(0);
    }
}

/// Eagerly batch-fetch the remote pages just invalidated by applied write
/// notices: one `PageBatchReq` per home covers every such page, turning N
/// page-miss round trips into one. Skipped during recovery replay (replay
/// fetches must stay individually deterministic).
pub(crate) fn issue_prefetch(st: &mut NodeState, invalidated: &[PageId]) {
    if st.replay.is_some() {
        return;
    }
    let mut seen = HashSet::new();
    let mut per_home: HashMap<ProcId, Vec<(PageId, VectorClock)>> = HashMap::new();
    for &page in invalidated {
        if !seen.insert(page) || st.pt.is_home(page) || st.prefetch.contains_key(&page) {
            continue;
        }
        let m = st.pt.remote_meta(page);
        if m.state != PageState::Invalid {
            continue;
        }
        let (home, needed) = (m.home, m.needed.clone());
        per_home
            .entry(home)
            .or_default()
            .push((page, fetch_needed(st, page, needed)));
    }
    // Deterministic send order (piggyback state advances per send).
    let mut per_home: Vec<_> = per_home.into_iter().collect();
    per_home.sort_unstable_by_key(|(home, _)| *home);
    for (home, pages) in per_home {
        let req_id = st.req_id_next;
        st.req_id_next += 1;
        st.hists.fetch_batch_pages.record(pages.len() as u64);
        for (p, _) in &pages {
            st.prefetch.insert(*p, PrefetchEntry { req_id, home });
        }
        st.send(home, Payload::PageBatchReq { pages, req_id });
    }
}

/// Handle one protocol message in normal mode.
pub(crate) fn handle_msg(st: &mut NodeState, from: ProcId, payload: Payload) {
    if let Some(p) = max_page(&payload) {
        if p.index() >= st.pt.len() {
            st.pending_unalloc.push((from, payload));
            return;
        }
    }
    match payload {
        Payload::LockAcq { lock, acq_seq, vt } => {
            debug_assert_eq!(lock % st.n, st.me, "lock request at wrong manager");
            let action = st.sync.lock().lock_mgr.on_request(
                lock,
                AcqReq {
                    requester: from,
                    acq_seq,
                    vt,
                },
            );
            if let Some(a) = action {
                dispatch_lock_action(st, a);
            }
        }
        Payload::LockForward {
            lock,
            requester,
            acq_seq,
            gen,
            pred_acq,
            vt,
        } => {
            handle_forward(st, lock, requester, acq_seq, gen, pred_acq, vt);
        }
        Payload::LockGrant {
            lock,
            acq_seq,
            gen,
            vt,
            wns,
        } => {
            st.deposit_grant(GrantData {
                lock,
                acq_seq,
                gen,
                granter: from,
                vt,
                wns,
            });
        }
        Payload::DiffBatch { seq, diffs } => {
            let home = st.pt.home_store();
            let mut ready = Vec::new();
            for d in &diffs {
                let t0 = Instant::now();
                let fresh = match home.apply_diff(d, || true) {
                    ApplyOutcome::Applied { fresh, ready: r } => {
                        ready.extend(r);
                        fresh
                    }
                    ApplyOutcome::NotHome => panic!("diff for page {} not homed here", d.page),
                    ApplyOutcome::Stale => unreachable!("big-lock apply never stale"),
                };
                st.hists.diff_apply.record(t0.elapsed().as_nanos() as u64);
                // Only a version-advancing apply is an apply; a duplicated
                // or retransmitted batch the gate skipped must not emit
                // (the invariant monitor treats a repeat as a violation).
                if fresh && st.tracer.enabled() {
                    st.tracer.emit(EventKind::DiffApply {
                        page: d.page.0,
                        bytes: d.payload_bytes() as u32,
                        writer: d.interval.proc,
                        interval: d.interval.seq as u64,
                    });
                }
            }
            inject_stale_apply_if_armed(st, diffs.last().map(|d| &**d));
            send_ready_fetches(st, ready);
            // Stop-and-wait ack. The home keeps no per-writer seq state:
            // it acks whatever arrives (the version gate inside apply_diff
            // is the dedup), and the writer drops stale acks by seq.
            if seq != 0 {
                st.send(from, Payload::DiffAck { seq });
            }
        }
        Payload::DiffAck { seq } => match st.diff_inflight[from] {
            Some((want, _)) if want == seq => {
                st.diff_inflight[from] = None;
                st.diff_outbox[from].pop_front();
                pump_diff_outbox(st, from);
            }
            // Duplicate ack of a retransmitted batch, or an ack from a
            // previous incarnation: drop.
            _ => st.dup_suppressed += 1,
        },
        // Membership traffic is handled off the big lock in the service
        // loop; one can still land here through a recovery-backlog replay —
        // by then it is stale, and the detector gets fresher input every
        // heartbeat period anyway.
        Payload::Member(_) => {}
        Payload::BarrierArrive {
            episode,
            vt,
            own_wns,
        } => {
            barrier_manager_arrive(
                st,
                Arrival {
                    proc: from,
                    episode,
                    vt,
                    own_wns,
                },
            );
        }
        Payload::BarrierRelease { episode, vt, wns } => {
            st.deposit_release(ReleaseData { episode, vt, wns });
        }
        Payload::PageReq {
            page,
            needed,
            req_id,
        } => {
            // Serving a page is an Arc bump: the home's next write
            // copy-on-writes, leaving the served buffer untouched.
            let outcome = st.pt.home_store().serve_fetch(
                WaitingFetch {
                    from,
                    page,
                    needed,
                    req_id,
                },
                || true,
            );
            match outcome {
                FetchOutcome::Ready(version, bytes) => st.send(
                    from,
                    Payload::PageReply {
                        page,
                        req_id,
                        version,
                        bytes,
                    },
                ),
                FetchOutcome::Parked => {}
                FetchOutcome::NotHome => panic!("PageReq for page {page} not homed here"),
                FetchOutcome::Stale => unreachable!("big-lock serve never stale"),
            }
        }
        Payload::PageBatchReq { pages, req_id } => {
            let home = st.pt.home_store();
            let mut ready = Vec::new();
            for (page, needed) in pages {
                let outcome = home.serve_fetch(
                    WaitingFetch {
                        from,
                        page,
                        needed,
                        req_id,
                    },
                    || true,
                );
                match outcome {
                    FetchOutcome::Ready(version, bytes) => ready.push((page, version, bytes)),
                    // Parked pages are answered individually (same req_id)
                    // when their diffs arrive.
                    FetchOutcome::Parked => {}
                    FetchOutcome::NotHome => {
                        panic!("PageBatchReq for page {page} not homed here")
                    }
                    FetchOutcome::Stale => unreachable!("big-lock serve never stale"),
                }
            }
            if !ready.is_empty() {
                st.send(
                    from,
                    Payload::PageBatchReply {
                        req_id,
                        pages: ready,
                    },
                );
            }
        }
        Payload::PageBatchReply { req_id, pages } => {
            for (page, version, bytes) in pages {
                install_prefetched(st, page, req_id, version, bytes);
            }
        }
        Payload::PageReply {
            page,
            req_id,
            version,
            bytes,
        } => {
            if let Some((version, bytes)) = st.deposit_page(req_id, version, bytes) {
                install_prefetched(st, page, req_id, version, bytes);
            }
        }
        Payload::RecLogReq => {
            let reply = build_rec_log_reply(st, from);
            st.send(from, reply);
        }
        Payload::RecPageReq { page, tckp } => {
            serve_rec_page(st, from, page, tckp);
        }
        Payload::RecDiffReq { page } => {
            // Cloning a diff log is cheap now: each entry is an Arc bump
            // plus a vector-clock clone, never a run-payload copy.
            let entries = st
                .ft
                .as_ref()
                .and_then(|ft| ft.logs.diffs.get(&page).cloned())
                .unwrap_or_default();
            st.send(from, Payload::RecDiffReply { page, entries });
        }
        // Replies to *our* recovery arriving after we already went live are
        // stale duplicates.
        Payload::RecLogReply { .. }
        | Payload::RecPageReply { .. }
        | Payload::RecDiffReply { .. } => {}
    }
}

/// Replay messages that were deferred because they referenced pages this
/// node had not allocated yet (called after every allocation).
pub(crate) fn drain_unalloc(st: &mut NodeState) {
    if st.pending_unalloc.is_empty() {
        return;
    }
    let pending = std::mem::take(&mut st.pending_unalloc);
    for (from, payload) in pending {
        handle_msg(st, from, payload);
    }
}

/// A crashed peer restarted: re-issue lost forwards and retransmit whatever
/// request our application thread is blocked on against that peer.
pub(crate) fn handle_node_up(st: &mut NodeState, node: ProcId) {
    let actions = st.sync.lock().lock_mgr.on_node_up(node);
    for a in actions {
        dispatch_lock_action(st, a);
    }
    // Re-issue in-flight prefetch batches the restarted home lost, grouped
    // back into their original batches (the needed versions are re-read:
    // they may have advanced, and the install gate checks coverage anyway).
    let mut groups: HashMap<u64, Vec<(PageId, VectorClock)>> = HashMap::new();
    for (&page, e) in &st.prefetch {
        if e.home == node {
            let needed = st.pt.remote_meta(page).needed.clone();
            groups
                .entry(e.req_id)
                .or_default()
                .push((page, fetch_needed(st, page, needed)));
        }
    }
    let mut groups: Vec<_> = groups.into_iter().collect();
    groups.sort_unstable_by_key(|(req_id, _)| *req_id);
    for (req_id, mut pages) in groups {
        pages.sort_unstable_by_key(|(p, _)| p.0);
        st.send(node, Payload::PageBatchReq { pages, req_id });
    }
    match &st.wait {
        WaitSlot::Page {
            page,
            req_id,
            home,
            needed,
            reply: None,
        } if *home == node => {
            let (page, req_id, needed) = (*page, *req_id, needed.clone());
            st.send(
                node,
                Payload::PageReq {
                    page,
                    needed,
                    req_id,
                },
            );
        }
        WaitSlot::Lock {
            lock,
            acq_seq,
            manager,
            req_vt,
            grant: None,
        } if *manager == node => {
            let (lock, acq_seq, vt) = (*lock, *acq_seq, req_vt.clone());
            st.send(node, Payload::LockAcq { lock, acq_seq, vt });
        }
        WaitSlot::Barrier {
            episode,
            arrive_vt,
            own_wns,
            release: None,
        } if node == 0 => {
            let (episode, vt, own_wns) = (*episode, arrive_vt.clone(), own_wns.clone());
            st.send(
                node,
                Payload::BarrierArrive {
                    episode,
                    vt,
                    own_wns,
                },
            );
        }
        _ => {}
    }
}

/// Big-lock handles the service loop's fast path keeps out of the big
/// lock itself.
struct FastCtx {
    ep: Arc<Endpoint<Msg>>,
    home: Arc<HomeStore>,
    sync: Arc<Mutex<SyncState>>,
    mode_flag: Arc<AtomicU8>,
    tracer: NodeTracer,
    me: ProcId,
    member: Option<Arc<MemberRuntime>>,
    inject_stale_apply: Option<Arc<std::sync::atomic::AtomicBool>>,
}

/// What the fast path did with a message.
enum FastOutcome {
    /// Handled without the big lock. `notify` says local waiters may have
    /// been unblocked (a diff application can satisfy a blocked access to
    /// a homed page).
    Handled { notify: bool },
    /// Not fast-path eligible after all (unallocated page, crash fence, or
    /// a payload that needs big-lock state): run the big-lock path.
    Fallback(Box<Msg>),
}

/// Handle one bare, Normal-mode message without the big lock, if its whole
/// effect lives in the sharded home store or the sync lock. The liveness
/// closure re-checks the mode flag *under each shard lock*, so a crash or
/// recovery transition (flag flip + quiesce) fences these operations out;
/// any op the fence misses is version-gated idempotent, exactly as under
/// the old big lock.
fn try_fast_path(
    shared: &NodeShared,
    cx: &FastCtx,
    hists: &mut LatencyHists,
    from: ProcId,
    msg: Msg,
) -> FastOutcome {
    let live = || cx.mode_flag.load(Ordering::SeqCst) == MODE_NORMAL;
    // Fast-path replies are parented on the request's flow so the exporter
    // can stitch request → reply across nodes (0 when tracing is off).
    let in_flow = msg.ctx.flow_id();
    match &msg.payload {
        Payload::PageReq {
            page,
            needed,
            req_id,
        } => {
            let (page, req_id) = (*page, *req_id);
            let (outcome, waited) = cx.home.serve_fetch_timed(
                WaitingFetch {
                    from,
                    page,
                    needed: needed.clone(),
                    req_id,
                },
                live,
            );
            hists.shard_lock_wait.record(waited.as_nanos() as u64);
            match outcome {
                FetchOutcome::Ready(version, bytes) => {
                    cx.ep.send(
                        from,
                        Msg::reply_to(
                            Payload::PageReply {
                                page,
                                req_id,
                                version,
                                bytes,
                            },
                            in_flow,
                        ),
                    );
                    FastOutcome::Handled { notify: false }
                }
                FetchOutcome::Parked => FastOutcome::Handled { notify: false },
                FetchOutcome::NotHome | FetchOutcome::Stale => FastOutcome::Fallback(Box::new(msg)),
            }
        }
        Payload::DiffBatch { seq, diffs } => {
            let seq = *seq;
            let mut ready = Vec::new();
            for d in diffs {
                let t0 = Instant::now();
                let (outcome, waited) = cx.home.apply_diff_timed(d, live);
                hists.shard_lock_wait.record(waited.as_nanos() as u64);
                match outcome {
                    ApplyOutcome::Applied { fresh, ready: r } => {
                        hists.diff_apply.record(t0.elapsed().as_nanos() as u64);
                        // Version-gate-skipped duplicates are not applies;
                        // emitting them would trip the monitor on every
                        // chaos-duplicated batch.
                        if fresh && cx.tracer.enabled() {
                            cx.tracer.emit(EventKind::DiffApply {
                                page: d.page.0,
                                bytes: d.payload_bytes() as u32,
                                writer: d.interval.proc,
                                interval: d.interval.seq as u64,
                            });
                        }
                        ready.extend(r);
                    }
                    ApplyOutcome::NotHome | ApplyOutcome::Stale => {
                        // Answer what this batch already unparked, then let
                        // the big-lock path re-run the whole batch (diff
                        // application is version-gated idempotent).
                        for r in ready {
                            cx.ep.send(
                                r.from,
                                Msg::reply_to(
                                    Payload::PageReply {
                                        page: r.page,
                                        req_id: r.req_id,
                                        version: r.version,
                                        bytes: r.bytes,
                                    },
                                    in_flow,
                                ),
                            );
                        }
                        return FastOutcome::Fallback(Box::new(msg));
                    }
                }
            }
            if cx.tracer.enabled() {
                if let Some(flag) = &cx.inject_stale_apply {
                    if flag.swap(false, Ordering::Relaxed) {
                        if let Some(d) = diffs.last() {
                            // Deliberate protocol violation (test-only): the
                            // monitor must flag this duplicate apply.
                            cx.tracer.emit(EventKind::DiffApply {
                                page: d.page.0,
                                bytes: d.payload_bytes() as u32,
                                writer: d.interval.proc,
                                interval: d.interval.seq as u64,
                            });
                        }
                    }
                }
            }
            for r in ready {
                cx.ep.send(
                    r.from,
                    Msg::reply_to(
                        Payload::PageReply {
                            page: r.page,
                            req_id: r.req_id,
                            version: r.version,
                            bytes: r.bytes,
                        },
                        in_flow,
                    ),
                );
            }
            if seq != 0 {
                cx.ep
                    .send(from, Msg::reply_to(Payload::DiffAck { seq }, in_flow));
            }
            FastOutcome::Handled { notify: true }
        }
        Payload::PageBatchReq { pages, req_id } => {
            let req_id = *req_id;
            if !pages.iter().all(|(p, _)| cx.home.contains(*p)) {
                // Some page not allocated yet: defer via the big lock.
                return FastOutcome::Fallback(Box::new(msg));
            }
            let mut ready = Vec::new();
            for (page, needed) in pages {
                let (outcome, waited) = cx.home.serve_fetch_timed(
                    WaitingFetch {
                        from,
                        page: *page,
                        needed: needed.clone(),
                        req_id,
                    },
                    live,
                );
                hists.shard_lock_wait.record(waited.as_nanos() as u64);
                match outcome {
                    FetchOutcome::Ready(version, bytes) => ready.push((*page, version, bytes)),
                    // Parked pages are answered individually (same req_id)
                    // when their diffs arrive.
                    FetchOutcome::Parked => {}
                    // Crash fence mid-batch: re-run under the big lock
                    // (double-parked pages produce duplicate replies the
                    // requester drops by req_id).
                    FetchOutcome::Stale => return FastOutcome::Fallback(Box::new(msg)),
                    FetchOutcome::NotHome => unreachable!("containment checked above"),
                }
            }
            if !ready.is_empty() {
                cx.ep.send(
                    from,
                    Msg::reply_to(
                        Payload::PageBatchReply {
                            req_id,
                            pages: ready,
                        },
                        in_flow,
                    ),
                );
            }
            FastOutcome::Handled { notify: false }
        }
        Payload::LockAcq { lock, acq_seq, vt } => {
            // Manager routing touches only the sync lock. The decision is
            // taken exactly once; if it says to grant from this very node,
            // the grant needs big-lock state (tenure, FT logs) and is
            // finished under it below — never by re-running the message.
            let (lock, acq_seq) = (*lock, *acq_seq);
            let action = {
                let mut sync = cx.sync.lock();
                if !live() {
                    return FastOutcome::Fallback(Box::new(msg));
                }
                sync.lock_mgr.on_request(
                    lock,
                    AcqReq {
                        requester: from,
                        acq_seq,
                        vt: vt.clone(),
                    },
                )
            };
            match action {
                None => FastOutcome::Handled { notify: false },
                Some(a) if a.grant_from != cx.me => {
                    cx.ep.send(
                        a.grant_from,
                        Msg::reply_to(
                            Payload::LockForward {
                                lock: a.lock,
                                requester: a.req.requester,
                                acq_seq: a.req.acq_seq,
                                gen: a.gen,
                                pred_acq: a.pred_acq,
                                vt: a.req.vt,
                            },
                            in_flow,
                        ),
                    );
                    FastOutcome::Handled { notify: false }
                }
                Some(a) => {
                    let mut st = shared.state.lock();
                    // A crash slipped in between the sync-lock decision and
                    // here: drop the action. Recovery resets the manager
                    // state and the requester retransmits on NodeUp.
                    if st.mode == Mode::Normal {
                        st.cur_flow = in_flow;
                        handle_forward(
                            &mut st,
                            a.lock,
                            a.req.requester,
                            a.req.acq_seq,
                            a.gen,
                            a.pred_acq,
                            a.req.vt,
                        );
                        st.cur_flow = 0;
                    }
                    FastOutcome::Handled { notify: false }
                }
            }
        }
        _ => FastOutcome::Fallback(Box::new(msg)),
    }
}

/// The classic big-lock path: mode routing plus per-kind time accounting.
fn slow_path(shared: &NodeShared, ev: Event<Msg>) {
    let kind: &'static str = match &ev {
        Event::NodeUp { .. } => "NodeUp",
        Event::Wakeup => return,
        Event::Msg { msg, .. } => msg.payload.kind(),
    };
    let mut st = shared.state.lock();
    let t0 = Instant::now();
    match ev {
        Event::Wakeup => unreachable!(),
        Event::NodeUp { node } => match st.mode {
            Mode::Normal => handle_node_up(&mut st, node),
            // Single-fault model: no other node can restart while we are
            // crashed or recovering.
            Mode::Crashed | Mode::Recovering => {}
        },
        Event::Msg { from, msg } => {
            if st.mode != Mode::Crashed {
                if let (Some(p), true) = (&msg.piggy, st.ft.is_some()) {
                    st.ft.as_mut().unwrap().absorb_piggy(from, p);
                }
            }
            match st.mode {
                Mode::Crashed => {}
                Mode::Recovering => match msg.payload {
                    Payload::RecLogReply { .. }
                    | Payload::RecPageReply { .. }
                    | Payload::RecDiffReply { .. } => {
                        st.rec_inbox.push((from, msg.payload));
                    }
                    other => st.backlog.push((from, other)),
                },
                Mode::Normal => {
                    // Everything the handler sends is causally parented on
                    // the message being handled.
                    st.cur_flow = msg.ctx.flow_id();
                    handle_msg(&mut st, from, msg.payload);
                    st.cur_flow = 0;
                }
            }
        }
    }
    let dt = t0.elapsed();
    st.protocol_time_svc += dt;
    *st.svc_time_by_kind.entry(kind).or_default() += dt;
    drop(st);
    shared.cv.notify_all();
}

/// The service loop: one per node, owns message receipt.
///
/// Blocks on the endpoint — no polling; [`Endpoint::wake`] posts an
/// [`Event::Wakeup`] when the shutdown flag needs re-checking. Bare
/// messages in Normal mode first try the no-big-lock fast path.
pub(crate) fn service_loop(shared: Arc<NodeShared>) {
    let cx = {
        let st = shared.state.lock();
        FastCtx {
            ep: Arc::clone(&st.ep),
            home: st.pt.home_store(),
            sync: Arc::clone(&st.sync),
            mode_flag: Arc::clone(&st.mode_flag),
            tracer: st.tracer.clone(),
            me: st.me,
            member: st.member.clone(),
            inject_stale_apply: st.inject_stale_apply.clone(),
        }
    };
    // Fast-path accounting lives in loop locals (the point is not to touch
    // the big lock) and is folded into the node state at exit — teardown
    // joins service threads before collecting reports.
    let mut fast_time: HashMap<&'static str, Duration> = HashMap::new();
    let mut fast_hists = LatencyHists::default();
    // Loop until the fabric disconnects (recv returns None) or shutdown.
    while let Some(ev) = cx.ep.recv() {
        match ev {
            Event::Wakeup => {
                if shared.state.lock().shutdown {
                    break;
                }
            }
            // Membership traffic bypasses both paths: processing it must
            // not wait on the big lock (the application thread holds it
            // while computing, and a stalled Pong looks like a dead node to
            // the peer). A crashed node's input is already cut off at the
            // fabric; the mode check here just fences the drain race.
            Event::Msg { from, msg } if matches!(msg.payload, Payload::Member(_)) => {
                let kind = msg.payload.kind();
                let Payload::Member(w) = msg.payload else {
                    unreachable!()
                };
                if cx.mode_flag.load(Ordering::SeqCst) != Mode::Crashed.flag() {
                    if let Some(mr) = &cx.member {
                        let t0 = Instant::now();
                        let actions = mr.det.lock().on_msg(from, w, Instant::now());
                        apply_member_actions(&shared, &cx.ep, &cx.tracer, mr, actions);
                        // Attribute detector service time per heartbeat
                        // message kind, same as the fast path: loop-local,
                        // folded into the node state at exit.
                        *fast_time.entry(kind).or_default() += t0.elapsed();
                    }
                }
            }
            Event::Msg { from, msg }
                if msg.piggy.is_none() && cx.mode_flag.load(Ordering::SeqCst) == MODE_NORMAL =>
            {
                let t0 = Instant::now();
                let kind = msg.payload.kind();
                match try_fast_path(&shared, &cx, &mut fast_hists, from, msg) {
                    FastOutcome::Handled { notify } => {
                        *fast_time.entry(kind).or_default() += t0.elapsed();
                        if notify {
                            // Lock-then-drop pairs with the app thread's
                            // check-predicate-then-wait: without it a waiter
                            // between its check and `cv.wait` would miss
                            // this notification.
                            drop(shared.state.lock());
                            shared.cv.notify_all();
                        }
                    }
                    FastOutcome::Fallback(msg) => {
                        slow_path(&shared, Event::Msg { from, msg: *msg })
                    }
                }
            }
            ev => slow_path(&shared, ev),
        }
    }
    // Fold fast-path accounting into the shared state for reporting.
    let mut st = shared.state.lock();
    for (k, d) in fast_time {
        st.protocol_time_svc += d;
        *st.svc_time_by_kind.entry(k).or_default() += d;
    }
    st.hists.merge(&fast_hists);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtConfig;
    use crate::ft::FtState;
    use dsm_net::Fabric;
    use dsm_storage::{DiskModel, StableStore};

    fn test_state(me: ProcId, n: usize, ft: bool) -> (NodeState, Vec<Arc<Endpoint<Msg>>>) {
        let (_fabric, endpoints) = Fabric::<Msg>::new(n);
        let mut eps: Vec<Arc<Endpoint<Msg>>> = endpoints.into_iter().map(Arc::new).collect();
        let ep = Arc::clone(&eps[me]);
        let store = Arc::new(StableStore::new(DiskModel::instant()));
        let st = NodeState {
            me,
            n,
            page_size: 256,
            mode: Mode::Normal,
            mode_flag: Arc::new(AtomicU8::new(Mode::Normal.flag())),
            pt: PageTable::new(me, n, 256),
            vt: VectorClock::zero(n),
            wn_table: WnTable::new(),
            sync: Arc::new(Mutex::new(SyncState {
                lock_mgr: LockManagerTable::new(me),
                bar_mgr: (me == 0).then(|| BarrierManager::new(n)),
            })),
            held: Default::default(),
            tenure: Default::default(),
            tenure_gen: Default::default(),
            last_release_vt: Default::default(),
            pending_grants: Default::default(),
            lock_chain_info: Default::default(),
            wait: WaitSlot::None,
            rec_inbox: Vec::new(),
            backlog: Vec::new(),
            pending_unalloc: Vec::new(),
            prefetch: HashMap::new(),
            acq_seq_next: 0,
            bar_episode: 0,
            req_id_next: 0,
            wn_since_barrier: Vec::new(),
            shared_bytes: 0,
            alloc_cursor: 0,
            ft: ft.then(|| FtState::new(me, n, FtConfig::default(), store)),
            replay: None,
            protocol_time_svc: Duration::ZERO,
            svc_time_by_kind: HashMap::new(),
            shutdown: false,
            ops: 0,
            crash_queue: Vec::new(),
            recoveries: 0,
            ep,
            member: None,
            retry_after: None,
            retransmits: 0,
            dup_suppressed: 0,
            diff_outbox: (0..n).map(|_| VecDeque::new()).collect(),
            diff_inflight: vec![None; n],
            diff_seq_next: 0,
            own_diff_seq: HashMap::new(),
            breakdown_acc: Default::default(),
            tracer: NodeTracer::disabled(),
            hists: Default::default(),
            cur_flow: 0,
            inject_stale_apply: None,
        };
        eps.remove(me);
        (st, eps)
    }

    #[test]
    fn forward_behind_released_tenure_grants_immediately() {
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, true)); // our acquisition #4, released
        st.last_release_vt
            .insert(9, VectorClock::from_vec(vec![2, 0, 0]));
        handle_forward(&mut st, 9, 1, 0, 10, 4, VectorClock::zero(3));
        assert!(
            st.pending_grants.is_empty(),
            "released tenure must grant now"
        );
    }

    #[test]
    fn forward_behind_unreleased_tenure_queues() {
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, false)); // still holding acquisition #4
        st.held.insert(9);
        handle_forward(&mut st, 9, 1, 0, 10, 4, VectorClock::zero(3));
        assert_eq!(st.pending_grants[&9].len(), 1);
        assert_eq!(st.pending_grants[&9][0].pred_acq, 4);
    }

    #[test]
    fn forward_behind_in_flight_acquire_queues() {
        // The grant for our own acquisition #5 has not arrived yet, but the
        // manager already chained a requester behind it.
        let (mut st, _eps) = test_state(0, 3, false);
        st.tenure.insert(9, (4, true));
        st.wait = WaitSlot::Lock {
            lock: 9,
            acq_seq: 5,
            manager: 1,
            req_vt: VectorClock::zero(3),
            grant: None,
        };
        handle_forward(&mut st, 9, 2, 0, 11, 5, VectorClock::zero(3));
        assert_eq!(
            st.pending_grants[&9].len(),
            1,
            "in-flight tenure must queue"
        );
    }

    #[test]
    fn chain_start_forward_always_grants() {
        let (mut st, _eps) = test_state(0, 3, false);
        handle_forward(&mut st, 9, 1, 0, 1, u64::MAX, VectorClock::zero(3));
        assert!(st.pending_grants.is_empty());
    }

    #[test]
    fn forward_retransmission_replays_logged_grant() {
        let (mut st, _eps) = test_state(0, 3, true);
        st.last_release_vt
            .insert(9, VectorClock::from_vec(vec![3, 0, 0]));
        st.tenure.insert(9, (0, true));
        // First forward: grants and logs.
        handle_forward(&mut st, 9, 1, 7, 10, 0, VectorClock::zero(3));
        let logged = st
            .ft
            .as_ref()
            .unwrap()
            .logs
            .find_rel(1, 7)
            .cloned()
            .unwrap();
        // Retransmission (zero-length vt, as after a crash): identical grant
        // from the log, no new rel entry.
        handle_forward(&mut st, 9, 1, 7, 10, 0, VectorClock::zero(0));
        let ft = st.ft.as_ref().unwrap();
        assert_eq!(ft.logs.rel[1].len(), 1);
        assert_eq!(ft.logs.find_rel(1, 7).unwrap(), &logged);
    }

    #[test]
    fn deposits_match_only_the_waited_for_slot() {
        let (mut st, _eps) = test_state(1, 3, false);
        st.wait = WaitSlot::Page {
            page: PageId(3),
            req_id: 42,
            home: 0,
            needed: VectorClock::zero(3),
            reply: None,
        };
        // Stale reply for an older request id is dropped.
        st.deposit_page(41, VectorClock::zero(3), vec![0; 256].into());
        if let WaitSlot::Page { reply, .. } = &st.wait {
            assert!(reply.is_none());
        }
        st.deposit_page(42, VectorClock::zero(3), vec![0; 256].into());
        if let WaitSlot::Page { reply, .. } = &st.wait {
            assert!(reply.is_some());
        } else {
            panic!("slot vanished");
        }
    }

    #[test]
    fn piggyback_is_attached_only_when_it_carries_news() {
        let (mut st, _eps) = test_state(0, 2, true);
        // Fresh FT state advertises checkpoint 0 once.
        let first = st.make_piggy(1, false);
        assert!(first.is_some());
        let second = st.make_piggy(1, false);
        assert!(second.is_none(), "no news: no piggyback");
        // A gossip request always produces one (even without news) when the
        // table would be empty it still returns None though:
        let gossip = st.make_piggy(1, true);
        assert!(gossip.is_none(), "empty gossip table carries no news");
        // After a checkpoint-sequence bump, news flows again.
        st.ft.as_mut().unwrap().ckpt_seq = 1;
        assert!(st.make_piggy(1, false).is_some());
    }

    #[test]
    fn messages_for_unallocated_pages_are_deferred() {
        let (mut st, _eps) = test_state(0, 2, false);
        handle_msg(
            &mut st,
            1,
            Payload::PageReq {
                page: PageId(5),
                needed: VectorClock::zero(2),
                req_id: 0,
            },
        );
        assert_eq!(st.pending_unalloc.len(), 1);
        for _ in 0..6 {
            st.pt.add_page(0);
        }
        drain_unalloc(&mut st);
        assert!(st.pending_unalloc.is_empty());
        // The fetch was answered immediately (page 5 exists, zero version
        // satisfies): nothing stays parked in the home store.
        assert!(st.pt.home_store().drain_ready().is_empty());
    }

    #[test]
    fn batch_req_serves_ready_pages_and_parks_the_rest() {
        let (mut st, eps) = test_state(0, 2, false);
        for _ in 0..3 {
            st.pt.add_page(0);
        }
        let gated = {
            let mut v = VectorClock::zero(2);
            v.set(1, 1);
            v
        };
        handle_msg(
            &mut st,
            1,
            Payload::PageBatchReq {
                pages: vec![
                    (PageId(0), VectorClock::zero(2)),
                    (PageId(1), gated),
                    (PageId(2), VectorClock::zero(2)),
                ],
                req_id: 9,
            },
        );
        // Pages 0 and 2 came back in one batched reply; page 1 is parked.
        match eps[0].try_recv() {
            Some(Event::Msg { msg, .. }) => match msg.payload {
                Payload::PageBatchReply { req_id, pages } => {
                    assert_eq!(req_id, 9);
                    let ids: Vec<_> = pages.iter().map(|(p, _, _)| *p).collect();
                    assert_eq!(ids, vec![PageId(0), PageId(2)]);
                }
                other => panic!("expected PageBatchReply, got {}", other.kind()),
            },
            other => panic!("expected a message, got {other:?}"),
        }
        assert!(st.pt.home_store().drain_ready().is_empty());
    }

    #[test]
    fn prefetch_reply_installs_only_matching_and_still_needed_pages() {
        let (mut st, _eps) = test_state(1, 2, false);
        for _ in 0..2 {
            st.pt.add_page(0); // homed at node 0, remote here
        }
        st.prefetch
            .insert(PageId(0), PrefetchEntry { req_id: 5, home: 0 });
        st.prefetch
            .insert(PageId(1), PrefetchEntry { req_id: 5, home: 0 });
        // Stale req_id: dropped, entry kept.
        install_prefetched(
            &mut st,
            PageId(0),
            4,
            VectorClock::zero(2),
            vec![0u8; 256].into(),
        );
        assert!(st.prefetch.contains_key(&PageId(0)));
        // Matching req_id: installed, entry consumed.
        install_prefetched(
            &mut st,
            PageId(0),
            5,
            VectorClock::zero(2),
            vec![7u8; 256].into(),
        );
        assert!(!st.prefetch.contains_key(&PageId(0)));
        assert_eq!(st.pt.ensure_access(PageId(0)), hlrc::AccessOutcome::Ready);
        // Overtaken by a newer invalidation: entry consumed, page stays
        // invalid (a later touch fetches fresh).
        st.pt.invalidate(PageId(1), 0, 3);
        install_prefetched(
            &mut st,
            PageId(1),
            5,
            VectorClock::zero(2),
            vec![7u8; 256].into(),
        );
        assert!(!st.prefetch.contains_key(&PageId(1)));
        assert!(matches!(
            st.pt.ensure_access(PageId(1)),
            hlrc::AccessOutcome::NeedFetch { .. }
        ));
    }

    #[test]
    fn prefetch_issue_groups_pages_per_home_and_skips_tracked_ones() {
        let (mut st, _eps) = test_state(2, 3, false);
        st.pt.add_page(0); // page 0 at home 0
        st.pt.add_page(1); // page 1 at home 1
        st.pt.add_page(0); // page 2 at home 0
        st.pt.add_page(2); // page 3 homed here
        for p in [0u32, 1, 2] {
            st.pt.invalidate(PageId(p), 0, 1);
        }
        st.prefetch
            .insert(PageId(2), PrefetchEntry { req_id: 0, home: 0 });
        issue_prefetch(
            &mut st,
            &[PageId(0), PageId(1), PageId(2), PageId(3), PageId(0)],
        );
        // Page 2 already in flight, page 3 homed here, page 0 deduped:
        // one batch to home 0 (page 0) and one to home 1 (page 1).
        assert_eq!(st.prefetch.len(), 3);
        assert_eq!(st.prefetch[&PageId(0)].home, 0);
        assert_eq!(st.prefetch[&PageId(1)].home, 1);
        assert_eq!(st.prefetch[&PageId(2)].req_id, 0, "in-flight entry kept");
        assert_eq!(st.hists.fetch_batch_pages.count(), 2);
    }
}
