//! The threaded runtime: cluster construction, per-node state, the protocol
//! service loop, and the application-facing [`Process`] handle.

pub mod cluster;
pub(crate) mod node;
pub mod process;

pub use cluster::run;
pub use process::{AppState, Process, SharedVec};
