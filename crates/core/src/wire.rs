//! Codec helpers for protocol and log types.
//!
//! These define the canonical encoded layout of the shared types; the wire
//! sizes reported by messages and log entries match these encodings.

use dsm_page::{Diff, DiffRun, Interval, PageId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter, CodecError};
use hlrc::WriteNotice;

/// Encode a vector clock.
pub fn put_vt(w: &mut ByteWriter, vt: &VectorClock) {
    w.put_u32_slice(vt.as_slice());
}

/// Decode a vector clock.
pub fn get_vt(r: &mut ByteReader) -> Result<VectorClock, CodecError> {
    Ok(VectorClock::from_vec(r.get_u32_vec()?))
}

/// Encode a page-id list.
pub fn put_pages(w: &mut ByteWriter, pages: &[PageId]) {
    w.put_u64(pages.len() as u64);
    for p in pages {
        w.put_u32(p.0);
    }
}

/// Decode a page-id list.
pub fn get_pages(r: &mut ByteReader) -> Result<Vec<PageId>, CodecError> {
    Ok(r.get_u32_vec()?.into_iter().map(PageId).collect())
}

/// Encode a diff.
pub fn put_diff(w: &mut ByteWriter, d: &Diff) {
    w.put_u32(d.page.0);
    w.put_u32(d.interval.proc as u32);
    w.put_u32(d.interval.seq);
    w.put_u64(d.runs.len() as u64);
    for run in &d.runs {
        w.put_u32(run.offset);
        w.put_bytes(&run.bytes);
    }
}

/// Decode a diff.
pub fn get_diff(r: &mut ByteReader) -> Result<Diff, CodecError> {
    let page = PageId(r.get_u32()?);
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let nruns = r.get_u64()? as usize;
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let offset = r.get_u32()?;
        let bytes = r.get_bytes()?.to_vec();
        runs.push(DiffRun { offset, bytes });
    }
    Ok(Diff {
        page,
        interval: Interval { proc: proc_, seq },
        runs,
    })
}

/// Encode a write notice.
pub fn put_wn(w: &mut ByteWriter, wn: &WriteNotice) {
    w.put_u32(wn.interval.proc as u32);
    w.put_u32(wn.interval.seq);
    put_pages(w, &wn.pages);
}

/// Decode a write notice.
pub fn get_wn(r: &mut ByteReader) -> Result<WriteNotice, CodecError> {
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let pages = get_pages(r)?;
    Ok(WriteNotice {
        interval: Interval { proc: proc_, seq },
        pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_page::Page;

    #[test]
    fn diff_roundtrip() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        cur.write(48, &[9; 8]);
        let d = Diff::create(PageId(3), Interval { proc: 2, seq: 7 }, &twin, &cur).unwrap();
        let mut w = ByteWriter::new();
        put_diff(&mut w, &d);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_diff(&mut r).unwrap(), d);
        assert!(r.is_exhausted());
    }

    #[test]
    fn wn_and_vt_roundtrip() {
        let wn = WriteNotice {
            interval: Interval { proc: 1, seq: 9 },
            pages: vec![PageId(0), PageId(4)],
        };
        let vt = VectorClock::from_vec(vec![3, 1, 4]);
        let mut w = ByteWriter::new();
        put_wn(&mut w, &wn);
        put_vt(&mut w, &vt);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_wn(&mut r).unwrap(), wn);
        assert_eq!(get_vt(&mut r).unwrap(), vt);
    }
}
