//! Codec helpers for protocol and log types.
//!
//! These define the canonical encoded layout of the shared types; the wire
//! sizes reported by messages and log entries match these encodings.

use dsm_page::{Diff, Interval, PageId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter, CodecError};
use hlrc::WriteNotice;

/// Encode a vector clock.
pub fn put_vt(w: &mut ByteWriter, vt: &VectorClock) {
    w.put_u32_slice(vt.as_slice());
}

/// Decode a vector clock.
pub fn get_vt(r: &mut ByteReader) -> Result<VectorClock, CodecError> {
    Ok(VectorClock::from_vec(r.get_u32_vec()?))
}

/// Encode a page-id list.
pub fn put_pages(w: &mut ByteWriter, pages: &[PageId]) {
    w.put_u64(pages.len() as u64);
    for p in pages {
        w.put_u32(p.0);
    }
}

/// Decode a page-id list.
pub fn get_pages(r: &mut ByteReader) -> Result<Vec<PageId>, CodecError> {
    Ok(r.get_u32_vec()?.into_iter().map(PageId).collect())
}

/// Encode a diff. The layout is exactly what [`Diff::wire_size`] charges:
/// page id (4) + interval (8) + run count (4), then per run offset (4) +
/// length (4) + raw bytes. A unit test below pins the equality so traffic
/// accounting can never silently diverge from the codec again.
pub fn put_diff(w: &mut ByteWriter, d: &Diff) {
    w.put_u32(d.page.0);
    w.put_u32(d.interval.proc as u32);
    w.put_u32(d.interval.seq);
    w.put_u32(d.run_count() as u32);
    for (offset, bytes) in d.runs() {
        w.put_u32(offset as u32);
        w.put_u32(bytes.len() as u32);
        w.put_raw(bytes);
    }
}

/// Decode a diff.
pub fn get_diff(r: &mut ByteReader) -> Result<Diff, CodecError> {
    let page = PageId(r.get_u32()?);
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let nruns = r.get_u32()? as usize;
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let offset = r.get_u32()?;
        let len = r.get_u32()? as usize;
        runs.push((offset, r.get_raw(len)?));
    }
    Ok(Diff::from_runs(page, Interval { proc: proc_, seq }, runs))
}

/// Encode a write notice.
pub fn put_wn(w: &mut ByteWriter, wn: &WriteNotice) {
    w.put_u32(wn.interval.proc as u32);
    w.put_u32(wn.interval.seq);
    put_pages(w, &wn.pages);
}

/// Decode a write notice.
pub fn get_wn(r: &mut ByteReader) -> Result<WriteNotice, CodecError> {
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let pages = get_pages(r)?;
    Ok(WriteNotice {
        interval: Interval { proc: proc_, seq },
        pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_page::Page;

    #[test]
    fn diff_roundtrip() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        cur.write(48, &[9; 8]);
        let d = Diff::create(PageId(3), Interval { proc: 2, seq: 7 }, &twin, &cur).unwrap();
        let mut w = ByteWriter::new();
        put_diff(&mut w, &d);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_diff(&mut r).unwrap(), d);
        assert!(r.is_exhausted());
    }

    #[test]
    fn diff_encoded_length_equals_wire_size() {
        // Multi-run diff: the accounting model and the codec must agree
        // byte-for-byte, or paper traffic tables drift from reality.
        let twin = Page::zeroed(256);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        cur.write(32, &[2; 24]);
        cur.write(248, &[3; 8]);
        let d = Diff::create(PageId(9), Interval { proc: 1, seq: 5 }, &twin, &cur).unwrap();
        assert_eq!(d.run_count(), 3);
        let mut w = ByteWriter::new();
        put_diff(&mut w, &d);
        assert_eq!(w.len(), d.wire_size());

        // Single-run diff too (different header/payload ratio).
        let mut cur1 = twin.clone();
        cur1.write(64, &[7; 8]);
        let d1 = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur1).unwrap();
        let mut w1 = ByteWriter::new();
        put_diff(&mut w1, &d1);
        assert_eq!(w1.len(), d1.wire_size());
    }

    #[test]
    fn wn_and_vt_roundtrip() {
        let wn = WriteNotice {
            interval: Interval { proc: 1, seq: 9 },
            pages: vec![PageId(0), PageId(4)],
        };
        let vt = VectorClock::from_vec(vec![3, 1, 4]);
        let mut w = ByteWriter::new();
        put_wn(&mut w, &wn);
        put_vt(&mut w, &vt);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_wn(&mut r).unwrap(), wn);
        assert_eq!(get_vt(&mut r).unwrap(), vt);
    }
}
