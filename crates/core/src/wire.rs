//! Codec helpers for protocol and log types.
//!
//! These define the canonical encoded layout of the shared types; the wire
//! sizes reported by messages and log entries match these encodings.

use dsm_page::{Diff, Interval, PageId, VectorClock};
use dsm_storage::{ByteReader, ByteWriter, CodecError};
use dsm_trace::TraceCtx;
use hlrc::WriteNotice;

/// Encode a trace context: origin (16 bits) and seq (48 bits) packed into
/// one word, then the parent flow id — exactly the 16 bytes
/// [`TraceCtx::WIRE_SIZE`] charges. The measurement-only fields
/// (`sent_at_ns`, `chaos_delay_ns`) are deliberately not encoded: a real
/// network stack would derive them from NIC timestamps, so the wire model
/// does not charge for them.
pub fn put_ctx(w: &mut ByteWriter, ctx: &TraceCtx) {
    w.put_u64(((ctx.origin as u64) << 48) | (ctx.seq & 0xFFFF_FFFF_FFFF));
    w.put_u64(ctx.parent);
}

/// Decode a trace context (measurement fields come back zeroed).
pub fn get_ctx(r: &mut ByteReader) -> Result<TraceCtx, CodecError> {
    let packed = r.get_u64()?;
    let parent = r.get_u64()?;
    Ok(TraceCtx {
        origin: (packed >> 48) as u32,
        seq: packed & 0xFFFF_FFFF_FFFF,
        parent,
        sent_at_ns: 0,
        chaos_delay_ns: 0,
    })
}

/// Encode a vector clock.
pub fn put_vt(w: &mut ByteWriter, vt: &VectorClock) {
    w.put_u32_slice(vt.as_slice());
}

/// Decode a vector clock.
pub fn get_vt(r: &mut ByteReader) -> Result<VectorClock, CodecError> {
    Ok(VectorClock::from_vec(r.get_u32_vec()?))
}

/// Encode a page-id list.
pub fn put_pages(w: &mut ByteWriter, pages: &[PageId]) {
    w.put_u64(pages.len() as u64);
    for p in pages {
        w.put_u32(p.0);
    }
}

/// Decode a page-id list.
pub fn get_pages(r: &mut ByteReader) -> Result<Vec<PageId>, CodecError> {
    Ok(r.get_u32_vec()?.into_iter().map(PageId).collect())
}

/// Encode a diff. The layout is exactly what [`Diff::wire_size`] charges:
/// page id (4) + interval (8) + run count (4), then per run offset (4) +
/// length (4) + raw bytes. A unit test below pins the equality so traffic
/// accounting can never silently diverge from the codec again.
pub fn put_diff(w: &mut ByteWriter, d: &Diff) {
    w.put_u32(d.page.0);
    w.put_u32(d.interval.proc as u32);
    w.put_u32(d.interval.seq);
    w.put_u32(d.run_count() as u32);
    for (offset, bytes) in d.runs() {
        w.put_u32(offset as u32);
        w.put_u32(bytes.len() as u32);
        w.put_raw(bytes);
    }
}

/// Decode a diff.
pub fn get_diff(r: &mut ByteReader) -> Result<Diff, CodecError> {
    let page = PageId(r.get_u32()?);
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let nruns = r.get_u32()? as usize;
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let offset = r.get_u32()?;
        let len = r.get_u32()? as usize;
        runs.push((offset, r.get_raw(len)?));
    }
    Ok(Diff::from_runs(page, Interval { proc: proc_, seq }, runs))
}

/// Encode the page list of a batched fetch request: `(page, needed)` pairs.
///
/// Layout: count (8), then per page id (4) + length-prefixed needed clock.
/// The accounting model (`Payload::wire_size`) charges clocks at 4 bytes per
/// entry without the length prefix — the cluster size is implied on a real
/// wire — matching the convention used by `PageReq`/`PageReply`.
pub fn put_page_needs(w: &mut ByteWriter, pages: &[(PageId, VectorClock)]) {
    w.put_u64(pages.len() as u64);
    for (p, needed) in pages {
        w.put_u32(p.0);
        put_vt(w, needed);
    }
}

/// Decode the page list of a batched fetch request.
pub fn get_page_needs(r: &mut ByteReader) -> Result<Vec<(PageId, VectorClock)>, CodecError> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let p = PageId(r.get_u32()?);
        out.push((p, get_vt(r)?));
    }
    Ok(out)
}

/// Encode the page list of a batched fetch reply: `(page, version, bytes)`.
///
/// Layout: count (8), then per page id (4) + byte length (4) +
/// length-prefixed version clock + raw contents.
pub fn put_page_copies(w: &mut ByteWriter, pages: &[(PageId, VectorClock, std::sync::Arc<[u8]>)]) {
    w.put_u64(pages.len() as u64);
    for (p, version, bytes) in pages {
        w.put_u32(p.0);
        w.put_u32(bytes.len() as u32);
        put_vt(w, version);
        w.put_raw(bytes);
    }
}

/// Decode the page list of a batched fetch reply.
#[allow(clippy::type_complexity)]
pub fn get_page_copies(
    r: &mut ByteReader,
) -> Result<Vec<(PageId, VectorClock, std::sync::Arc<[u8]>)>, CodecError> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let p = PageId(r.get_u32()?);
        let len = r.get_u32()? as usize;
        let version = get_vt(r)?;
        let bytes: std::sync::Arc<[u8]> = r.get_raw(len)?.into();
        out.push((p, version, bytes));
    }
    Ok(out)
}

/// Encode a write notice.
pub fn put_wn(w: &mut ByteWriter, wn: &WriteNotice) {
    w.put_u32(wn.interval.proc as u32);
    w.put_u32(wn.interval.seq);
    put_pages(w, &wn.pages);
}

/// Decode a write notice.
pub fn get_wn(r: &mut ByteReader) -> Result<WriteNotice, CodecError> {
    let proc_ = r.get_u32()? as usize;
    let seq = r.get_u32()?;
    let pages = get_pages(r)?;
    Ok(WriteNotice {
        interval: Interval { proc: proc_, seq },
        pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_page::Page;

    #[test]
    fn diff_roundtrip() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        cur.write(48, &[9; 8]);
        let d = Diff::create(PageId(3), Interval { proc: 2, seq: 7 }, &twin, &cur).unwrap();
        let mut w = ByteWriter::new();
        put_diff(&mut w, &d);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_diff(&mut r).unwrap(), d);
        assert!(r.is_exhausted());
    }

    #[test]
    fn diff_encoded_length_equals_wire_size() {
        // Multi-run diff: the accounting model and the codec must agree
        // byte-for-byte, or paper traffic tables drift from reality.
        let twin = Page::zeroed(256);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        cur.write(32, &[2; 24]);
        cur.write(248, &[3; 8]);
        let d = Diff::create(PageId(9), Interval { proc: 1, seq: 5 }, &twin, &cur).unwrap();
        assert_eq!(d.run_count(), 3);
        let mut w = ByteWriter::new();
        put_diff(&mut w, &d);
        assert_eq!(w.len(), d.wire_size());

        // Single-run diff too (different header/payload ratio).
        let mut cur1 = twin.clone();
        cur1.write(64, &[7; 8]);
        let d1 = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur1).unwrap();
        let mut w1 = ByteWriter::new();
        put_diff(&mut w1, &d1);
        assert_eq!(w1.len(), d1.wire_size());
    }

    #[test]
    fn batch_lists_roundtrip_and_layout_is_pinned() {
        let needs = vec![
            (PageId(3), VectorClock::from_vec(vec![1, 0, 2])),
            (PageId(9), VectorClock::from_vec(vec![0, 5, 0])),
        ];
        let copies: Vec<(PageId, VectorClock, std::sync::Arc<[u8]>)> = vec![
            (
                PageId(3),
                VectorClock::from_vec(vec![1, 0, 2]),
                vec![7u8; 64].into(),
            ),
            (
                PageId(9),
                VectorClock::from_vec(vec![0, 5, 0]),
                vec![8u8; 32].into(),
            ),
        ];
        let mut w = ByteWriter::new();
        put_page_needs(&mut w, &needs);
        // Pin: count (8) + per page id (4) + prefixed clock (8 + wire_size).
        let needs_len: usize = 8 + needs
            .iter()
            .map(|(_, v)| 4 + 8 + v.wire_size())
            .sum::<usize>();
        assert_eq!(w.len(), needs_len);
        put_page_copies(&mut w, &copies);
        let copies_len: usize = 8 + copies
            .iter()
            .map(|(_, v, b)| 8 + 8 + v.wire_size() + b.len())
            .sum::<usize>();
        assert_eq!(w.len(), needs_len + copies_len);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_page_needs(&mut r).unwrap(), needs);
        assert_eq!(get_page_copies(&mut r).unwrap(), copies);
        assert!(r.is_exhausted());
    }

    #[test]
    fn ctx_roundtrip_and_length_is_pinned() {
        let ctx = TraceCtx {
            origin: 3,
            seq: 0x1234_5678_9ABC,
            parent: 0xDEAD_BEEF_0000_0001,
            sent_at_ns: 999,     // not encoded
            chaos_delay_ns: 777, // not encoded
        };
        let mut w = ByteWriter::new();
        put_ctx(&mut w, &ctx);
        assert_eq!(w.len(), TraceCtx::WIRE_SIZE);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let got = get_ctx(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(got.origin, ctx.origin);
        assert_eq!(got.seq, ctx.seq);
        assert_eq!(got.parent, ctx.parent);
        assert_eq!(got.flow_id(), ctx.flow_id());
        // Measurement metadata does not survive the wire.
        assert_eq!(got.sent_at_ns, 0);
        assert_eq!(got.chaos_delay_ns, 0);
    }

    #[test]
    fn wn_and_vt_roundtrip() {
        let wn = WriteNotice {
            interval: Interval { proc: 1, seq: 9 },
            pages: vec![PageId(0), PageId(4)],
        };
        let vt = VectorClock::from_vec(vec![3, 1, 4]);
        let mut w = ByteWriter::new();
        put_wn(&mut w, &wn);
        put_vt(&mut w, &vt);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_wn(&mut r).unwrap(), wn);
        assert_eq!(get_vt(&mut r).unwrap(), vt);
    }
}
