//! Integration tests for the base HLRC runtime (no fault tolerance).

use ftdsm::{run, ClusterConfig, HomeAlloc, Process};

fn small(n: usize) -> ClusterConfig {
    ClusterConfig::base(n).with_page_size(256)
}

#[test]
fn lock_protected_counter_is_sequentially_consistent() {
    let report = run(small(4), &[], |p| {
        let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(0));
        for _ in 0..25 {
            p.acquire(7);
            let v = counter.get(p, 0);
            counter.set(p, 0, v + 1);
            p.release(7);
        }
        p.barrier();
        counter.get(p, 0)
    });
    assert_eq!(report.results, vec![100, 100, 100, 100]);
}

#[test]
fn barrier_publishes_all_writes() {
    let report = run(small(4), &[], |p| {
        let n = p.nodes();
        let data = p.alloc_vec::<u64>(n, HomeAlloc::Interleaved);
        let me = p.me();
        data.set(p, me, (me as u64 + 1) * 1000);
        p.barrier();
        (0..n).map(|i| data.get(p, i)).sum::<u64>()
    });
    assert_eq!(report.results, vec![10000; 4]);
}

#[test]
fn multiple_writers_on_one_page_merge_at_home() {
    // Each node writes a disjoint word of the same page (classic false
    // sharing); HLRC's multi-writer diffs must merge all updates.
    let report = run(small(4), &[], |p| {
        let n = p.nodes();
        let data = p.alloc_vec::<u64>(n, HomeAlloc::Node(1));
        let me = p.me();
        data.set(p, me, me as u64 + 1);
        p.barrier();
        (0..n).map(|i| data.get(p, i)).sum::<u64>()
    });
    assert_eq!(report.results, vec![1 + 2 + 3 + 4; 4]);
}

#[test]
fn migratory_data_follows_lock_chain() {
    // A value is passed around under one lock; each node adds its rank+1.
    let report = run(small(3), &[], |p| {
        let cell = p.alloc_vec::<u64>(1, HomeAlloc::Node(2));
        for _round in 0..10 {
            p.acquire(0);
            let v = cell.get(p, 0);
            cell.set(p, 0, v + p.me() as u64 + 1);
            p.release(0);
        }
        p.barrier();
        cell.get(p, 0)
    });
    // 10 rounds x (1 + 2 + 3)
    assert_eq!(report.results, vec![60, 60, 60]);
}

#[test]
fn producer_consumer_through_lock_pair() {
    let report = run(small(2), &[], |p| {
        let buf = p.alloc_vec::<u64>(64, HomeAlloc::Node(0));
        let mut acc = 0u64;
        for round in 0..8u64 {
            if p.me() == 0 {
                p.acquire(1);
                for i in 0..64 {
                    buf.set(p, i, round * 64 + i as u64);
                }
                p.release(1);
            }
            p.barrier();
            if p.me() == 1 {
                p.acquire(1);
                for i in 0..64 {
                    acc += buf.get(p, i);
                }
                p.release(1);
            }
            p.barrier();
        }
        acc
    });
    let expected: u64 = (0..8u64)
        .map(|r| (0..64u64).map(|i| r * 64 + i).sum::<u64>())
        .sum();
    assert_eq!(report.results[1], expected);
}

#[test]
fn raw_byte_accesses_span_pages() {
    let report = run(small(2), &[], |p| {
        let addr = p.alloc(1024, HomeAlloc::Node(0));
        if p.me() == 0 {
            let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
            // Start near the end of the first 256-byte page: spans 3 pages.
            p.write_bytes(addr + 200, &data);
        }
        p.barrier();
        let mut buf = vec![0u8; 600];
        p.read_bytes(addr + 200, &mut buf);
        buf.iter().map(|&b| b as u64).sum::<u64>()
    });
    let expected: u64 = (0..600).map(|i| (i % 251) as u64).sum();
    assert_eq!(report.results, vec![expected, expected]);
}

#[test]
fn traffic_and_breakdown_are_recorded() {
    let report = run(small(3), &[], |p| {
        let data = p.alloc_vec::<u64>(8, HomeAlloc::Node(0));
        if p.me() == 0 {
            for i in 0..8 {
                data.set(p, i, i as u64);
            }
        }
        p.barrier();
        data.get(p, 7)
    });
    let t = report.total_traffic();
    assert!(t.msgs_sent > 0);
    assert!(t.base_bytes_sent > 0);
    // No FT: zero piggyback traffic and zero checkpoints.
    assert_eq!(t.ft_bytes_sent, 0);
    assert_eq!(report.total_ckpts(), 0);
    assert!(report.nodes.iter().all(|n| n.ops > 0));
    assert!(report.shared_bytes > 0);
}

#[test]
fn shared_hash_is_deterministic_for_deterministic_apps() {
    let app = |p: &mut Process| {
        let data = p.alloc_vec::<u64>(32, HomeAlloc::Interleaved);
        let me = p.me();
        for i in 0..32 {
            if i % p.nodes() == me {
                data.set(p, i, (i * i) as u64);
            }
        }
        p.barrier();
        data.get(p, 31)
    };
    let r1 = run(small(3), &[], app);
    let r2 = run(small(3), &[], app);
    assert_eq!(r1.shared_hash, r2.shared_hash);
}

#[test]
fn typed_array_elements_cross_page_boundaries() {
    // [f64; 3] is 24 bytes: elements straddle 256-byte page boundaries.
    let report = run(small(2), &[], |p| {
        let v = p.alloc_vec::<[f64; 3]>(40, HomeAlloc::Node(0));
        if p.me() == 1 {
            for i in 0..40 {
                v.set(p, i, [i as f64, 2.0 * i as f64, -(i as f64)]);
            }
        }
        p.barrier();
        let mut acc = 0.0;
        for i in 0..40 {
            let x = v.get(p, i);
            acc += x[0] + x[1] + x[2];
        }
        acc
    });
    let expected: f64 = (0..40).map(|i| 2.0 * i as f64).sum();
    assert!((report.results[0] - expected).abs() < 1e-9);
}
