//! Property tests for the log-trimming rules (Rules 1–3).
//!
//! The rules are exercised against an independent oracle: an entry may be
//! discarded only if *no peer's restart point can need it*. Restart points
//! are the peers' checkpoint timestamps; a peer `j` restarting replays its
//! execution from `T^j_ckp`, needing
//!   - our write notices for our intervals beyond `T^j_ckp[me]` (Rule 1),
//!   - our grants to `j` with `t_after[j] > T^j_ckp[j]` (Rule 2),
//!   - our diffs beyond the home's retained starting copy (Rule 3).

use std::sync::Arc;

use dsm_page::{Diff, Interval, Page, PageId, VectorClock};
use ftdsm::ft::logs::{RelEntry, VolatileLogs};
use proptest::prelude::*;

const N: usize = 4;
const ME: usize = 0;

fn vt(raw: &[u32]) -> VectorClock {
    VectorClock::from_vec(raw.to_vec())
}

fn diff(seq: u32, page: u32) -> Arc<Diff> {
    let twin = Page::zeroed(64);
    let mut cur = twin.clone();
    cur.write(0, &[seq as u8; 8]);
    Arc::new(Diff::create(PageId(page), Interval { proc: ME, seq }, &twin, &cur).unwrap())
}

proptest! {
    /// Rule 1 never discards a write notice some peer's restart still needs.
    #[test]
    fn rule1_is_safe_against_every_peer(
        n_intervals in 1u32..40,
        peer_ckps in proptest::collection::vec(0u32..40, N - 1),
    ) {
        let mut logs = VolatileLogs::new(ME, N);
        for seq in 1..=n_intervals {
            logs.log_interval(seq, vec![PageId(seq)], &vt(&[0; N]), &[]);
        }
        let bound = *peer_ckps.iter().min().unwrap();
        logs.trim_rule1(bound);
        // Oracle: peer j restarting from checkpoint with entry peer_ckps[j]
        // for us needs our intervals with seq > that entry.
        for &ckp in &peer_ckps {
            for needed_seq in (ckp + 1)..=n_intervals {
                prop_assert!(
                    logs.wn.iter().any(|e| e.seq == needed_seq),
                    "interval {needed_seq} needed by a peer with ckp {ckp} was trimmed (bound {bound})"
                );
            }
        }
    }

    /// Rule 2 never discards a grant the acquirer's restart still needs,
    /// and keeps the boundary entry (t_after == checkpoint timestamp).
    #[test]
    fn rule2_is_safe_for_the_acquirer(
        grants in proptest::collection::vec((1u32..30, 0usize..8), 1..25),
        ckp_entry in 0u32..30,
    ) {
        let mut logs = VolatileLogs::new(ME, N);
        for (i, (t_after_j, lock)) in grants.iter().enumerate() {
            logs.log_rel(1, RelEntry {
                acq_seq: i as u64,
                lock: *lock,
                gen: i as u64,
                req_vt: vt(&[0; N]),
                t_after: {
                    let mut v = vt(&[0; N]);
                    v.set(1, *t_after_j);
                    v
                },
            });
        }
        let mut tckp = vec![vt(&[0; N]); N];
        tckp[1].set(1, ckp_entry);
        logs.trim_rule2(&tckp, &vt(&[0; N]));
        // Oracle: the acquirer restarting from ckp_entry replays every
        // acquire whose t_after[1] >= ckp_entry (its acquisition counter at
        // the checkpoint corresponds to that logical time; the boundary may
        // be needed when no writes separated the checkpoint from the next
        // acquire).
        for (i, (t_after_j, _)) in grants.iter().enumerate() {
            if *t_after_j >= ckp_entry {
                prop_assert!(
                    logs.rel[1].iter().any(|e| e.acq_seq == i as u64),
                    "grant {i} (t_after[1]={t_after_j}) needed beyond ckp {ckp_entry} was trimmed"
                );
            }
        }
    }

    /// Rule 3 (LLT) discards exactly the diffs the starting copy already
    /// contains, and only for pages with a known `p0.v`.
    #[test]
    fn rule3_trims_exactly_below_p0(
        diffs in proptest::collection::vec((1u32..20, 0u32..4), 1..30),
        p0 in proptest::collection::vec(0u32..20, 4),
    ) {
        let mut logs = VolatileLogs::new(ME, N);
        let mut seqs = std::collections::HashMap::new();
        for (_, page) in diffs.iter() {
            // Make per-page seqs unique and increasing.
            let seq = *seqs.entry(*page).and_modify(|s| *s += 1).or_insert(1);
            let mut t = vec![0u32; N];
            t[ME] = seq;
            logs.log_interval(seq, vec![PageId(*page)], &vt(&t), &[diff(seq, *page)]);
        }
        // Only pages 0 and 1 have known starting copies.
        let mut known = std::collections::HashMap::new();
        known.insert(PageId(0), p0[0]);
        known.insert(PageId(1), p0[1]);
        logs.trim_rule3(&known);
        for (page, log) in &logs.diffs {
            for e in log {
                if let Some(bound) = known.get(page) {
                    prop_assert!(e.t.get(ME) > *bound, "kept a diff the starting copy covers");
                }
            }
        }
        // Unknown pages keep everything.
        let kept_unknown: usize =
            logs.diffs.iter().filter(|(p, _)| p.0 >= 2).map(|(_, l)| l.len()).sum();
        let created_unknown = diffs.iter().filter(|(_, p)| *p >= 2).count();
        prop_assert_eq!(kept_unknown, created_unknown);
    }

    /// Counters stay consistent through arbitrary interleavings of appends
    /// and trims: created >= discarded, and the live volatile size never
    /// exceeds created - discarded.
    #[test]
    fn log_counters_are_consistent(
        ops in proptest::collection::vec((0u32..3, 1u32..30), 1..60),
    ) {
        let mut logs = VolatileLogs::new(ME, N);
        let mut seq = 0u32;
        for (op, arg) in ops {
            match op {
                0 => {
                    seq += 1;
                    let mut t = vec![0u32; N];
                    t[ME] = seq;
                    logs.log_interval(seq, vec![PageId(arg % 8)], &vt(&t), &[diff(seq, arg % 8)]);
                }
                1 => logs.trim_rule1(arg),
                _ => {
                    let mut known = std::collections::HashMap::new();
                    for pg in 0..8 {
                        known.insert(PageId(pg), arg);
                    }
                    logs.trim_rule3(&known);
                }
            }
            let c = logs.counters();
            prop_assert!(c.created_bytes >= c.discarded_bytes);
            prop_assert!(logs.volatile_bytes() <= c.created_bytes - c.discarded_bytes);
        }
    }
}
