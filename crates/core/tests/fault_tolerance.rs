//! Fault-tolerance integration tests: logging/checkpointing overhead paths,
//! the OF(L) policy, and crash/recovery correctness for worker, home,
//! lock-manager and barrier-manager failures.

use ftdsm::{run, CkptPolicy, ClusterConfig, FailureSpec, HomeAlloc, Process};

const STEPS: u64 = 12;

/// A deterministic step-structured SPMD workload touching every protocol
/// path: a lock-protected global counter, per-node partitioned writes with
/// interleaved homes (so every node is a home), and a barrier per step.
fn stepped_app(p: &mut Process) -> u64 {
    let n = p.nodes();
    let data = p.alloc_vec::<u64>(64, HomeAlloc::Interleaved);
    let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(0));
    let mut state = 0u64;
    p.run_steps(&mut state, STEPS, |p, state, step| {
        p.acquire(3);
        let v = counter.get(p, 0);
        counter.set(p, 0, v + 1);
        p.release(3);
        let me = p.me();
        for i in 0..64 {
            if i % n == me {
                let cur = data.get(p, i);
                data.set(p, i, cur + (step + 1) * (i as u64 + 1));
            }
        }
        *state += step;
        p.barrier();
    });
    p.barrier();
    counter.get(p, 0) + state
}

fn expected_result(n: u64) -> u64 {
    n * STEPS + (0..STEPS).sum::<u64>()
}

fn ft_cfg(n: usize, policy: CkptPolicy) -> ClusterConfig {
    ClusterConfig::fault_tolerant(n)
        .with_page_size(256)
        .with_policy(policy)
}

#[test]
fn ft_run_matches_base_run() {
    let base = run(ClusterConfig::base(4).with_page_size(256), &[], stepped_app);
    let ft = run(ft_cfg(4, CkptPolicy::EverySteps(3)), &[], stepped_app);
    assert_eq!(base.results, ft.results);
    assert_eq!(base.results, vec![expected_result(4); 4]);
    assert_eq!(base.shared_hash, ft.shared_hash);
    assert!(ft.total_ckpts() > 0, "EverySteps policy must checkpoint");
    // Piggyback traffic flows only in the FT run.
    assert_eq!(base.total_traffic().ft_bytes_sent, 0);
    assert!(ft.total_traffic().ft_bytes_sent > 0);
}

#[test]
fn log_overflow_policy_checkpoints_and_bounds_logs() {
    let report = run(
        ft_cfg(4, CkptPolicy::LogOverflow { l: 0.05 }),
        &[],
        stepped_app,
    );
    assert_eq!(report.results, vec![expected_result(4); 4]);
    assert!(report.total_ckpts() > 0, "OF policy should have triggered");
    for node in &report.nodes {
        let c = node.ft.log_counters;
        assert!(c.created_bytes > 0);
        // Saved logs were written at every checkpoint.
        if node.ft.ckpts_taken > 0 {
            assert!(node.ft.log_bytes_saved > 0);
            assert!(!node.ft.stable_log_curve.is_empty());
        }
    }
}

#[test]
fn never_policy_logs_but_does_not_checkpoint() {
    let report = run(ft_cfg(3, CkptPolicy::Never), &[], stepped_app);
    assert_eq!(report.results, vec![expected_result(3); 3]);
    assert_eq!(report.total_ckpts(), 0);
    assert!(report
        .nodes
        .iter()
        .any(|n| n.ft.log_counters.created_bytes > 0));
}

#[test]
fn manual_checkpoints_fire_at_safe_points() {
    let report = run(ft_cfg(3, CkptPolicy::Manual), &[], |p| {
        let data = p.alloc_vec::<u64>(8, HomeAlloc::Interleaved);
        let mut state = 0u64;
        p.run_steps(&mut state, 6, |p, state, step| {
            data.set(p, p.me(), step);
            if step == 2 {
                p.request_checkpoint();
            }
            *state += 1;
            p.barrier();
        });
        state
    });
    assert_eq!(report.results, vec![6, 6, 6]);
    assert_eq!(report.total_ckpts(), 3, "one checkpoint per node");
}

fn check_recovery(n: usize, victim: usize, at_op: u64, policy: CkptPolicy) {
    let clean = run(ft_cfg(n, policy), &[], stepped_app);
    let crashed = run(
        ft_cfg(n, policy),
        &[FailureSpec {
            node: victim,
            at_op,
        }],
        stepped_app,
    );
    assert_eq!(
        clean.results, crashed.results,
        "results diverge after recovery"
    );
    assert_eq!(
        clean.shared_hash, crashed.shared_hash,
        "shared memory diverges after recovery"
    );
    assert_eq!(
        crashed.nodes[victim].ft.recoveries, 1,
        "victim must have recovered"
    );
}

#[test]
fn recovery_of_worker_before_first_checkpoint() {
    // Crash early: restart from scratch, full replay.
    check_recovery(4, 2, 60, CkptPolicy::EverySteps(4));
}

#[test]
fn recovery_of_worker_from_checkpoint() {
    // Crash late enough that checkpoints exist.
    check_recovery(4, 2, 260, CkptPolicy::EverySteps(3));
}

#[test]
fn recovery_of_barrier_manager_node0() {
    check_recovery(4, 0, 200, CkptPolicy::EverySteps(3));
}

#[test]
fn recovery_of_lock_manager() {
    // Lock 3 is managed by node 3 % n; for n = 4 that is node 3.
    check_recovery(4, 3, 230, CkptPolicy::EverySteps(3));
}

#[test]
fn recovery_under_log_overflow_policy() {
    check_recovery(4, 1, 300, CkptPolicy::LogOverflow { l: 0.05 });
}

#[test]
fn recovery_with_two_sequential_failures() {
    let clean = run(ft_cfg(4, CkptPolicy::EverySteps(3)), &[], stepped_app);
    let crashed = run(
        ft_cfg(4, CkptPolicy::EverySteps(3)),
        &[
            FailureSpec {
                node: 1,
                at_op: 150,
            },
            FailureSpec {
                node: 2,
                at_op: 350,
            },
        ],
        stepped_app,
    );
    assert_eq!(clean.results, crashed.results);
    assert_eq!(clean.shared_hash, crashed.shared_hash);
    assert_eq!(crashed.nodes[1].ft.recoveries, 1);
    assert_eq!(crashed.nodes[2].ft.recoveries, 1);
}

#[test]
fn checkpoint_window_stays_bounded() {
    let report = run(ft_cfg(4, CkptPolicy::EverySteps(2)), &[], stepped_app);
    let wmax = report.max_ckpt_window();
    assert!(wmax >= 1);
    assert!(
        wmax <= 4,
        "CGC failed to bound the checkpoint window: Wmax = {wmax}"
    );
}

#[test]
fn trimming_discards_logs() {
    let report = run(ft_cfg(4, CkptPolicy::EverySteps(2)), &[], stepped_app);
    let discarded: u64 = report
        .nodes
        .iter()
        .map(|n| n.ft.log_counters.discarded_bytes)
        .sum();
    assert!(discarded > 0, "LLT never discarded anything");
}

#[test]
fn recovery_on_a_two_node_cluster() {
    // n = 2 is the tightest case for the mirrored logs: exactly one peer
    // holds every mirror.
    check_recovery(2, 1, 200, CkptPolicy::EverySteps(3));
    check_recovery(2, 0, 200, CkptPolicy::EverySteps(3));
}

#[test]
fn recovery_of_same_node_twice() {
    let clean = run(ft_cfg(4, CkptPolicy::EverySteps(3)), &[], stepped_app);
    let crashed = run(
        ft_cfg(4, CkptPolicy::EverySteps(3)),
        &[
            FailureSpec {
                node: 2,
                at_op: 120,
            },
            FailureSpec {
                node: 2,
                at_op: 320,
            },
        ],
        stepped_app,
    );
    assert_eq!(clean.results, crashed.results);
    assert_eq!(clean.shared_hash, crashed.shared_hash);
    assert_eq!(crashed.nodes[2].ft.recoveries, 2);
}

#[test]
fn recovery_when_crash_is_near_the_end() {
    // The victim's crash lands in the last steps; replay covers nearly the
    // whole (logged) execution.
    check_recovery(4, 1, 430, CkptPolicy::EverySteps(5));
}

#[test]
fn recovery_with_crash_inside_critical_section() {
    // Ops 4..7 of each step sit between acquire and release; sweep a few
    // in-CS offsets to land inside the lock tenure.
    for at_op in [41, 78, 115] {
        let clean = run(ft_cfg(4, CkptPolicy::EverySteps(3)), &[], stepped_app);
        let crashed = run(
            ft_cfg(4, CkptPolicy::EverySteps(3)),
            &[FailureSpec { node: 2, at_op }],
            stepped_app,
        );
        assert_eq!(clean.results, crashed.results, "at_op {at_op}");
        assert_eq!(clean.shared_hash, crashed.shared_hash, "at_op {at_op}");
    }
}

#[test]
fn base_protocol_rejects_failure_injection() {
    let result = std::panic::catch_unwind(|| {
        run(
            ClusterConfig::base(2).with_page_size(256),
            &[FailureSpec { node: 0, at_op: 10 }],
            |p| p.me(),
        )
    });
    assert!(
        result.is_err(),
        "failure injection without FT must be rejected"
    );
}

#[test]
fn at_barrier_policy_aligns_checkpoints_across_nodes() {
    // Every node crosses the same episodes, so AtBarrier(k) gives every
    // node the same checkpoint count without any coordination messages.
    let report = run(ft_cfg(4, CkptPolicy::AtBarrier(4)), &[], stepped_app);
    assert_eq!(report.results, vec![expected_result(4); 4]);
    let counts: Vec<u64> = report.nodes.iter().map(|n| n.ft.ckpts_taken).collect();
    assert!(
        counts.iter().all(|&c| c == counts[0] && c > 0),
        "misaligned: {counts:?}"
    );
}

#[test]
fn recovery_under_at_barrier_policy() {
    check_recovery(4, 2, 260, CkptPolicy::AtBarrier(3));
}
