//! Offline shim for the `criterion` crate.
//!
//! Implements the measurement surface the workspace's benches use —
//! `Criterion`, `Bencher::{iter, iter_custom}`, benchmark groups,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain calibrate-then-sample loop
//! instead of criterion's statistical machinery. Results print one line
//! per benchmark: median ns/iter across samples (plus MB/s when a
//! throughput is set).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.measurement_time, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive MB/s.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Benchmark a function under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmark a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (no-op beyond parity with criterion).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Per-iteration work amount for MB/s reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = t0.elapsed();
    }

    /// Let the routine time itself (e.g. exclude setup): it receives the
    /// iteration count and returns the measured duration.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibration: time a single iteration to size the samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns.first().copied().unwrap_or(median);
    let hi = per_iter_ns.last().copied().unwrap_or(median);

    let mut line = format!(
        "bench {id:<40} {median:>14.1} ns/iter (min {lo:.1}, max {hi:.1}, {iters} iters x {sample_size})"
    );
    if let Some(tp) = throughput {
        let units = match tp {
            Throughput::Bytes(n) | Throughput::Elements(n) => n,
        };
        let rate = units as f64 / median * 1e9 / (1024.0 * 1024.0);
        let label = match tp {
            Throughput::Bytes(_) => "MiB/s",
            Throughput::Elements(_) => "Melem/s",
        };
        line.push_str(&format!("  {rate:>10.1} {label}"));
    }
    println!("{line}");
}

/// Both criterion_group! forms: positional and `name/config/targets`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them,
            // but honour `--list` so test runners see an empty suite.
            if ::std::env::args().any(|a| a == "--list") {
                println!("");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("shim_group");
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(BenchmarkId::new("memcpy", 4096), &4096usize, |b, &n| {
            let src = vec![1u8; n];
            let mut dst = vec![0u8; n];
            b.iter(|| dst.copy_from_slice(&src));
        });
        g.finish();
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        c.bench_function("shim/custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 10))
        });
    }
}
