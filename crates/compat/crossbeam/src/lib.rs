//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver, RecvTimeoutError}`
//! is used by this workspace. Unlike `std::sync::mpsc`, crossbeam receivers
//! are `Sync` and cloneable (MPMC) — the DSM runtime relies on this because
//! an `Arc<Endpoint>` (holding the receiver) is shared between each node's
//! service thread and app thread. The shim therefore implements a small
//! MPMC queue on a `Mutex<VecDeque>` + `Condvar` rather than delegating to
//! std mpsc.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        avail: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel (cloneable, `Sync`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            avail: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.avail.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders += 1;
            drop(st);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake all receivers so they observe the disconnect.
                self.shared.avail.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .avail
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .avail
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .items
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc as StdArc;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn disconnect_observed_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn receiver_is_sync_and_shareable() {
            let (tx, rx) = unbounded();
            let rx = StdArc::new(rx);
            let rx2 = StdArc::clone(&rx);
            let h = std::thread::spawn(move || rx2.recv_timeout(Duration::from_secs(2)).unwrap());
            tx.send(42usize).unwrap();
            assert_eq!(h.join().unwrap(), 42);
            assert!(rx.is_empty());
        }

        #[test]
        fn mpmc_cross_thread_wakeups() {
            let (tx, rx) = unbounded::<usize>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    rx.recv_timeout(Duration::from_secs(5)).unwrap()
                }));
            }
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            let mut got: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
