//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `parking_lot` cannot be fetched. This crate re-implements the
//! small API surface the workspace uses (`Mutex`, `MutexGuard`, `Condvar`,
//! `RwLock`) on top of `std::sync`, with parking_lot's poison-free calling
//! convention (`lock()` returns the guard directly; a poisoned std lock is
//! recovered with `into_inner`, matching parking_lot's behavior of not
//! propagating panics between lock holders).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, parking_lot calling style).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` is only `None` transiently
/// inside [`Condvar::wait_for`] while the guard is parked.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the condition variable (no timeout).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already parked");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block on the condition variable for at most `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already parked");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (std-backed, parking_lot calling style).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(19));
        drop(g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                let r = cv.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out(), "notify lost");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1[0] + r2[1], 3);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
