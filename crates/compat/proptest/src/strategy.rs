//! Value-generation strategies for the proptest shim.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values (must be `Debug` so failing cases can
    /// print their inputs).
    type Value: Debug;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (real proptest's `prop_map`; no
    /// shrinking here, so this is a plain post-generation transform).
    fn prop_map<V: Debug, F: Fn(Self::Value) -> V>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, V: Debug, F: Fn(S::Value) -> V> Strategy for Map<S, F> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy` is object-safe; boxed strategies are used by `prop_oneof!`.
impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns (including NaN / inf) — consumers compare
        // via to_bits().
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
    (S0.0, S1.1, S2.2, S3.3, S4.4);
}

/// Length distribution for [`crate::collection::vec`]: exact or a
/// half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive; start + 1 for the exact case
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing vectors of another strategy's values.
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice among boxed strategies sharing one value type
/// (the expansion of `prop_oneof!`).
pub struct Union<V: Debug> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Build from a non-empty branch list.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges_stay_in_bounds", 0);
        for _ in 0..2000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_sizes_honour_range_and_exact() {
        let mut rng = TestRng::for_case("vec_sizes", 0);
        for _ in 0..500 {
            let v = crate::collection::vec(0u8..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let e = crate::collection::vec(0u8..10, 4).generate(&mut rng);
            assert_eq!(e.len(), 4);
        }
    }

    #[test]
    fn union_draws_every_branch() {
        let u: Union<u8> = Union::new(vec![Box::new(Just(1u8)), Box::new(Just(2u8))]);
        let mut rng = TestRng::for_case("union_draws", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec((0u32..100, any::<bool>()), 0..20);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        let c = strat.generate(&mut TestRng::for_case("det", 4));
        assert_eq!(a, b);
        assert_ne!(
            (a, 3u64),
            (c, 4u64),
            "distinct cases should differ (case index disambiguates)"
        );
    }
}
