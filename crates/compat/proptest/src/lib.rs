//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot download crates, so this shim provides the
//! subset of proptest used by the workspace's property tests: the
//! [`Strategy`] trait, range/`Just`/`any`/tuple/vec/union strategies, the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros, and a deterministic
//! splitmix64-based runner. It does **not** shrink failing inputs; instead
//! the failing case's inputs, case index, and seed are printed so the run
//! can be reproduced exactly (seeds derive from the test name and case
//! index, with `PROPTEST_SHIM_SEED` mixing in an optional override).
//!
//! Case count defaults to 64 and honours the standard `PROPTEST_CASES`
//! environment variable.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `proptest::collection` — vector strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod prelude {
    //! `proptest::prelude` — the glob-import surface.

    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest! { #[test] fn name(arg in strategy, ...) { body } }`
///
/// Expands each function into a plain test that runs `PROPTEST_CASES`
/// (default 64) deterministic cases. On panic, a drop guard prints the
/// generated inputs for the failing case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let guard = $crate::test_runner::FailureReporter::new(
                        stringify!($name),
                        case,
                        {
                            let mut s = ::std::string::String::new();
                            $(
                                s.push_str(&::std::format!(
                                    "  {} = {:?}\n", stringify!($arg), &$arg));
                            )+
                            s
                        },
                    );
                    // The body runs in a closure returning
                    // `Result<(), TestCaseError>` so `return Err(..)` and
                    // `?` work like in real proptest.
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        ::std::panic!("test case failed: {e}");
                    }
                    guard.disarm();
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// `prop_oneof![s1, s2, ...]` — pick one branch uniformly per case.
/// All branches must share the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
