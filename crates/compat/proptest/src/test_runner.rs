//! Deterministic case runner for the proptest shim.

/// Number of cases per property: `PROPTEST_CASES` env var, default 64.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Optional seed override mixed into every case (`PROPTEST_SHIM_SEED`).
fn seed_override() -> u64 {
    std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Why a test case did not pass: an explicit failure (`fail`) or an input
/// the property cannot use (`reject`). The shim treats both as failures
/// when returned from a property body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The generated input was unusable.
    Reject(String),
}

impl TestCaseError {
    /// An explicit property failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// splitmix64 — tiny, fast, and deterministic across platforms.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name + case index (+ env override), so each case
    /// of each property draws an independent, reproducible stream.
    pub fn for_case(test_name: &str, case: usize) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= seed_override();
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drop guard that prints the generated inputs when a property panics.
/// `disarm` is called after the body runs clean; if the body panics the
/// guard drops while `std::thread::panicking()` and reports.
pub struct FailureReporter {
    test: &'static str,
    case: usize,
    inputs: String,
    armed: bool,
}

impl FailureReporter {
    /// Arm a reporter for one case.
    pub fn new(test: &'static str, case: usize, inputs: String) -> Self {
        FailureReporter {
            test,
            case,
            inputs,
            armed: true,
        }
    }

    /// The case passed; drop silently.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest-shim: property `{}` failed at case {} \
                 (rerun with PROPTEST_CASES={} to stop at it) with inputs:\n{}",
                self.test,
                self.case,
                self.case + 1,
                self.inputs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn case_count_default() {
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(case_count(), 64);
        }
    }
}
