//! Water-Nsquared — O(n²) molecular dynamics, after SPLASH-2
//! `water-nsquared`.
//!
//! Simulates a box of molecules with an all-pairs short-range force and a
//! cutoff radius. Molecules are block-distributed; each node computes the
//! forces on its own block by reading every other molecule's position (the
//! O(n²) read traffic that gives the original its small-footprint /
//! high-read profile), updates its block, and contributes to two
//! lock-protected global reductions (potential energy and virial) per step.

use ftdsm::{HomeAlloc, Process};

use crate::{fold_f64, hash_unit};

/// Water-Nsquared parameters.
#[derive(Debug, Clone)]
pub struct WaterNsqParams {
    /// Number of molecules.
    pub molecules: usize,
    /// Time-steps.
    pub steps: u64,
    /// Cutoff radius (box is the unit cube, minimum-image convention).
    pub cutoff: f64,
    /// Integration step.
    pub dt: f64,
    /// Seed.
    pub seed: u64,
}

impl WaterNsqParams {
    /// Unit-test scale.
    pub fn tiny() -> Self {
        WaterNsqParams {
            molecules: 32,
            steps: 4,
            cutoff: 0.45,
            dt: 1e-4,
            seed: 11,
        }
    }

    /// Integration-test scale.
    pub fn small() -> Self {
        WaterNsqParams {
            molecules: 96,
            steps: 6,
            cutoff: 0.4,
            dt: 1e-4,
            seed: 11,
        }
    }

    /// Benchmark scale (the paper ran 19 683 molecules).
    pub fn paper_scaled() -> Self {
        WaterNsqParams {
            molecules: 1024,
            steps: 20,
            cutoff: 0.3,
            dt: 1e-4,
            seed: 11,
        }
    }
}

/// Minimum-image displacement in the unit box.
fn min_image(d: f64) -> f64 {
    if d > 0.5 {
        d - 1.0
    } else if d < -0.5 {
        d + 1.0
    } else {
        d
    }
}

/// Lennard-Jones-style pair force with cutoff; returns (force scale,
/// potential).
fn pair(d2: f64) -> (f64, f64) {
    // Scaled so the dynamics stay bounded at unit density.
    let inv2 = 1e-4 / d2.max(1e-6);
    let inv6 = inv2 * inv2 * inv2;
    let f = 24.0 * inv6 * (2.0 * inv6 - 1.0) / d2.max(1e-6);
    let pot = 4.0 * inv6 * (inv6 - 1.0);
    (f, pot)
}

/// Run Water-Nsquared; every node returns the same checksum.
pub fn water_nsq(p: &mut Process, params: &WaterNsqParams) -> u64 {
    let n = p.nodes();
    let me = p.me();
    let nm = params.molecules;

    let pos = p.alloc_vec::<[f64; 3]>(nm, HomeAlloc::Blocked);
    let vel = p.alloc_vec::<[f64; 3]>(nm, HomeAlloc::Blocked);
    // Read-mostly per-molecule descriptors (the original's rigid-molecule
    // geometry and force tables): most of the shared footprint, written
    // once — this is what makes the original's per-step update volume a
    // small fraction of its footprint.
    const DESC: usize = 250;
    let desc = p.alloc_vec::<f64>(nm * DESC, HomeAlloc::Blocked);
    // Two reduction slots per node (energy, virial): lock-protected like
    // the original's INTERF/POTENG sums, but per-node slots keep the folded
    // total bit-deterministic under any lock acquisition order.
    let reductions = p.alloc_vec::<f64>(2 * n, HomeAlloc::Node(0));

    let per = nm.div_ceil(n);
    let m0 = (me * per).min(nm);
    let m1 = ((me + 1) * per).min(nm);

    p.init_phase(|p| {
        for i in m0..m1 {
            pos.set(
                p,
                i,
                [
                    hash_unit(params.seed, 3 * i as u64),
                    hash_unit(params.seed, 3 * i as u64 + 1),
                    hash_unit(params.seed, 3 * i as u64 + 2),
                ],
            );
            vel.set(p, i, [0.0, 0.0, 0.0]);
        }
        for i in m0..m1 {
            for k in 0..DESC {
                desc.set(
                    p,
                    i * DESC + k,
                    hash_unit(params.seed ^ 0xD5, (i * DESC + k) as u64),
                );
            }
        }
        reductions.set(p, 2 * me, 0.0);
        reductions.set(p, 2 * me + 1, 0.0);
    });

    let cutoff2 = params.cutoff * params.cutoff;
    let dt = params.dt;
    let mut state = 0u64;
    p.run_steps(&mut state, params.steps, |p, _state, _step| {
        // Snapshot every position (O(n²) pair loop reads them repeatedly,
        // so read each page once into a local copy, like the original's
        // per-processor copy loop).
        let all: Vec<[f64; 3]> = (0..nm).map(|i| pos.get(p, i)).collect();

        let mut pot = 0.0f64;
        let mut vir = 0.0f64;
        let mut forces = vec![[0.0f64; 3]; m1 - m0];
        for i in m0..m1 {
            let pi = all[i];
            // Consult this molecule's descriptor (read-only shared data).
            let scale = 1.0 + 1e-6 * desc.get(p, i * DESC + (_step as usize % DESC));
            let f = &mut forces[i - m0];
            for (j, pj) in all.iter().enumerate() {
                if j == i {
                    continue;
                }
                let dx = min_image(pj[0] - pi[0]);
                let dy = min_image(pj[1] - pi[1]);
                let dz = min_image(pj[2] - pi[2]);
                let d2 = dx * dx + dy * dy + dz * dz;
                if d2 >= cutoff2 {
                    continue;
                }
                let (fs, e) = pair(d2);
                let fs = fs * scale;
                f[0] -= fs * dx;
                f[1] -= fs * dy;
                f[2] -= fs * dz;
                pot += 0.5 * e;
                vir += 0.5 * fs * d2;
            }
        }

        // Global reductions under a lock (INTERF/POTENG in the original).
        p.acquire(2);
        let e = reductions.get(p, 2 * me);
        reductions.set(p, 2 * me, e + pot);
        let v = reductions.get(p, 2 * me + 1);
        reductions.set(p, 2 * me + 1, v + vir);
        p.release(2);
        // Phase barrier: everyone finishes reading positions before anyone
        // writes them (the original separates INTERF from the position
        // update the same way).
        p.barrier();

        // Integrate own block.
        for i in m0..m1 {
            let f = forces[i - m0];
            let mut v = vel.get(p, i);
            let mut x = pos.get(p, i);
            for k in 0..3 {
                v[k] += f[k] * dt;
                x[k] = (x[k] + v[k] * dt).rem_euclid(1.0);
            }
            vel.set(p, i, v);
            pos.set(p, i, x);
        }
        p.barrier();
    });

    p.barrier();
    let mut sum = 0u64;
    for i in 0..nm {
        let x = pos.get(p, i);
        sum = fold_f64(fold_f64(fold_f64(sum, x[0]), x[1]), x[2]);
    }
    for k in 0..2 * n {
        sum = fold_f64(sum, reductions.get(p, k));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_image_wraps_into_half_box() {
        assert_eq!(min_image(0.6), -0.4);
        assert_eq!(min_image(-0.6), 0.4);
        assert_eq!(min_image(0.3), 0.3);
    }

    #[test]
    fn pair_force_is_finite_and_attractive_at_range() {
        let (f, e) = pair(0.04);
        assert!(f.is_finite() && e.is_finite());
        // At moderate distance the force scale is negative (attraction).
        assert!(f < 0.0);
    }
}
