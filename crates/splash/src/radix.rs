//! Radix — parallel radix sort, after SPLASH-2 `radix`.
//!
//! Sorts an array of integer keys one digit at a time. Each pass: nodes
//! histogram their block of keys (local work), publish per-node histograms,
//! compute global digit offsets from everyone's histograms (all-to-all read
//! sharing of small arrays), and permute their keys into the destination
//! array (scattered remote writes — the pattern that distinguishes radix
//! from the stencil/MD codes: most writes land on pages homed elsewhere).

use ftdsm::{HomeAlloc, Process};

use crate::hash_unit;

/// Radix-sort parameters.
#[derive(Debug, Clone)]
pub struct RadixParams {
    /// Number of keys.
    pub keys: usize,
    /// Radix bits per pass.
    pub bits: u32,
    /// Total key bits (passes = key_bits / bits).
    pub key_bits: u32,
    /// Seed for the input keys.
    pub seed: u64,
}

impl RadixParams {
    /// Unit-test scale.
    pub fn tiny() -> Self {
        RadixParams {
            keys: 256,
            bits: 4,
            key_bits: 16,
            seed: 77,
        }
    }

    /// Benchmark scale.
    pub fn paper_scaled() -> Self {
        RadixParams {
            keys: 8192,
            bits: 8,
            key_bits: 24,
            seed: 77,
        }
    }
}

/// Run the radix sort; every node returns the same checksum of the sorted
/// keys (which the function also verifies are non-decreasing).
pub fn radix(p: &mut Process, params: &RadixParams) -> u64 {
    let n = p.nodes();
    let me = p.me();
    let nk = params.keys;
    let buckets = 1usize << params.bits;
    let passes = params.key_bits.div_ceil(params.bits);

    // Double-buffered key arrays; per-node histograms.
    let a = p.alloc_vec::<u64>(nk, HomeAlloc::Blocked);
    let b = p.alloc_vec::<u64>(nk, HomeAlloc::Blocked);
    let hist = p.alloc_vec::<u64>(n * buckets, HomeAlloc::Interleaved);

    let per = nk.div_ceil(n);
    let k0 = (me * per).min(nk);
    let k1 = ((me + 1) * per).min(nk);

    p.init_phase(|p| {
        for i in k0..k1 {
            let key = (hash_unit(params.seed, i as u64) * (1u64 << params.key_bits) as f64) as u64;
            a.set(p, i, key);
        }
    });

    let mut state = 0u64;
    p.run_steps(&mut state, passes as u64, |p, _state, pass| {
        let (src, dst) = if pass % 2 == 0 { (&a, &b) } else { (&b, &a) };
        let shift = pass as u32 * params.bits;
        let mask = (buckets - 1) as u64;

        // Phase 1: local histogram, published to this node's slots.
        let keys: Vec<u64> = (k0..k1).map(|i| src.get(p, i)).collect();
        let mut local = vec![0u64; buckets];
        for &k in &keys {
            local[((k >> shift) & mask) as usize] += 1;
        }
        for (d, &c) in local.iter().enumerate() {
            hist.set(p, me * buckets + d, c);
        }
        p.barrier();

        // Phase 2: global offsets. Keys of digit d from node r go after all
        // keys with smaller digits and after same-digit keys of lower ranks
        // (a stable, deterministic placement).
        let all: Vec<u64> = (0..n * buckets).map(|i| hist.get(p, i)).collect();
        let mut offset = vec![0u64; buckets];
        let mut running = 0u64;
        for (d, slot) in offset.iter_mut().enumerate() {
            for r in 0..n {
                if r == me {
                    *slot = running;
                }
                running += all[r * buckets + d];
            }
        }

        // Phase 3: permute own keys into the destination array (scattered
        // writes to remote-homed pages).
        let mut cursor = offset;
        for &k in &keys {
            let d = ((k >> shift) & mask) as usize;
            dst.set(p, cursor[d] as usize, k);
            cursor[d] += 1;
        }
        p.barrier();
    });

    p.barrier();
    let fin = if passes.is_multiple_of(2) { &a } else { &b };
    let mut sum = 0u64;
    let mut prev = 0u64;
    for i in 0..nk {
        let k = fin.get(p, i);
        assert!(k >= prev, "radix output not sorted at index {i}");
        prev = k;
        sum = sum.rotate_left(5) ^ k.wrapping_mul(0x9E3779B97F4A7C15);
    }
    sum
}
