//! Synthetic kernels: regular and pathological sharing patterns used by the
//! tests and the ablation benchmarks.

use ftdsm::{HomeAlloc, Process};

use crate::fold_f64;

/// Parameters for the Jacobi 5-point stencil kernel.
#[derive(Debug, Clone)]
pub struct JacobiParams {
    /// Grid side (rows == cols == side).
    pub side: usize,
    /// Sweeps to run.
    pub steps: u64,
}

impl Default for JacobiParams {
    fn default() -> Self {
        JacobiParams {
            side: 64,
            steps: 10,
        }
    }
}

/// Jacobi iteration on a square grid with row-blocked distribution:
/// nearest-neighbor sharing at slab boundaries, two barriers per sweep.
/// Returns a bit-exact checksum of the final grid.
pub fn jacobi(p: &mut Process, params: &JacobiParams) -> u64 {
    let n = p.nodes();
    let me = p.me();
    let side = params.side;
    let a = p.alloc_vec::<f64>(side * side, HomeAlloc::Blocked);
    let b = p.alloc_vec::<f64>(side * side, HomeAlloc::Blocked);

    let rows_per = side.div_ceil(n);
    let r0 = (me * rows_per).min(side);
    let r1 = ((me + 1) * rows_per).min(side);

    // Boundary condition: hot left edge, written once by its owners.
    p.init_phase(|p| {
        for r in r0..r1 {
            a.set(p, r * side, 100.0);
            b.set(p, r * side, 100.0);
        }
    });

    let mut state = 0u64;
    p.run_steps(&mut state, params.steps, |p, _state, step| {
        let (src, dst) = if step % 2 == 0 { (&a, &b) } else { (&b, &a) };
        for r in r0.max(1)..r1.min(side - 1) {
            for c in 1..side - 1 {
                let v = 0.25
                    * (src.get(p, (r - 1) * side + c)
                        + src.get(p, (r + 1) * side + c)
                        + src.get(p, r * side + c - 1)
                        + src.get(p, r * side + c + 1));
                dst.set(p, r * side + c, v);
            }
        }
        p.barrier();
    });

    p.barrier();
    let fin = if params.steps.is_multiple_of(2) {
        &a
    } else {
        &b
    };
    let mut sum = 0u64;
    for i in 0..side * side {
        sum = fold_f64(sum, fin.get(p, i));
    }
    sum
}

/// Migratory-data kernel: a cache line of counters chases a single lock
/// around the cluster. Returns the final total.
pub fn migratory(p: &mut Process, rounds: u64) -> u64 {
    let cell = p.alloc_vec::<u64>(8, HomeAlloc::Node(0));
    let mut state = 0u64;
    p.run_steps(&mut state, rounds, |p, _state, _step| {
        p.acquire(0);
        for i in 0..8 {
            let v = cell.get(p, i);
            cell.set(p, i, v + p.me() as u64 + 1);
        }
        p.release(0);
        p.barrier();
    });
    p.barrier();
    (0..8).map(|i| cell.get(p, i)).sum()
}

/// Producer/consumer kernel: node 0 fills a buffer each round, every other
/// node sums it. Returns each node's accumulated sum (node 0 returns the
/// expected value so all results match).
pub fn producer_consumer(p: &mut Process, rounds: u64, items: usize) -> u64 {
    let buf = p.alloc_vec::<u64>(items, HomeAlloc::Node(0));
    let mut acc = 0u64;
    p.run_steps(&mut acc, rounds, |p, acc, round| {
        if p.me() == 0 {
            for i in 0..items {
                buf.set(p, i, round * items as u64 + i as u64);
            }
        }
        p.barrier();
        let mut s = 0u64;
        for i in 0..items {
            s += buf.get(p, i);
        }
        *acc += s;
        p.barrier();
    });
    acc
}
