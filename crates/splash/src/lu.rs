//! LU — blocked dense LU factorization (no pivoting), after SPLASH-2 `lu`.
//!
//! The matrix is divided into B×B blocks scattered over the nodes. Each
//! outer iteration k factorizes the diagonal block, updates the perimeter
//! row/column blocks, then the trailing interior — three barrier-separated
//! phases with a read pattern (everyone reads the pivot row/column blocks)
//! quite different from the molecular-dynamics codes: single-writer blocks,
//! heavy read sharing of the pivot data.

use ftdsm::{HomeAlloc, Process, SharedVec};

use crate::{fold_f64, hash_unit};

/// LU parameters.
#[derive(Debug, Clone)]
pub struct LuParams {
    /// Matrix dimension (multiple of `block`).
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Seed for the (diagonally dominant) input matrix.
    pub seed: u64,
}

impl LuParams {
    /// Unit-test scale.
    pub fn tiny() -> Self {
        LuParams {
            n: 24,
            block: 4,
            seed: 31,
        }
    }

    /// Benchmark scale.
    pub fn paper_scaled() -> Self {
        LuParams {
            n: 192,
            block: 16,
            seed: 31,
        }
    }
}

struct Ctx {
    a: SharedVec<f64>,
    n: usize,
    block: usize,
    nb: usize,
}

impl Ctx {
    fn owner(&self, bi: usize, bj: usize, nodes: usize) -> usize {
        (bi + bj * self.nb) % nodes
    }

    fn read_block(&self, p: &mut Process, bi: usize, bj: usize) -> Vec<f64> {
        let b = self.block;
        let mut out = vec![0.0; b * b];
        for r in 0..b {
            for c in 0..b {
                out[r * b + c] = self.a.get(p, (bi * b + r) * self.n + bj * b + c);
            }
        }
        out
    }

    fn write_block(&self, p: &mut Process, bi: usize, bj: usize, data: &[f64]) {
        let b = self.block;
        for r in 0..b {
            for c in 0..b {
                self.a
                    .set(p, (bi * b + r) * self.n + bj * b + c, data[r * b + c]);
            }
        }
    }
}

/// In-place LU of a dense `b x b` block (row-major).
fn factor_block(d: &mut [f64], b: usize) {
    for k in 0..b {
        let pivot = d[k * b + k];
        for i in k + 1..b {
            d[i * b + k] /= pivot;
            for j in k + 1..b {
                d[i * b + j] -= d[i * b + k] * d[k * b + j];
            }
        }
    }
}

/// Solve `L * X = A` where `l` holds the unit-lower factor (row block).
fn update_row(l: &[f64], a: &mut [f64], b: usize) {
    for k in 0..b {
        for i in k + 1..b {
            let m = l[i * b + k];
            for j in 0..b {
                a[i * b + j] -= m * a[k * b + j];
            }
        }
    }
}

/// Solve `X * U = A` where `u` holds the upper factor (column block).
fn update_col(u: &[f64], a: &mut [f64], b: usize) {
    for k in 0..b {
        let pivot = u[k * b + k];
        for i in 0..b {
            a[i * b + k] /= pivot;
            for j in k + 1..b {
                let m = u[k * b + j];
                a[i * b + j] -= a[i * b + k] * m;
            }
        }
    }
}

/// `a -= l * u` (interior update).
fn update_interior(l: &[f64], u: &[f64], a: &mut [f64], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let m = l[i * b + k];
            if m == 0.0 {
                continue;
            }
            for j in 0..b {
                a[i * b + j] -= m * u[k * b + j];
            }
        }
    }
}

/// Run the blocked LU factorization; every node returns the same checksum
/// of the factored matrix.
pub fn lu(p: &mut Process, params: &LuParams) -> u64 {
    let nodes = p.nodes();
    let me = p.me();
    let n = params.n;
    let b = params.block;
    assert!(
        n.is_multiple_of(b),
        "matrix dimension must be a multiple of the block size"
    );
    let nb = n / b;

    let a = p.alloc_vec::<f64>(n * n, HomeAlloc::Blocked);
    let ctx = Ctx { a, n, block: b, nb };

    // Seeded, diagonally dominant input so factorization is stable without
    // pivoting; each element written by its block owner.
    p.init_phase(|p| {
        for bi in 0..nb {
            for bj in 0..nb {
                if ctx.owner(bi, bj, nodes) != me {
                    continue;
                }
                for r in 0..b {
                    for c in 0..b {
                        let (i, j) = (bi * b + r, bj * b + c);
                        let v = hash_unit(params.seed, (i * n + j) as u64) - 0.5;
                        let v = if i == j { v + n as f64 } else { v };
                        ctx.a.set(p, i * n + j, v);
                    }
                }
            }
        }
    });

    let mut state = 0u64;
    p.run_steps(&mut state, nb as u64, |p, _state, step| {
        let k = step as usize;
        // Phase 1: factorize the diagonal block.
        if ctx.owner(k, k, nodes) == me {
            let mut d = ctx.read_block(p, k, k);
            factor_block(&mut d, b);
            ctx.write_block(p, k, k, &d);
        }
        p.barrier();
        // Phase 2: perimeter updates read the diagonal block.
        let diag = ctx.read_block(p, k, k);
        for t in k + 1..nb {
            if ctx.owner(k, t, nodes) == me {
                let mut blk = ctx.read_block(p, k, t);
                update_row(&diag, &mut blk, b);
                ctx.write_block(p, k, t, &blk);
            }
            if ctx.owner(t, k, nodes) == me {
                let mut blk = ctx.read_block(p, t, k);
                update_col(&diag, &mut blk, b);
                ctx.write_block(p, t, k, &blk);
            }
        }
        p.barrier();
        // Phase 3: interior updates read the pivot row and column blocks.
        for bi in k + 1..nb {
            for bj in k + 1..nb {
                if ctx.owner(bi, bj, nodes) != me {
                    continue;
                }
                let l = ctx.read_block(p, bi, k);
                let u = ctx.read_block(p, k, bj);
                let mut blk = ctx.read_block(p, bi, bj);
                update_interior(&l, &u, &mut blk, b);
                ctx.write_block(p, bi, bj, &blk);
            }
        }
        p.barrier();
    });

    p.barrier();
    let mut sum = 0u64;
    for i in 0..n * n {
        sum = fold_f64(sum, ctx.a.get(p, i));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: unblocked LU on a plain matrix.
    fn reference_lu(a: &mut [f64], n: usize) {
        for k in 0..n {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                a[i * n + k] /= pivot;
                for j in k + 1..n {
                    a[i * n + j] -= a[i * n + k] * a[k * n + j];
                }
            }
        }
    }

    /// The blocked kernels compose to the same factorization as the
    /// unblocked reference.
    #[test]
    fn blocked_kernels_match_unblocked_lu() {
        let n = 8;
        let b = 4;
        let nb = n / b;
        let mut a: Vec<f64> = (0..n * n)
            .map(|i| {
                let v = hash_unit(3, i as u64) - 0.5;
                if i / n == i % n {
                    v + n as f64
                } else {
                    v
                }
            })
            .collect();
        let mut reference = a.clone();
        reference_lu(&mut reference, n);

        let get = |m: &Vec<f64>, bi: usize, bj: usize| -> Vec<f64> {
            let mut out = vec![0.0; b * b];
            for r in 0..b {
                for c in 0..b {
                    out[r * b + c] = m[(bi * b + r) * n + bj * b + c];
                }
            }
            out
        };
        let put = |m: &mut Vec<f64>, bi: usize, bj: usize, d: &[f64]| {
            for r in 0..b {
                for c in 0..b {
                    m[(bi * b + r) * n + bj * b + c] = d[r * b + c];
                }
            }
        };
        for k in 0..nb {
            let mut d = get(&a, k, k);
            factor_block(&mut d, b);
            put(&mut a, k, k, &d);
            let diag = d;
            for t in k + 1..nb {
                let mut row = get(&a, k, t);
                update_row(&diag, &mut row, b);
                put(&mut a, k, t, &row);
                let mut col = get(&a, t, k);
                update_col(&diag, &mut col, b);
                put(&mut a, t, k, &col);
            }
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    let l = get(&a, bi, k);
                    let u = get(&a, k, bj);
                    let mut blk = get(&a, bi, bj);
                    update_interior(&l, &u, &mut blk, b);
                    put(&mut a, bi, bj, &blk);
                }
            }
        }
        for (x, y) in a.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }
}
