#![warn(missing_docs)]
//! SPLASH-2-style workloads for the fault-tolerant DSM.
//!
//! Faithful scaled-down reimplementations of the three applications the
//! paper evaluates — Barnes (hierarchical N-body), Water-Nsquared (O(n²)
//! molecular dynamics) and Water-Spatial (cell-decomposition molecular
//! dynamics) — plus synthetic kernels. The physics is simplified
//! (softened gravity / Lennard-Jones-style pair forces); what matters for
//! the reproduction is the *memory access, update volume and
//! synchronization structure*, which follows the originals:
//!
//! * **Barnes**: irregular accesses, several barriers per step, imbalanced
//!   update volume (the octree is rebuilt each step and homed on node 0).
//! * **Water-Nsquared**: small shared footprint, O(n²) read traffic,
//!   lock-protected global reductions.
//! * **Water-Spatial**: large regular footprint, nearest-neighbor sharing
//!   between spatial slabs.
//!
//! Every workload is deterministic (seeded, fixed traversal order), keeps
//! all simulation state in shared memory (so recovery needs no private
//! state), is step-structured via [`ftdsm::Process::run_steps`], and
//! returns a bit-exact checksum used by the correctness tests.

pub mod barnes;
pub mod kernels;
pub mod lu;
pub mod radix;
pub mod water_nsq;
pub mod water_sp;

pub use barnes::{barnes, BarnesParams};
pub use kernels::{jacobi, migratory, producer_consumer, JacobiParams};
pub use lu::{lu, LuParams};
pub use radix::{radix, RadixParams};
pub use water_nsq::{water_nsq, WaterNsqParams};
pub use water_sp::{water_sp, WaterSpParams};

/// Bit-exact checksum folding for f64 values (deterministic across runs,
/// unlike summing floats from different nodes in racy order).
pub fn fold_f64(acc: u64, v: f64) -> u64 {
    acc.rotate_left(7) ^ v.to_bits()
}

/// Deterministic per-index pseudo-random f64 in [0, 1): splitmix64-based.
pub fn hash_unit(seed: u64, idx: u64) -> f64 {
    let mut z = seed.wrapping_add(idx.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_unit_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let v = hash_unit(42, i);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, hash_unit(42, i));
        }
        assert_ne!(hash_unit(42, 1), hash_unit(43, 1));
    }

    #[test]
    fn fold_is_order_sensitive() {
        let a = fold_f64(fold_f64(0, 1.0), 2.0);
        let b = fold_f64(fold_f64(0, 2.0), 1.0);
        assert_ne!(a, b);
    }
}
