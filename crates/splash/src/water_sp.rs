//! Water-Spatial — cell-decomposition molecular dynamics, after SPLASH-2
//! `water-spatial`.
//!
//! The same physical problem as Water-Nsquared solved with a 3-D spatial
//! cell grid: molecules only interact with the 27-cell neighborhood, so a
//! node owning a slab of cells shares only slab-boundary pages with its
//! neighbors. This gives the original its large, regular footprint and its
//! very regular per-iteration update pattern (in the paper, the
//! log-overflow policy checkpoints it every iteration and trimming settles
//! into a steady state after three checkpoints).

use ftdsm::{HomeAlloc, Process};

use crate::{fold_f64, hash_unit};

/// Water-Spatial parameters.
#[derive(Debug, Clone)]
pub struct WaterSpParams {
    /// Cells per side (grid is side³).
    pub side: usize,
    /// Molecules per cell.
    pub per_cell: usize,
    /// Time-steps.
    pub steps: u64,
    /// Integration step.
    pub dt: f64,
    /// Seed.
    pub seed: u64,
}

impl WaterSpParams {
    /// Unit-test scale.
    pub fn tiny() -> Self {
        WaterSpParams {
            side: 4,
            per_cell: 2,
            steps: 3,
            dt: 1e-4,
            seed: 23,
        }
    }

    /// Integration-test scale.
    pub fn small() -> Self {
        WaterSpParams {
            side: 6,
            per_cell: 2,
            steps: 4,
            dt: 1e-4,
            seed: 23,
        }
    }

    /// Benchmark scale (the paper ran 256 k molecules; the footprint here
    /// is deliberately the largest of the three applications, as there).
    pub fn paper_scaled() -> Self {
        WaterSpParams {
            side: 10,
            per_cell: 4,
            steps: 8,
            dt: 1e-4,
            seed: 23,
        }
    }
}

/// Run Water-Spatial; every node returns the same checksum.
pub fn water_sp(p: &mut Process, params: &WaterSpParams) -> u64 {
    let n = p.nodes();
    let me = p.me();
    let side = params.side;
    let pc = params.per_cell;
    let cells = side * side * side;
    let nm = cells * pc;
    let cell_w = 1.0 / side as f64;

    // Molecule arrays indexed cell-major: molecule k of cell c is at
    // c * per_cell + k. Blocked distribution assigns contiguous z-slabs of
    // cells to nodes (cells are numbered z-major).
    let pos = p.alloc_vec::<[f64; 3]>(nm, HomeAlloc::Blocked);
    let vel = p.alloc_vec::<[f64; 3]>(nm, HomeAlloc::Blocked);
    // Read-mostly per-molecule descriptors (see water_nsq): the bulk of the
    // footprint, written once. Water-Spatial has the largest footprint of
    // the three applications, as in the paper.
    const DESC: usize = 40;
    let desc = p.alloc_vec::<f64>(nm * DESC, HomeAlloc::Blocked);
    // Per-node reduction slots under a lock (see water_nsq for rationale).
    let reductions = p.alloc_vec::<f64>(n, HomeAlloc::Node(0));

    // Slab ownership over the z axis (balanced split: every node owns at
    // least one slab when side >= n).
    let z0 = me * side / n;
    let z1 = (me + 1) * side / n;
    let cell_of = |x: usize, y: usize, z: usize| (z * side + y) * side + x;

    p.init_phase(|p| {
        for z in z0..z1 {
            for y in 0..side {
                for x in 0..side {
                    let c = cell_of(x, y, z);
                    for k in 0..pc {
                        let i = c * pc + k;
                        // Place molecules inside their cell with a jitter.
                        let j = |d: u64| hash_unit(params.seed, 3 * i as u64 + d) * 0.9 + 0.05;
                        pos.set(
                            p,
                            i,
                            [
                                (x as f64 + j(0)) * cell_w,
                                (y as f64 + j(1)) * cell_w,
                                (z as f64 + j(2)) * cell_w,
                            ],
                        );
                        vel.set(p, i, [0.0, 0.0, 0.0]);
                    }
                }
            }
        }
        for z in z0..z1 {
            for y in 0..side {
                for x in 0..side {
                    let c = cell_of(x, y, z);
                    for k in 0..pc {
                        let i = c * pc + k;
                        for d in 0..DESC {
                            desc.set(
                                p,
                                i * DESC + d,
                                hash_unit(params.seed ^ 0xA7, (i * DESC + d) as u64),
                            );
                        }
                    }
                }
            }
        }
        reductions.set(p, me, 0.0);
    });

    let dt = params.dt;
    let cutoff2 = (cell_w * 0.9) * (cell_w * 0.9);
    let mut state = 0u64;
    p.run_steps(&mut state, params.steps, |p, _state, _step| {
        let mut pot = 0.0f64;
        let mut forces = vec![[0.0f64; 3]; (z1 - z0) * side * side * pc];
        let base = cell_of(0, 0, z0) * pc;
        for z in z0..z1 {
            for y in 0..side {
                for x in 0..side {
                    let c = cell_of(x, y, z);
                    for k in 0..pc {
                        let i = c * pc + k;
                        let pi = pos.get(p, i);
                        let dscale = 1.0 + 1e-6 * desc.get(p, i * DESC + (_step as usize % DESC));
                        let f = &mut forces[i - base];
                        // 27-cell neighborhood, periodic.
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    let nx = (x as i64 + dx).rem_euclid(side as i64) as usize;
                                    let ny = (y as i64 + dy).rem_euclid(side as i64) as usize;
                                    let nz = (z as i64 + dz).rem_euclid(side as i64) as usize;
                                    let nc = cell_of(nx, ny, nz);
                                    for nk in 0..pc {
                                        let j = nc * pc + nk;
                                        if j == i {
                                            continue;
                                        }
                                        let pj = pos.get(p, j);
                                        let mut d = [0.0f64; 3];
                                        let mut d2 = 0.0;
                                        for (a, v) in d.iter_mut().enumerate() {
                                            let mut dd = pj[a] - pi[a];
                                            if dd > 0.5 {
                                                dd -= 1.0;
                                            } else if dd < -0.5 {
                                                dd += 1.0;
                                            }
                                            *v = dd;
                                            d2 += dd * dd;
                                        }
                                        if d2 >= cutoff2 || d2 < 1e-12 {
                                            continue;
                                        }
                                        // Soft repulsive pair force.
                                        let inv = dscale * 1e-6 / (d2 * d2);
                                        for (a, dd) in d.iter().enumerate() {
                                            f[a] -= inv * dd;
                                        }
                                        pot += 0.5 * inv * d2;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        p.acquire(4);
        let e = reductions.get(p, me);
        reductions.set(p, me, e + pot);
        p.release(4);
        // Phase barrier: reads of neighbor slabs complete before any
        // position is rewritten.
        p.barrier();

        // Integrate own molecules (positions stay within their cell's
        // vicinity for the short runs we do; ownership is static, like the
        // original between its re-binning phases).
        for z in z0..z1 {
            for y in 0..side {
                for x in 0..side {
                    let c = cell_of(x, y, z);
                    for k in 0..pc {
                        let i = c * pc + k;
                        let f = forces[i - base];
                        let mut v = vel.get(p, i);
                        let mut q = pos.get(p, i);
                        for a in 0..3 {
                            v[a] += f[a] * dt;
                            q[a] = (q[a] + v[a] * dt).rem_euclid(1.0);
                        }
                        vel.set(p, i, v);
                        pos.set(p, i, q);
                    }
                }
            }
        }
        p.barrier();
    });

    p.barrier();
    let mut sum = 0u64;
    for i in 0..nm {
        let x = pos.get(p, i);
        sum = fold_f64(fold_f64(fold_f64(sum, x[0]), x[1]), x[2]);
    }
    for k in 0..n {
        sum = fold_f64(sum, reductions.get(p, k));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_footprint_is_largest_of_the_three() {
        let sp = WaterSpParams::paper_scaled();
        let sp_bytes = sp.side.pow(3) * sp.per_cell * 48;
        let nsq_bytes = crate::WaterNsqParams::paper_scaled().molecules * 48;
        let barnes_bytes = crate::BarnesParams::paper_scaled().bodies * 56;
        assert!(sp_bytes > barnes_bytes, "{sp_bytes} vs {barnes_bytes}");
        assert!(barnes_bytes > nsq_bytes, "{barnes_bytes} vs {nsq_bytes}");
    }
}
