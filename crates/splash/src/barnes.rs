//! Barnes — hierarchical N-body (Barnes-Hut), after SPLASH-2 `barnes`.
//!
//! Simulates a self-gravitating system of bodies in three dimensions over a
//! number of time-steps. Each step: the octree is rebuilt *in parallel* —
//! each node builds the subtrees of its share of the eight root octants and
//! writes them into its slice of the shared cell arrays, and node 0
//! assembles the root (this reproduces the original's parallel tree build
//! and its naturally imbalanced update volume: clustered bodies make some
//! octants much heavier than others — in the paper's run the volume of
//! logs varied from 290 to 460 MB across nodes). Every node then computes
//! forces for its block of bodies by traversing the tree (irregular read
//! pattern), accumulates a global energy diagnostic under a lock, and
//! integrates its bodies. Four barriers per step, matching the original's
//! barrier-heavy structure.

use ftdsm::{HomeAlloc, Process, SharedVec};

use crate::{fold_f64, hash_unit};

/// Barnes parameters.
#[derive(Debug, Clone)]
pub struct BarnesParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Time-steps.
    pub steps: u64,
    /// Opening criterion (cell half-size / distance below which a cell's
    /// center of mass approximates its bodies).
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
    /// Seed for the initial configuration.
    pub seed: u64,
}

impl BarnesParams {
    /// A few dozen bodies — unit tests.
    pub fn tiny() -> Self {
        BarnesParams {
            bodies: 48,
            steps: 4,
            theta: 0.6,
            dt: 0.01,
            seed: 7,
        }
    }

    /// A few hundred bodies — integration tests.
    pub fn small() -> Self {
        BarnesParams {
            bodies: 192,
            steps: 6,
            theta: 0.6,
            dt: 0.01,
            seed: 7,
        }
    }

    /// The benchmark configuration (scaled from the paper's 256 k bodies /
    /// 60 steps so a run takes seconds on a laptop).
    pub fn paper_scaled() -> Self {
        BarnesParams {
            bodies: 1536,
            steps: 40,
            theta: 0.7,
            dt: 0.05,
            seed: 7,
        }
    }
}

/// Encoding of octree child slots: `>= 0` is a cell index, `-1` is empty,
/// `<= -2` is body `-(v + 2)`.
const EMPTY: i64 = -1;

fn body_ref(i: usize) -> i64 {
    -(i as i64 + 2)
}

fn body_idx(v: i64) -> usize {
    (-v - 2) as usize
}

/// Local (plain) octree built by node 0 each step.
struct Cell {
    center: [f64; 3],
    half: f64,
    com: [f64; 4], // x, y, z, mass
    child: [i64; 8],
}

fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
    ((p[0] > center[0]) as usize)
        | (((p[1] > center[1]) as usize) << 1)
        | (((p[2] > center[2]) as usize) << 2)
}

#[cfg(test)]
fn build_tree(pos: &[[f64; 3]], mass: &[f64], half: f64) -> Vec<Cell> {
    build_subtree(
        pos,
        mass,
        [0.0; 3],
        half,
        &(0..pos.len()).collect::<Vec<_>>(),
    )
}

/// Build the subtree rooted at (`center`, `half`) containing `bodies`
/// (indices into `pos`). Cell 0 is the subtree root.
fn build_subtree(
    pos: &[[f64; 3]],
    mass: &[f64],
    center: [f64; 3],
    half: f64,
    bodies: &[usize],
) -> Vec<Cell> {
    let root = Cell {
        center,
        half,
        com: [0.0; 4],
        child: [EMPTY; 8],
    };
    let mut cells = vec![root];
    for &i in bodies {
        let p = pos[i];
        insert(&mut cells, 0, i, &p, pos);
    }
    compute_com(&mut cells, 0, pos, mass);
    cells
}

fn insert(cells: &mut Vec<Cell>, cell: usize, body: usize, p: &[f64; 3], pos: &[[f64; 3]]) {
    let oct = octant(&cells[cell].center, p);
    match cells[cell].child[oct] {
        EMPTY => cells[cell].child[oct] = body_ref(body),
        v if v >= 0 => insert(cells, v as usize, body, p, pos),
        v => {
            // Occupied by a single body: split into a sub-cell.
            let other = body_idx(v);
            let (center, half) = {
                let c = &cells[cell];
                let h = c.half / 2.0;
                let center = [
                    c.center[0] + if oct & 1 != 0 { h } else { -h },
                    c.center[1] + if oct & 2 != 0 { h } else { -h },
                    c.center[2] + if oct & 4 != 0 { h } else { -h },
                ];
                (center, h)
            };
            // Degenerate case (coincident bodies): stop splitting at a
            // minimal cell and chain the bodies into free slots instead.
            if half < 1e-9 {
                let c = &mut cells[cell];
                if let Some(slot) = c.child.iter_mut().find(|s| **s == EMPTY) {
                    *slot = body_ref(body);
                }
                return;
            }
            let new_idx = cells.len();
            cells.push(Cell {
                center,
                half,
                com: [0.0; 4],
                child: [EMPTY; 8],
            });
            cells[cell].child[oct] = new_idx as i64;
            let other_p = pos[other];
            insert(cells, new_idx, other, &other_p, pos);
            insert(cells, new_idx, body, p, pos);
        }
    }
}

fn compute_com(cells: &mut [Cell], cell: usize, pos: &[[f64; 3]], mass: &[f64]) {
    let child = cells[cell].child;
    let mut com = [0.0f64; 4];
    for v in child {
        let (p, m) = match v {
            EMPTY => continue,
            v if v >= 0 => {
                compute_com(cells, v as usize, pos, mass);
                let c = &cells[v as usize].com;
                ([c[0], c[1], c[2]], c[3])
            }
            v => {
                let b = body_idx(v);
                (pos[b], mass[b])
            }
        };
        com[0] += p[0] * m;
        com[1] += p[1] * m;
        com[2] += p[2] * m;
        com[3] += m;
    }
    if com[3] > 0.0 {
        com[0] /= com[3];
        com[1] /= com[3];
        com[2] /= com[3];
    }
    cells[cell].com = com;
}

const SOFTENING2: f64 = 1e-4;

fn pair_accel(from: &[f64; 3], to: &[f64; 3], m: f64, acc: &mut [f64; 3]) -> f64 {
    let dx = to[0] - from[0];
    let dy = to[1] - from[1];
    let dz = to[2] - from[2];
    let d2 = dx * dx + dy * dy + dz * dz + SOFTENING2;
    let inv = 1.0 / (d2 * d2.sqrt());
    acc[0] += m * dx * inv;
    acc[1] += m * dy * inv;
    acc[2] += m * dz * inv;
    -m / d2.sqrt() // potential contribution
}

/// Shared-memory handles for the tree (homed on node 0).
struct TreeArrays {
    geom: SharedVec<[f64; 4]>, // center xyz + half
    com: SharedVec<[f64; 4]>,  // com xyz + mass
    child: SharedVec<[i64; 8]>,
    meta: SharedVec<u64>, // [0] = cell count
}

/// Run Barnes; every node returns the same bit-exact checksum of the final
/// body positions.
pub fn barnes(p: &mut Process, params: &BarnesParams) -> u64 {
    let n = p.nodes();
    let me = p.me();
    let nb = params.bodies;
    let max_cells = 3 * nb + 8;

    let pos = p.alloc_vec::<[f64; 3]>(nb, HomeAlloc::Blocked);
    let vel = p.alloc_vec::<[f64; 3]>(nb, HomeAlloc::Blocked);
    let mass = p.alloc_vec::<f64>(nb, HomeAlloc::Blocked);
    // Per-body state written every step (the original writes acceleration,
    // potential and per-body work lists into shared memory too — this is
    // what makes Barnes generate the largest volume of logs per byte of
    // shared memory of the three applications).
    let acc_arr = p.alloc_vec::<[f64; 3]>(nb, HomeAlloc::Blocked);
    let phi = p.alloc_vec::<f64>(nb, HomeAlloc::Blocked);
    let work = p.alloc_vec::<[f64; 16]>(nb, HomeAlloc::Blocked);
    let tree = TreeArrays {
        geom: p.alloc_vec(max_cells, HomeAlloc::Node(0)),
        com: p.alloc_vec(max_cells, HomeAlloc::Node(0)),
        child: p.alloc_vec(max_cells, HomeAlloc::Node(0)),
        meta: p.alloc_vec(1, HomeAlloc::Node(0)),
    };
    // One reduction slot per node: the update is lock-protected (matching
    // the original's global-sum locks) but each node only adds to its own
    // slot, so the total — folded in node order — is bit-deterministic
    // regardless of lock acquisition order.
    let energy = p.alloc_vec::<f64>(n, HomeAlloc::Node(0));

    let per = nb.div_ceil(n);
    let b0 = (me * per).min(nb);
    let b1 = ((me + 1) * per).min(nb);

    // Initial configuration: a seeded Plummer-ish ball, written by the
    // owners of each block (skipped when resuming from a checkpoint).
    p.init_phase(|p| {
        for i in b0..b1 {
            let u = [
                hash_unit(params.seed, 3 * i as u64),
                hash_unit(params.seed, 3 * i as u64 + 1),
                hash_unit(params.seed, 3 * i as u64 + 2),
            ];
            pos.set(p, i, [u[0] * 2.0 - 1.0, u[1] * 2.0 - 1.0, u[2] * 2.0 - 1.0]);
            vel.set(p, i, [0.0, 0.0, 0.0]);
            mass.set(p, i, 1.0 / nb as f64);
        }
    });

    let mut state = 0u64;
    let theta2 = params.theta * params.theta;
    let dt = params.dt;
    // Cell index space: cell 0 is the global root; each of the 8 root
    // octants gets a fixed slice for its subtree.
    let per_oct = (max_cells - 1) / 8;
    p.run_steps(&mut state, params.steps, |p, _state, _step| {
        // --- phase 1: parallel tree build -----------------------------------
        // Every node snapshots the positions (one fetch per page) and
        // builds the subtrees of its root octants into its cell slices.
        let all_pos: Vec<[f64; 3]> = (0..nb).map(|i| pos.get(p, i)).collect();
        let all_mass: Vec<f64> = (0..nb).map(|i| mass.get(p, i)).collect();
        let bound = all_pos
            .iter()
            .flat_map(|q| q.iter())
            .fold(1.0f64, |a, &x| a.max(x.abs()))
            * 1.01;
        let root_center = [0.0f64; 3];
        for oct in (0..8).filter(|o| o % n == me) {
            let h = bound / 2.0;
            let center = [
                root_center[0] + if oct & 1 != 0 { h } else { -h },
                root_center[1] + if oct & 2 != 0 { h } else { -h },
                root_center[2] + if oct & 4 != 0 { h } else { -h },
            ];
            let bodies: Vec<usize> = (0..nb)
                .filter(|&i| octant(&root_center, &all_pos[i]) == oct)
                .collect();
            let cells = build_subtree(&all_pos, &all_mass, center, h, &bodies);
            assert!(
                cells.len() <= per_oct,
                "octant subtree overflow: {}",
                cells.len()
            );
            let base = 1 + oct * per_oct;
            for (ci, c) in cells.iter().enumerate() {
                // Child cell indices are local to the subtree: offset them.
                let mut child = c.child;
                for v in child.iter_mut() {
                    if *v >= 0 {
                        *v += base as i64;
                    }
                }
                let gi = base + ci;
                tree.geom
                    .set(p, gi, [c.center[0], c.center[1], c.center[2], c.half]);
                tree.com.set(p, gi, c.com);
                tree.child.set(p, gi, child);
            }
        }
        if me == 0 {
            for k in 0..n {
                energy.set(p, k, 0.0);
            }
        }
        p.barrier();

        // --- phase 1b: node 0 assembles the root ----------------------------
        if me == 0 {
            let mut com = [0.0f64; 4];
            let mut child = [EMPTY; 8];
            for (oct, slot) in child.iter_mut().enumerate() {
                let sub = 1 + oct * per_oct;
                let sc = tree.com.get(p, sub);
                if sc[3] > 0.0 {
                    *slot = sub as i64;
                    com[0] += sc[0] * sc[3];
                    com[1] += sc[1] * sc[3];
                    com[2] += sc[2] * sc[3];
                    com[3] += sc[3];
                }
            }
            if com[3] > 0.0 {
                com[0] /= com[3];
                com[1] /= com[3];
                com[2] /= com[3];
            }
            tree.geom.set(p, 0, [0.0, 0.0, 0.0, bound]);
            tree.com.set(p, 0, com);
            tree.child.set(p, 0, child);
            tree.meta.set(p, 0, max_cells as u64);
        }
        p.barrier();

        // --- phase 2: force computation + energy reduction ------------------
        let mut local_energy = 0.0f64;
        let mut accels = vec![[0.0f64; 3]; b1 - b0];
        for i in b0..b1 {
            let pi = pos.get(p, i);
            let mut acc = [0.0f64; 3];
            // Iterative traversal, fixed order for determinism.
            let mut stack = vec![0i64];
            while let Some(v) = stack.pop() {
                if v == EMPTY {
                    continue;
                }
                if v < 0 {
                    let b = body_idx(v);
                    if b != i {
                        let e = pair_accel(&pi, &all_pos[b], all_mass[b], &mut acc);
                        local_energy += e;
                    }
                    continue;
                }
                let ci = v as usize;
                let g = tree.geom.get(p, ci);
                let com = tree.com.get(p, ci);
                let dx = com[0] - pi[0];
                let dy = com[1] - pi[1];
                let dz = com[2] - pi[2];
                let d2 = dx * dx + dy * dy + dz * dz + SOFTENING2;
                if 4.0 * g[3] * g[3] < theta2 * d2 {
                    let e = pair_accel(&pi, &[com[0], com[1], com[2]], com[3], &mut acc);
                    local_energy += e;
                } else {
                    let ch = tree.child.get(p, ci);
                    for &c in ch.iter().rev() {
                        stack.push(c);
                    }
                }
            }
            acc_arr.set(p, i, acc);
            phi.set(p, i, local_energy);
            let mut w = [0.0f64; 16];
            for (k, slot) in w.iter_mut().enumerate() {
                *slot = acc[k % 3] * (k as f64 + 1.0) + pi[k % 3];
            }
            work.set(p, i, w);
            accels[i - b0] = acc;
        }
        // Global diagnostic under a lock (original Barnes keeps global
        // sums the same way).
        p.acquire(1);
        let e = energy.get(p, me);
        energy.set(p, me, e + local_energy);
        p.release(1);
        p.barrier();

        // --- phase 3: integrate own bodies ----------------------------------
        for i in b0..b1 {
            let a = accels[i - b0];
            let mut v = vel.get(p, i);
            let mut x = pos.get(p, i);
            for k in 0..3 {
                v[k] += a[k] * dt;
                x[k] += v[k] * dt;
            }
            vel.set(p, i, v);
            pos.set(p, i, x);
        }
        p.barrier();
    });

    p.barrier();
    let mut sum = 0u64;
    for i in 0..nb {
        let x = pos.get(p, i);
        sum = fold_f64(fold_f64(fold_f64(sum, x[0]), x[1]), x[2]);
    }
    for k in 0..n {
        sum = fold_f64(sum, energy.get(p, k));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_build_covers_all_bodies() {
        let pos: Vec<[f64; 3]> = (0..32)
            .map(|i| {
                [
                    hash_unit(1, i) * 2.0 - 1.0,
                    hash_unit(2, i) * 2.0 - 1.0,
                    hash_unit(3, i) * 2.0 - 1.0,
                ]
            })
            .collect();
        let mass = vec![1.0; 32];
        let cells = build_tree(&pos, &mass, 1.01);
        // Total mass at the root equals the sum of body masses.
        assert!((cells[0].com[3] - 32.0).abs() < 1e-9);
        // Count bodies reachable from the root.
        let mut found = 0;
        let mut stack = vec![0i64];
        while let Some(v) = stack.pop() {
            if v == EMPTY {
                continue;
            }
            if v < 0 {
                found += 1;
            } else {
                stack.extend(cells[v as usize].child);
            }
        }
        assert_eq!(found, 32);
    }

    #[test]
    fn coincident_bodies_do_not_recurse_forever() {
        let pos = vec![[0.5, 0.5, 0.5]; 4];
        let mass = vec![1.0; 4];
        let cells = build_tree(&pos, &mass, 1.0);
        assert!((cells[0].com[3] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn octant_selection() {
        let c = [0.0, 0.0, 0.0];
        assert_eq!(octant(&c, &[1.0, 1.0, 1.0]), 7);
        assert_eq!(octant(&c, &[-1.0, -1.0, -1.0]), 0);
        assert_eq!(octant(&c, &[1.0, -1.0, 1.0]), 5);
    }
}
