//! Integration tests: the SPLASH-style workloads on real simulated
//! clusters — determinism, base-vs-FT equivalence, and crash recovery.

use ftdsm::{run, CkptPolicy, ClusterConfig, FailureSpec, Process};
use splash::{
    barnes, jacobi, migratory, producer_consumer, water_nsq, water_sp, BarnesParams, JacobiParams,
    WaterNsqParams, WaterSpParams,
};

fn base(n: usize) -> ClusterConfig {
    ClusterConfig::base(n).with_page_size(1024)
}

fn ft(n: usize) -> ClusterConfig {
    ClusterConfig::fault_tolerant(n)
        .with_page_size(1024)
        .with_policy(CkptPolicy::EverySteps(2))
}

/// All nodes must agree on the checksum, and two runs must agree with each
/// other (bit-exact determinism).
fn assert_deterministic(app: impl Fn(&mut Process) -> u64 + Send + Sync + Clone + 'static) {
    let r1 = run(base(4), &[], app.clone());
    let first = r1.results[0];
    assert!(
        r1.results.iter().all(|&c| c == first),
        "nodes disagree: {:?}",
        r1.results
    );
    let r2 = run(base(4), &[], app);
    assert_eq!(r1.results, r2.results, "runs disagree");
    assert_eq!(r1.shared_hash, r2.shared_hash);
}

#[test]
fn barnes_is_deterministic() {
    assert_deterministic(|p| barnes(p, &BarnesParams::tiny()));
}

#[test]
fn water_nsq_is_deterministic() {
    assert_deterministic(|p| water_nsq(p, &WaterNsqParams::tiny()));
}

#[test]
fn water_sp_is_deterministic() {
    assert_deterministic(|p| water_sp(p, &WaterSpParams::tiny()));
}

#[test]
fn jacobi_converges_and_is_deterministic() {
    assert_deterministic(|p| jacobi(p, &JacobiParams { side: 32, steps: 6 }));
}

#[test]
fn ft_runs_match_base_runs() {
    let b = run(base(4), &[], |p| barnes(p, &BarnesParams::tiny()));
    let f = run(ft(4), &[], |p| barnes(p, &BarnesParams::tiny()));
    assert_eq!(b.results, f.results);
    assert_eq!(b.shared_hash, f.shared_hash);
    assert!(f.total_ckpts() > 0);
}

fn assert_recovers(
    victim: usize,
    at_op: u64,
    app: impl Fn(&mut Process) -> u64 + Send + Sync + Clone + 'static,
) {
    let clean = run(ft(4), &[], app.clone());
    let crashed = run(
        ft(4),
        &[FailureSpec {
            node: victim,
            at_op,
        }],
        app,
    );
    assert_eq!(
        clean.results, crashed.results,
        "results diverge after recovery"
    );
    assert_eq!(
        clean.shared_hash, crashed.shared_hash,
        "memory diverges after recovery"
    );
    assert_eq!(crashed.nodes[victim].ft.recoveries, 1, "crash did not fire");
}

#[test]
fn barnes_recovers_from_worker_crash() {
    assert_recovers(2, 400, |p| barnes(p, &BarnesParams::tiny()));
}

#[test]
fn barnes_recovers_from_tree_builder_crash() {
    // Node 0 builds the octree and is also the barrier manager.
    assert_recovers(0, 500, |p| barnes(p, &BarnesParams::tiny()));
}

#[test]
fn water_nsq_recovers_from_worker_crash() {
    assert_recovers(1, 300, |p| water_nsq(p, &WaterNsqParams::tiny()));
}

#[test]
fn water_sp_recovers_from_worker_crash() {
    assert_recovers(3, 300, |p| water_sp(p, &WaterSpParams::tiny()));
}

#[test]
fn migratory_kernel_is_exact() {
    let rounds = 10u64;
    let r = run(base(4), &[], move |p| migratory(p, rounds));
    // Each round every node adds me+1 to each of 8 cells: 8 * rounds * (1+2+3+4).
    assert_eq!(r.results, vec![8 * rounds * 10; 4]);
}

#[test]
fn producer_consumer_kernel_is_exact() {
    let rounds = 6u64;
    let items = 32usize;
    let r = run(base(3), &[], move |p| producer_consumer(p, rounds, items));
    let expected: u64 = (0..rounds)
        .map(|round| {
            (0..items as u64)
                .map(|i| round * items as u64 + i)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(r.results, vec![expected; 3]);
}

#[test]
fn lu_is_deterministic_and_factors() {
    use splash::{lu, LuParams};
    assert_deterministic(|p| lu(p, &LuParams::tiny()));
}

#[test]
fn lu_recovers_from_worker_crash() {
    use splash::{lu, LuParams};
    assert_recovers(2, 350, |p| lu(p, &LuParams::tiny()));
}

#[test]
fn recovery_time_is_recorded_and_bounded() {
    use splash::{water_nsq, WaterNsqParams};
    let crashed = run(
        ft(4),
        &[ftdsm::FailureSpec {
            node: 1,
            at_op: 300,
        }],
        |p| water_nsq(p, &WaterNsqParams::tiny()),
    );
    let rec = crashed.nodes[1].ft.recovery_time;
    assert!(
        rec > std::time::Duration::ZERO,
        "recovery time not recorded"
    );
    // §4.3: local replay is expected to be faster than the original
    // execution of the lost segment, and certainly than the whole run.
    assert!(
        rec < crashed.wall,
        "recovery took longer than the entire run"
    );
}

#[test]
fn radix_sorts_and_is_deterministic() {
    use splash::{radix, RadixParams};
    assert_deterministic(|p| radix(p, &RadixParams::tiny()));
}

#[test]
fn radix_recovers_from_worker_crash() {
    use splash::{radix, RadixParams};
    assert_recovers(1, 400, |p| radix(p, &RadixParams::tiny()));
}
