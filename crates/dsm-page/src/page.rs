//! The coherence unit: a fixed-size byte buffer.

/// Diffs are computed at this word granularity (bytes). Page sizes must be a
/// multiple of this.
pub const PAGE_ALIGN_WORD: usize = 8;

/// A shared page: a heap-allocated, fixed-size byte buffer.
///
/// A `Page` is used both for the authoritative copy held at a page's home
/// node and for cached copies / twins at other nodes.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// A zero-filled page of `size` bytes. `size` must be a multiple of
    /// [`PAGE_ALIGN_WORD`].
    pub fn zeroed(size: usize) -> Self {
        assert!(
            size.is_multiple_of(PAGE_ALIGN_WORD),
            "page size must be 8-byte aligned"
        );
        Page {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// A page initialized from `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len().is_multiple_of(PAGE_ALIGN_WORD),
            "page size must be 8-byte aligned"
        );
        Page {
            data: bytes.to_vec().into_boxed_slice(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the page has zero length (never for real pages; kept for
    /// clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Copy `src` into the page at `offset`.
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        self.data[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Read `len` bytes at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Create a twin: an exact pre-write copy used later for diff creation.
    pub fn twin(&self) -> Page {
        self.clone()
    }

    /// Overwrite the whole page from another page of the same size.
    pub fn copy_from(&mut self, other: &Page) {
        assert_eq!(self.len(), other.len(), "page size mismatch");
        self.data.copy_from_slice(&other.data);
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({} bytes, {} non-zero)", self.data.len(), nonzero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_rw() {
        let mut p = Page::zeroed(256);
        assert_eq!(p.len(), 256);
        assert!(p.bytes().iter().all(|&b| b == 0));
        p.write(10, &[1, 2, 3]);
        assert_eq!(p.read(10, 3), &[1, 2, 3]);
        assert_eq!(p.read(9, 1), &[0]);
    }

    #[test]
    fn twin_is_independent_copy() {
        let mut p = Page::zeroed(64);
        p.write(0, &[42]);
        let t = p.twin();
        p.write(0, &[7]);
        assert_eq!(t.read(0, 1), &[42]);
        assert_eq!(p.read(0, 1), &[7]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_size_rejected() {
        let _ = Page::zeroed(100);
    }
}
