//! The coherence unit: a fixed-size byte buffer with copy-on-write sharing.
//!
//! A [`Page`] is a reference-counted immutable buffer (`Arc<[u8]>`) with
//! copy-on-write mutation. Cloning a page — and in particular taking a
//! [`Page::twin`] before the first write of an interval, or serving the page
//! contents in a reply message via [`Page::share`] — is a reference-count
//! bump, not a memcpy. The single unavoidable copy happens lazily at the
//! first mutation of a shared buffer, and that copy can draw its backing
//! buffer from a [`PagePool`](crate::pool::PagePool) so steady-state
//! intervals allocate nothing.

use std::sync::Arc;

use crate::pool::PagePool;

/// Diffs are computed at this word granularity (bytes). Page sizes must be a
/// multiple of this.
pub const PAGE_ALIGN_WORD: usize = 8;

/// A shared page: a reference-counted, fixed-size byte buffer with
/// copy-on-write mutation.
///
/// A `Page` is used both for the authoritative copy held at a page's home
/// node and for cached copies / twins at other nodes. Value semantics are
/// preserved: mutating one clone never changes another (the mutation
/// materializes a private buffer first).
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Arc<[u8]>,
}

impl Page {
    /// A zero-filled page of `size` bytes. `size` must be a multiple of
    /// [`PAGE_ALIGN_WORD`].
    pub fn zeroed(size: usize) -> Self {
        assert!(
            size.is_multiple_of(PAGE_ALIGN_WORD),
            "page size must be 8-byte aligned"
        );
        Page {
            data: vec![0u8; size].into(),
        }
    }

    /// A page initialized from a copy of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len().is_multiple_of(PAGE_ALIGN_WORD),
            "page size must be 8-byte aligned"
        );
        Page {
            data: Arc::from(bytes),
        }
    }

    /// A page that adopts `bytes` without copying (zero-copy install of a
    /// fetched buffer).
    pub fn from_shared(bytes: Arc<[u8]>) -> Self {
        assert!(
            bytes.len().is_multiple_of(PAGE_ALIGN_WORD),
            "page size must be 8-byte aligned"
        );
        Page { data: bytes }
    }

    /// Share the page contents without copying. The returned buffer is
    /// immutable; a later write to this page copy-on-writes and leaves the
    /// shared buffer untouched.
    #[inline]
    pub fn share(&self) -> Arc<[u8]> {
        Arc::clone(&self.data)
    }

    /// True when the underlying buffer is referenced from more than one
    /// place (a mutation would have to copy).
    #[inline]
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Page size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the page has zero length (never for real pages; kept for
    /// clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Make the backing buffer unique, copying out of a shared buffer if
    /// necessary. A pool, when given, supplies the replacement buffer.
    #[inline]
    fn materialize(&mut self, pool: Option<&mut PagePool>) -> &mut [u8] {
        if Arc::get_mut(&mut self.data).is_none() {
            let fresh = match pool {
                Some(pool) => pool.take_copy(&self.data),
                None => Arc::from(&self.data[..]),
            };
            self.data = fresh;
        }
        Arc::get_mut(&mut self.data).expect("buffer just made unique")
    }

    /// Mutable view of the page contents (copy-on-write; allocates if the
    /// buffer is shared).
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.materialize(None)
    }

    /// Mutable view of the page contents, drawing any copy-on-write buffer
    /// from `pool`.
    #[inline]
    pub fn bytes_mut_pooled(&mut self, pool: &mut PagePool) -> &mut [u8] {
        self.materialize(Some(pool))
    }

    /// Copy `src` into the page at `offset` (copy-on-write).
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        self.bytes_mut()[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copy `src` into the page at `offset`, drawing any copy-on-write
    /// buffer from `pool`.
    pub fn write_pooled(&mut self, pool: &mut PagePool, offset: usize, src: &[u8]) {
        self.bytes_mut_pooled(pool)[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Read `len` bytes at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Create a twin: an exact pre-write snapshot used later for diff
    /// creation. This is a reference-count bump; the writer's subsequent
    /// first write copies.
    pub fn twin(&self) -> Page {
        self.clone()
    }

    /// Overwrite the whole page from another page of the same size.
    pub fn copy_from(&mut self, other: &Page) {
        assert_eq!(self.len(), other.len(), "page size mismatch");
        if Arc::ptr_eq(&self.data, &other.data) {
            return;
        }
        self.data = Arc::clone(&other.data);
    }

    /// Consume the page, yielding its backing buffer (for pool recycling).
    pub(crate) fn into_arc(self) -> Arc<[u8]> {
        self.data
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({} bytes, {} non-zero)", self.data.len(), nonzero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_rw() {
        let mut p = Page::zeroed(256);
        assert_eq!(p.len(), 256);
        assert!(p.bytes().iter().all(|&b| b == 0));
        p.write(10, &[1, 2, 3]);
        assert_eq!(p.read(10, 3), &[1, 2, 3]);
        assert_eq!(p.read(9, 1), &[0]);
    }

    #[test]
    fn twin_is_independent_copy() {
        let mut p = Page::zeroed(64);
        p.write(0, &[42]);
        let t = p.twin();
        p.write(0, &[7]);
        assert_eq!(t.read(0, 1), &[42]);
        assert_eq!(p.read(0, 1), &[7]);
    }

    #[test]
    fn twin_shares_until_first_write() {
        let mut p = Page::zeroed(64);
        let t = p.twin();
        assert!(p.is_shared());
        p.write(0, &[1]);
        assert!(!p.is_shared(), "write must have copy-on-written");
        assert!(!t.is_shared());
        assert_eq!(t.read(0, 1), &[0]);
    }

    #[test]
    fn shared_buffer_is_immutable_under_writes() {
        let mut p = Page::zeroed(64);
        p.write(0, &[9; 8]);
        let snapshot = p.share();
        p.write(0, &[1; 8]);
        assert_eq!(&snapshot[..8], &[9; 8]);
        assert_eq!(p.read(0, 8), &[1; 8]);
    }

    #[test]
    fn from_shared_is_zero_copy() {
        let buf: Arc<[u8]> = vec![5u8; 64].into();
        let p = Page::from_shared(Arc::clone(&buf));
        assert!(Arc::ptr_eq(&p.share(), &buf));
    }

    #[test]
    fn copy_from_shares_the_source_buffer() {
        let mut a = Page::zeroed(64);
        let mut b = Page::zeroed(64);
        b.write(0, &[3; 8]);
        a.copy_from(&b);
        assert_eq!(a.read(0, 8), &[3; 8]);
        b.write(0, &[4; 8]);
        assert_eq!(a.read(0, 8), &[3; 8], "copy_from target must not alias");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_size_rejected() {
        let _ = Page::zeroed(100);
    }
}
