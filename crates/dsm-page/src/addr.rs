//! Global shared address arithmetic.
//!
//! The DSM exposes a single flat byte-addressable shared space. The
//! coherence unit is a page of `page_size` bytes; `page_size` is a runtime
//! cluster parameter (the paper used the 4 KB hardware page).

/// Identifier of a shared page. Pages are numbered densely from zero in
/// allocation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A byte address in the global shared space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// Byte offset from the start of the shared space.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0
    }
}

impl std::ops::Add<u64> for GlobalAddr {
    type Output = GlobalAddr;
    #[inline]
    fn add(self, rhs: u64) -> GlobalAddr {
        GlobalAddr(self.0 + rhs)
    }
}

/// Address layout: maps between byte addresses and (page, offset) pairs for a
/// fixed page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    page_size: usize,
}

impl Layout {
    /// Create a layout. `page_size` must be a power of two and a multiple of
    /// the 8-byte diff word.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(page_size >= 64, "page size unreasonably small");
        Layout { page_size }
    }

    /// The page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Page containing `addr`.
    #[inline]
    pub fn page_of(&self, addr: GlobalAddr) -> PageId {
        PageId((addr.0 / self.page_size as u64) as u32)
    }

    /// Byte offset of `addr` within its page.
    #[inline]
    pub fn offset_in_page(&self, addr: GlobalAddr) -> usize {
        (addr.0 % self.page_size as u64) as usize
    }

    /// First address of `page`.
    #[inline]
    pub fn page_base(&self, page: PageId) -> GlobalAddr {
        GlobalAddr(page.0 as u64 * self.page_size as u64)
    }

    /// Number of pages needed to hold `bytes` bytes.
    #[inline]
    pub fn pages_for(&self, bytes: u64) -> u32 {
        bytes.div_ceil(self.page_size as u64) as u32
    }

    /// Iterate over the pages overlapped by the byte range `[addr, addr+len)`.
    pub fn pages_in_range(&self, addr: GlobalAddr, len: u64) -> impl Iterator<Item = PageId> {
        let first = (addr.0 / self.page_size as u64) as u32;
        let last = if len == 0 {
            first
        } else {
            ((addr.0 + len - 1) / self.page_size as u64) as u32
        };
        (first..=last).map(PageId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic_roundtrips() {
        let l = Layout::new(4096);
        let a = GlobalAddr(4096 * 7 + 123);
        assert_eq!(l.page_of(a), PageId(7));
        assert_eq!(l.offset_in_page(a), 123);
        assert_eq!(l.page_base(PageId(7)), GlobalAddr(4096 * 7));
    }

    #[test]
    fn pages_for_rounds_up() {
        let l = Layout::new(4096);
        assert_eq!(l.pages_for(0), 0);
        assert_eq!(l.pages_for(1), 1);
        assert_eq!(l.pages_for(4096), 1);
        assert_eq!(l.pages_for(4097), 2);
    }

    #[test]
    fn range_iteration_covers_overlapped_pages() {
        let l = Layout::new(256);
        let pages: Vec<_> = l.pages_in_range(GlobalAddr(250), 20).collect();
        assert_eq!(pages, vec![PageId(0), PageId(1)]);
        let pages: Vec<_> = l.pages_in_range(GlobalAddr(256), 256).collect();
        assert_eq!(pages, vec![PageId(1)]);
        let pages: Vec<_> = l.pages_in_range(GlobalAddr(0), 0).collect();
        assert_eq!(pages, vec![PageId(0)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Layout::new(1000);
    }
}
