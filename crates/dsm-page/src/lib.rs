#![warn(missing_docs)]
//! Page, twin, diff and logical-clock machinery for a home-based lazy release
//! consistency (HLRC) distributed shared memory.
//!
//! This crate is deliberately free of threads and I/O: everything here is a
//! pure data structure, unit- and property-testable in isolation.
//!
//! * [`Page`] — a fixed-size byte buffer, the coherence unit.
//! * [`Diff`] — a word-granularity difference between a twin (pre-write copy)
//!   and the current page contents, as created by a writer at release time
//!   and applied by the page's home node.
//! * [`PagePool`] — a per-node free list recycling twin / copy-on-write
//!   buffers so steady-state intervals are allocation-free.
//! * [`VectorClock`] — per-process vector timestamps over synchronization
//!   intervals; also used as per-page version vectors (`p.v` in the paper).
//! * [`addr`] — global shared address arithmetic.

pub mod addr;
pub mod diff;
pub mod page;
pub mod pool;
pub mod version;

pub use addr::{GlobalAddr, Layout, PageId};
pub use diff::{Diff, DiffRun, DiffScratch};
pub use page::{Page, PAGE_ALIGN_WORD};
pub use pool::{PagePool, PoolStats};
pub use version::{elementwise_min, Interval, IntervalSeq, ProcId, VectorClock};
