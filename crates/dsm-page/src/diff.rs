//! Word-granularity page diffs.
//!
//! A writer creates a *twin* (copy) of a page before its first write in an
//! interval. At release time the modified words are encoded as a [`Diff`]
//! relative to the twin, sent to the page's home, and (in the fault-tolerant
//! protocol) appended to the writer's per-page diff log.
//!
//! Performance shape: comparison is u64-word-wide (one load + compare per
//! 8 bytes instead of a bounds-checked 8-byte `memcmp`), preceded by a
//! whole-buffer equality pre-check that dismisses silent-store pages in one
//! `memcmp`. All modified runs share a single immutable payload buffer
//! (`Arc<[u8]>`), built in one pass through a reused [`DiffScratch`], so a
//! diff costs exactly one payload allocation no matter how many runs it has
//! — and cloning or logging a diff never copies the payload.

use std::sync::Arc;

use crate::addr::PageId;
use crate::page::{Page, PAGE_ALIGN_WORD};
use crate::pool::PagePool;
use crate::version::Interval;

/// Block size of the coarse pre-scan in [`Diff::create_with`]: blocks are
/// compared with one slice equality (memcmp) each, and only differing
/// blocks are walked word by word.
const DIFF_BLOCK: usize = 8 * PAGE_ALIGN_WORD;

/// One contiguous run of modified bytes within a page: a span of the diff's
/// shared payload buffer.
///
/// Constructed only by [`Diff::create`] / [`Diff::from_runs`]; consumers
/// iterate [`Diff::runs`] to see `(page_offset, bytes)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the page (word aligned).
    pub offset: u32,
    /// Start of the run's bytes within the diff payload.
    start: u32,
    /// Length of the run in bytes (a multiple of the diff word).
    pub len: u32,
}

/// Reusable scratch space for [`Diff::create_with`]: one per node, so
/// steady-state diff creation does not grow fresh vectors per run.
#[derive(Debug, Default)]
pub struct DiffScratch {
    buf: Vec<u8>,
    runs: Vec<DiffRun>,
}

impl DiffScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The modifications one writer made to one page in one interval.
///
/// Immutable once created: the same `Arc<Diff>` is sent to the home, kept in
/// the sender's volatile diff log, and replayed during recovery, without any
/// payload copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    /// The page this diff applies to.
    pub page: PageId,
    /// The interval in which the writes were performed. Applying the diff at
    /// the home advances the page version vector entry for `interval.proc`
    /// to `interval.seq`.
    pub interval: Interval,
    /// Modified runs, in increasing offset order, non-overlapping.
    runs: Vec<DiffRun>,
    /// Concatenated run contents; runs index into this buffer.
    payload: Arc<[u8]>,
}

impl Diff {
    /// Compute the diff between `twin` (the pre-write copy) and `current`,
    /// using a private scratch buffer. Prefer [`Diff::create_with`] on hot
    /// paths.
    pub fn create(page: PageId, interval: Interval, twin: &Page, current: &Page) -> Option<Diff> {
        let mut scratch = DiffScratch::new();
        Self::create_with(&mut scratch, page, interval, twin, current)
    }

    /// Compute the diff between `twin` and `current` into `scratch`
    /// (reused across calls; its capacity amortizes to the largest diff).
    ///
    /// Comparison is at [`PAGE_ALIGN_WORD`]-byte granularity, exactly like
    /// the word-level diffing of HLRC implementations; adjacent modified
    /// words are merged into a single run. Returns `None` when the page is
    /// unchanged (no word differs).
    pub fn create_with(
        scratch: &mut DiffScratch,
        page: PageId,
        interval: Interval,
        twin: &Page,
        current: &Page,
    ) -> Option<Diff> {
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        let a = twin.bytes();
        let b = current.bytes();
        // Silent stores (every written word holds its old value) are common
        // enough to deserve a single whole-buffer memcmp before word-walking.
        if std::ptr::eq(a.as_ptr(), b.as_ptr()) || a == b {
            return None;
        }
        scratch.buf.clear();
        scratch.runs.clear();
        // Mostly-clean pages dominate the interval-end pass, so compare in
        // 64-byte blocks first (one memcmp each) and word-walk only the
        // blocks that differ. A clean block's first word is clean, so any
        // open run legitimately closes at the block boundary.
        let mut open: Option<(usize, usize)> = None; // (page offset, payload start)
        let mut base = 0;
        while base < a.len() {
            let end = (base + DIFF_BLOCK).min(a.len());
            let (ba, bb) = (&a[base..end], &b[base..end]);
            if ba == bb {
                if let Some((offset, start)) = open.take() {
                    scratch.runs.push(DiffRun {
                        offset: offset as u32,
                        start: start as u32,
                        len: (scratch.buf.len() - start) as u32,
                    });
                }
                base = end;
                continue;
            }
            for (w, (wa, wb)) in ba
                .chunks_exact(PAGE_ALIGN_WORD)
                .zip(bb.chunks_exact(PAGE_ALIGN_WORD))
                .enumerate()
            {
                let xa = u64::from_ne_bytes(wa.try_into().unwrap());
                let xb = u64::from_ne_bytes(wb.try_into().unwrap());
                if xa ^ xb != 0 {
                    if open.is_none() {
                        open = Some((base + w * PAGE_ALIGN_WORD, scratch.buf.len()));
                    }
                    scratch.buf.extend_from_slice(wb);
                } else if let Some((offset, start)) = open.take() {
                    scratch.runs.push(DiffRun {
                        offset: offset as u32,
                        start: start as u32,
                        len: (scratch.buf.len() - start) as u32,
                    });
                }
            }
            base = end;
        }
        if let Some((offset, start)) = open.take() {
            scratch.runs.push(DiffRun {
                offset: offset as u32,
                start: start as u32,
                len: (scratch.buf.len() - start) as u32,
            });
        }
        debug_assert!(!scratch.runs.is_empty(), "unequal pages must yield runs");
        Some(Diff {
            page,
            interval,
            runs: scratch.runs.clone(),
            payload: Arc::from(&scratch.buf[..]),
        })
    }

    /// Build a diff from explicit `(offset, bytes)` runs (decoder support).
    /// Runs must be in increasing offset order and non-overlapping.
    pub fn from_runs<'a>(
        page: PageId,
        interval: Interval,
        runs: impl IntoIterator<Item = (u32, &'a [u8])>,
    ) -> Diff {
        let mut payload = Vec::new();
        let mut spans = Vec::new();
        for (offset, bytes) in runs {
            spans.push(DiffRun {
                offset,
                start: payload.len() as u32,
                len: bytes.len() as u32,
            });
            payload.extend_from_slice(bytes);
        }
        Diff {
            page,
            interval,
            runs: spans,
            payload: Arc::from(&payload[..]),
        }
    }

    /// The modified runs as `(page_offset, bytes)` pairs, in increasing
    /// offset order.
    pub fn runs(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        self.runs.iter().map(move |r| {
            (
                r.offset as usize,
                &self.payload[r.start as usize..(r.start + r.len) as usize],
            )
        })
    }

    /// Number of modified runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Apply the diff to `target`, overwriting the modified runs.
    pub fn apply(&self, target: &mut Page) {
        for (offset, bytes) in self.runs() {
            target.write(offset, bytes);
        }
    }

    /// Apply the diff to `target`, drawing any copy-on-write buffer from
    /// `pool` (the home's apply path).
    pub fn apply_pooled(&self, target: &mut Page, pool: &mut PagePool) {
        for (offset, bytes) in self.runs() {
            target.write_pooled(pool, offset, bytes);
        }
    }

    /// Total number of modified bytes carried by the diff.
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Encoded size in bytes: payload plus per-run and per-diff headers.
    /// Matches `wire::put_diff` exactly (asserted by a codec unit test);
    /// used for log-size accounting and traffic statistics.
    pub fn wire_size(&self) -> usize {
        // page id (4) + interval (8) + run count (4) + per run: offset (4) + len (4)
        16 + self.runs.iter().map(|r| 8 + r.len as usize).sum::<usize>()
    }
}

/// The pre-optimization byte-slice diffing, retained as an executable
/// reference: property tests assert the u64 fast path produces identical
/// runs, and the `diff` microbench quotes it as the "before" number.
pub mod reference {
    use super::*;

    /// A run produced by the reference implementation (owns its bytes, as
    /// the original `DiffRun` did).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct NaiveRun {
        /// Byte offset of the run within the page.
        pub offset: u32,
        /// The new contents of the run.
        pub bytes: Vec<u8>,
    }

    /// Word-by-word `[u8]` slice comparison, one `Vec<u8>` per run — the
    /// exact shape of `Diff::create` before the zero-copy rework. Returns an
    /// empty vector when the page is unchanged.
    pub fn create(twin: &Page, current: &Page) -> Vec<NaiveRun> {
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        let a = twin.bytes();
        let b = current.bytes();
        let mut runs: Vec<NaiveRun> = Vec::new();
        let mut run_start: Option<usize> = None;
        let words = a.len() / PAGE_ALIGN_WORD;
        for w in 0..words {
            let off = w * PAGE_ALIGN_WORD;
            let same = a[off..off + PAGE_ALIGN_WORD] == b[off..off + PAGE_ALIGN_WORD];
            match (same, run_start) {
                (false, None) => run_start = Some(off),
                (true, Some(start)) => {
                    runs.push(NaiveRun {
                        offset: start as u32,
                        bytes: b[start..off].to_vec(),
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            runs.push(NaiveRun {
                offset: start as u32,
                bytes: b[start..].to_vec(),
            });
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(proc_: usize, seq: u32) -> Interval {
        Interval { proc: proc_, seq }
    }

    fn runs_of(d: &Diff) -> Vec<(usize, Vec<u8>)> {
        d.runs().map(|(o, b)| (o, b.to_vec())).collect()
    }

    #[test]
    fn unchanged_page_yields_no_diff() {
        let p = Page::zeroed(128);
        assert!(Diff::create(PageId(0), iv(0, 1), &p, &p.clone()).is_none());
    }

    #[test]
    fn diff_captures_exactly_the_modified_words() {
        let twin = Page::zeroed(128);
        let mut cur = twin.clone();
        cur.write(16, &[1, 2, 3]); // word 2
        cur.write(120, &[9]); // last word
        let d = Diff::create(PageId(3), iv(1, 4), &twin, &cur).unwrap();
        let runs = runs_of(&d);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 16);
        assert_eq!(runs[0].1.len(), PAGE_ALIGN_WORD);
        assert_eq!(runs[1].0, 120);

        let mut replay = Page::zeroed(128);
        d.apply(&mut replay);
        assert_eq!(replay.bytes(), cur.bytes());
    }

    #[test]
    fn adjacent_modified_words_merge_into_one_run() {
        let twin = Page::zeroed(128);
        let mut cur = twin.clone();
        cur.write(8, &[1u8; 24]); // words 1..=3
        let d = Diff::create(PageId(0), iv(0, 1), &twin, &cur).unwrap();
        let runs = runs_of(&d);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 8);
        assert_eq!(runs[0].1.len(), 24);
    }

    #[test]
    fn apply_to_diverged_base_only_touches_modified_words() {
        // Multiple-writer semantics: applying a diff on a page that has
        // concurrent writes elsewhere must not clobber them.
        let twin = Page::zeroed(64);
        let mut writer_a = twin.clone();
        writer_a.write(0, &[0xAA; 8]);
        let da = Diff::create(PageId(0), iv(0, 1), &twin, &writer_a).unwrap();

        let mut home = twin.clone();
        home.write(32, &[0xBB; 8]); // concurrent independent write
        da.apply(&mut home);
        assert_eq!(home.read(0, 8), &[0xAA; 8]);
        assert_eq!(home.read(32, 8), &[0xBB; 8]);
    }

    #[test]
    fn wire_size_counts_payload_and_headers() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        let d = Diff::create(PageId(0), iv(0, 1), &twin, &cur).unwrap();
        assert_eq!(d.payload_bytes(), 8);
        assert_eq!(d.wire_size(), 16 + 8 + 8);
    }

    #[test]
    fn scratch_is_reusable_across_diffs() {
        let mut scratch = DiffScratch::new();
        let twin = Page::zeroed(128);
        let mut cur1 = twin.clone();
        cur1.write(0, &[1; 16]);
        let mut cur2 = twin.clone();
        cur2.write(64, &[2; 8]);
        let d1 = Diff::create_with(&mut scratch, PageId(0), iv(0, 1), &twin, &cur1).unwrap();
        let d2 = Diff::create_with(&mut scratch, PageId(1), iv(0, 1), &twin, &cur2).unwrap();
        assert_eq!(runs_of(&d1), vec![(0, vec![1; 16])]);
        assert_eq!(runs_of(&d2), vec![(64, vec![2; 8])]);
    }

    #[test]
    fn from_runs_matches_create() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(8, &[7; 8]);
        cur.write(40, &[9; 16]);
        let d = Diff::create(PageId(2), iv(1, 3), &twin, &cur).unwrap();
        let rebuilt = Diff::from_runs(PageId(2), iv(1, 3), d.runs().map(|(o, b)| (o as u32, b)));
        assert_eq!(d, rebuilt);
    }

    #[test]
    fn fast_path_matches_reference_implementation() {
        let twin = Page::zeroed(256);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        cur.write(24, &[2; 32]);
        cur.write(248, &[3; 8]);
        let d = Diff::create(PageId(0), iv(0, 1), &twin, &cur).unwrap();
        let naive = reference::create(&twin, &cur);
        let fast: Vec<(u32, Vec<u8>)> = d.runs().map(|(o, b)| (o as u32, b.to_vec())).collect();
        let slow: Vec<(u32, Vec<u8>)> = naive.into_iter().map(|r| (r.offset, r.bytes)).collect();
        assert_eq!(fast, slow);
    }
}
