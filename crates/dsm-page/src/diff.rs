//! Word-granularity page diffs.
//!
//! A writer creates a *twin* (copy) of a page before its first write in an
//! interval. At release time the modified words are encoded as a [`Diff`]
//! relative to the twin, sent to the page's home, and (in the fault-tolerant
//! protocol) appended to the writer's per-page diff log.

use crate::addr::PageId;
use crate::page::{Page, PAGE_ALIGN_WORD};
use crate::version::Interval;

/// One contiguous run of modified bytes within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the page (word aligned).
    pub offset: u32,
    /// The new contents of the run (length is a multiple of the diff word).
    pub bytes: Vec<u8>,
}

/// The modifications one writer made to one page in one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    /// The page this diff applies to.
    pub page: PageId,
    /// The interval in which the writes were performed. Applying the diff at
    /// the home advances the page version vector entry for `interval.proc`
    /// to `interval.seq`.
    pub interval: Interval,
    /// Modified runs, in increasing offset order, non-overlapping.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff between `twin` (the pre-write copy) and `current`.
    ///
    /// Comparison is at [`PAGE_ALIGN_WORD`]-byte granularity, exactly like
    /// the word-level diffing of HLRC implementations; adjacent modified
    /// words are merged into a single run. Returns `None` when the page is
    /// unchanged (no word differs).
    pub fn create(page: PageId, interval: Interval, twin: &Page, current: &Page) -> Option<Diff> {
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        let a = twin.bytes();
        let b = current.bytes();
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut run_start: Option<usize> = None;
        let words = a.len() / PAGE_ALIGN_WORD;
        for w in 0..words {
            let off = w * PAGE_ALIGN_WORD;
            let same = a[off..off + PAGE_ALIGN_WORD] == b[off..off + PAGE_ALIGN_WORD];
            match (same, run_start) {
                (false, None) => run_start = Some(off),
                (true, Some(start)) => {
                    runs.push(DiffRun {
                        offset: start as u32,
                        bytes: b[start..off].to_vec(),
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            runs.push(DiffRun {
                offset: start as u32,
                bytes: b[start..].to_vec(),
            });
        }
        if runs.is_empty() {
            None
        } else {
            Some(Diff {
                page,
                interval,
                runs,
            })
        }
    }

    /// Apply the diff to `target`, overwriting the modified runs.
    pub fn apply(&self, target: &mut Page) {
        for run in &self.runs {
            target.write(run.offset as usize, &run.bytes);
        }
    }

    /// Total number of modified bytes carried by the diff.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Approximate encoded size in bytes: payload plus per-run and per-diff
    /// headers. Used for log-size accounting and traffic statistics.
    pub fn wire_size(&self) -> usize {
        // page id (4) + interval (8) + run count (4) + per run: offset (4) + len (4)
        16 + self.runs.iter().map(|r| 8 + r.bytes.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(proc_: usize, seq: u32) -> Interval {
        Interval { proc: proc_, seq }
    }

    #[test]
    fn unchanged_page_yields_no_diff() {
        let p = Page::zeroed(128);
        assert!(Diff::create(PageId(0), iv(0, 1), &p, &p.clone()).is_none());
    }

    #[test]
    fn diff_captures_exactly_the_modified_words() {
        let twin = Page::zeroed(128);
        let mut cur = twin.clone();
        cur.write(16, &[1, 2, 3]); // word 2
        cur.write(120, &[9]); // last word
        let d = Diff::create(PageId(3), iv(1, 4), &twin, &cur).unwrap();
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].offset, 16);
        assert_eq!(d.runs[0].bytes.len(), PAGE_ALIGN_WORD);
        assert_eq!(d.runs[1].offset, 120);

        let mut replay = Page::zeroed(128);
        d.apply(&mut replay);
        assert_eq!(replay.bytes(), cur.bytes());
    }

    #[test]
    fn adjacent_modified_words_merge_into_one_run() {
        let twin = Page::zeroed(128);
        let mut cur = twin.clone();
        cur.write(8, &[1u8; 24]); // words 1..=3
        let d = Diff::create(PageId(0), iv(0, 1), &twin, &cur).unwrap();
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].bytes.len(), 24);
    }

    #[test]
    fn apply_to_diverged_base_only_touches_modified_words() {
        // Multiple-writer semantics: applying a diff on a page that has
        // concurrent writes elsewhere must not clobber them.
        let twin = Page::zeroed(64);
        let mut writer_a = twin.clone();
        writer_a.write(0, &[0xAA; 8]);
        let da = Diff::create(PageId(0), iv(0, 1), &twin, &writer_a).unwrap();

        let mut home = twin.clone();
        home.write(32, &[0xBB; 8]); // concurrent independent write
        da.apply(&mut home);
        assert_eq!(home.read(0, 8), &[0xAA; 8]);
        assert_eq!(home.read(32, 8), &[0xBB; 8]);
    }

    #[test]
    fn wire_size_counts_payload_and_headers() {
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        let d = Diff::create(PageId(0), iv(0, 1), &twin, &cur).unwrap();
        assert_eq!(d.payload_bytes(), 8);
        assert_eq!(d.wire_size(), 16 + 8 + 8);
    }
}
