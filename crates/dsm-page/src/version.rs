//! Logical time: intervals and vector clocks.
//!
//! In LRC, a process's execution is divided into *intervals* delimited by
//! synchronization operations. A process's *vector timestamp* records, for
//! every process, the most recent interval of that process whose effects the
//! local process has seen. The same structure doubles as a page *version
//! vector* (`p.v`): the most recent interval of each writer whose diff has
//! been applied to the page.

/// Index of a process (node) in the cluster, `0..n`.
pub type ProcId = usize;

/// Sequence number of a synchronization interval at a single process. The
/// first interval is 1; 0 means "nothing seen yet".
pub type IntervalSeq = u32;

/// A (process, interval) pair: one interval of one process's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// The process whose interval this is.
    pub proc: ProcId,
    /// The interval sequence number at that process (1-based).
    pub seq: IntervalSeq,
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}:{}>", self.proc, self.seq)
    }
}

/// A vector of interval sequence numbers, one per process.
///
/// Forms a lattice under elementwise max (`join`) / min (`meet`) with partial
/// order `covers` (elementwise >=).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    v: Vec<IntervalSeq>,
}

impl VectorClock {
    /// The zero clock for an `n`-process system.
    pub fn zero(n: usize) -> Self {
        VectorClock { v: vec![0; n] }
    }

    /// Build from raw entries.
    pub fn from_vec(v: Vec<IntervalSeq>) -> Self {
        VectorClock { v }
    }

    /// Number of processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True for the empty (0-process) clock.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Entry for process `p`.
    #[inline]
    pub fn get(&self, p: ProcId) -> IntervalSeq {
        self.v[p]
    }

    /// Set entry for process `p`.
    #[inline]
    pub fn set(&mut self, p: ProcId, seq: IntervalSeq) {
        self.v[p] = seq;
    }

    /// Advance process `p`'s own entry by one and return the new interval.
    pub fn tick(&mut self, p: ProcId) -> Interval {
        self.v[p] += 1;
        Interval {
            proc: p,
            seq: self.v[p],
        }
    }

    /// Elementwise maximum (lattice join) with `other`, in place.
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(other.v.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Elementwise minimum (lattice meet) with `other`, in place.
    pub fn meet(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(other.v.iter()) {
            *a = (*a).min(*b);
        }
    }

    /// `self >= other` elementwise: every interval known to `other` is known
    /// to `self`.
    pub fn covers(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.v.len(), other.v.len());
        self.v.iter().zip(other.v.iter()).all(|(a, b)| a >= b)
    }

    /// Does this clock cover a single interval?
    #[inline]
    pub fn covers_interval(&self, i: Interval) -> bool {
        self.v[i.proc] >= i.seq
    }

    /// Intervals of `other` not covered by `self`: for each process, the
    /// half-open range `(self[p], other[p]]` of missing sequence numbers.
    pub fn missing_from(&self, other: &VectorClock) -> Vec<Interval> {
        debug_assert_eq!(self.v.len(), other.v.len());
        let mut out = Vec::new();
        for (p, (&a, &b)) in self.v.iter().zip(other.v.iter()).enumerate() {
            for seq in (a + 1)..=b {
                out.push(Interval { proc: p, seq });
            }
        }
        out
    }

    /// Raw entries.
    #[inline]
    pub fn as_slice(&self) -> &[IntervalSeq] {
        &self.v
    }

    /// Wire size in bytes of this clock when encoded (4 bytes per entry).
    #[inline]
    pub fn wire_size(&self) -> usize {
        4 * self.v.len()
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.v.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

/// Elementwise minimum over a non-empty iterator of clocks: the paper's
/// `Tmin = min_{j} T^j_ckp`.
pub fn elementwise_min<'a>(
    mut clocks: impl Iterator<Item = &'a VectorClock>,
) -> Option<VectorClock> {
    let first = clocks.next()?.clone();
    Some(clocks.fold(first, |mut acc, c| {
        acc.meet(c);
        acc
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_own_entry() {
        let mut vt = VectorClock::zero(3);
        let i = vt.tick(1);
        assert_eq!(i, Interval { proc: 1, seq: 1 });
        assert_eq!(vt.as_slice(), &[0, 1, 0]);
    }

    #[test]
    fn join_and_covers() {
        let mut a = VectorClock::from_vec(vec![1, 5, 0]);
        let b = VectorClock::from_vec(vec![2, 3, 0]);
        assert!(!a.covers(&b));
        a.join(&b);
        assert_eq!(a.as_slice(), &[2, 5, 0]);
        assert!(a.covers(&b));
    }

    #[test]
    fn missing_from_enumerates_gap() {
        let a = VectorClock::from_vec(vec![2, 0]);
        let b = VectorClock::from_vec(vec![4, 1]);
        let missing = a.missing_from(&b);
        assert_eq!(
            missing,
            vec![
                Interval { proc: 0, seq: 3 },
                Interval { proc: 0, seq: 4 },
                Interval { proc: 1, seq: 1 },
            ]
        );
    }

    #[test]
    fn elementwise_min_computes_tmin() {
        let a = VectorClock::from_vec(vec![3, 1, 7]);
        let b = VectorClock::from_vec(vec![2, 4, 9]);
        let m = elementwise_min([&a, &b].into_iter()).unwrap();
        assert_eq!(m.as_slice(), &[2, 1, 7]);
        assert!(elementwise_min(std::iter::empty()).is_none());
    }

    #[test]
    fn covers_interval_matches_entry() {
        let a = VectorClock::from_vec(vec![3, 1]);
        assert!(a.covers_interval(Interval { proc: 0, seq: 3 }));
        assert!(!a.covers_interval(Interval { proc: 0, seq: 4 }));
        assert!(!a.covers_interval(Interval { proc: 1, seq: 2 }));
    }
}
