//! A per-node free list of page-sized buffers.
//!
//! Twins and copy-on-write page materializations are the only per-interval
//! buffer consumers on the hot path. Both hand their buffer back when the
//! interval ends (the twin is dropped after diffing; an invalidated cached
//! copy is dropped on the next write notice), so a small free list makes
//! steady-state intervals allocation-free: [`PagePool::take_copy`] pops a
//! recycled buffer instead of asking the allocator.
//!
//! Safety of recycling rests on uniqueness: [`PagePool::recycle`] only
//! accepts a buffer whose reference count is one. A buffer still referenced
//! by an in-flight message, a logged diff, or another page copy is rejected
//! (and simply dropped), so pooled reuse can never scribble over bytes
//! someone else is reading.

use std::sync::Arc;

use crate::page::Page;

/// Default bound on the number of buffers kept in the free list. Beyond the
/// bound, recycled buffers are dropped: the pool adapts to the working set
/// (pages written per interval) without hoarding memory after a burst.
pub const DEFAULT_POOL_CAP: usize = 1024;

/// Counters describing pool behavior, exported through run reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the free list (no allocation).
    pub hits: u64,
    /// Buffer requests that fell through to the allocator.
    pub misses: u64,
    /// Buffers accepted back into the free list.
    pub recycled: u64,
    /// Buffers offered back but dropped (still shared, size mismatch, or
    /// free list full).
    pub rejected: u64,
}

impl PoolStats {
    /// Accumulate `other` into `self` (for cluster-wide totals).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.rejected += other.rejected;
    }
}

/// A free list of fixed-size unique buffers.
#[derive(Debug)]
pub struct PagePool {
    buf_size: usize,
    cap: usize,
    free: Vec<Arc<[u8]>>,
    stats: PoolStats,
}

impl PagePool {
    /// A pool of `buf_size`-byte buffers with the default free-list bound.
    pub fn new(buf_size: usize) -> Self {
        Self::with_capacity(buf_size, DEFAULT_POOL_CAP)
    }

    /// A pool with an explicit free-list bound.
    pub fn with_capacity(buf_size: usize, cap: usize) -> Self {
        PagePool {
            buf_size,
            cap,
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Buffer size this pool serves.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Buffers currently in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// A unique buffer initialized from `src`: a recycled buffer when one is
    /// available (hit), a fresh allocation otherwise (miss).
    pub fn take_copy(&mut self, src: &[u8]) -> Arc<[u8]> {
        if src.len() == self.buf_size {
            if let Some(mut buf) = self.free.pop() {
                self.stats.hits += 1;
                Arc::get_mut(&mut buf)
                    .expect("pooled buffers are unique")
                    .copy_from_slice(src);
                return buf;
            }
        }
        self.stats.misses += 1;
        Arc::from(src)
    }

    /// Offer a page's buffer back to the pool. Accepted only when the buffer
    /// is unique (no other clone, message, or log still references it), the
    /// size matches, and the free list has room. Returns whether the buffer
    /// was kept.
    pub fn recycle(&mut self, page: Page) -> bool {
        let buf = page.into_arc();
        let unique = Arc::strong_count(&buf) == 1;
        if unique && buf.len() == self.buf_size && self.free.len() < self.cap {
            self.free.push(buf);
            self.stats.recycled += 1;
            true
        } else {
            self.stats.rejected += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_then_take_is_a_hit() {
        let mut pool = PagePool::new(64);
        assert!(pool.recycle(Page::zeroed(64)));
        let src = vec![7u8; 64];
        let buf = pool.take_copy(&src);
        assert_eq!(&buf[..], &src[..]);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 0, 1));
    }

    #[test]
    fn empty_pool_take_is_a_miss() {
        let mut pool = PagePool::new(64);
        let buf = pool.take_copy(&[1u8; 64]);
        assert_eq!(&buf[..], &[1u8; 64]);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn shared_buffer_is_rejected() {
        let mut pool = PagePool::new(64);
        let p = Page::zeroed(64);
        let _held = p.share();
        assert!(!pool.recycle(p));
        assert_eq!(pool.stats().rejected, 1);
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn wrong_size_is_rejected() {
        let mut pool = PagePool::new(64);
        assert!(!pool.recycle(Page::zeroed(128)));
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = PagePool::with_capacity(64, 2);
        assert!(pool.recycle(Page::zeroed(64)));
        assert!(pool.recycle(Page::zeroed(64)));
        assert!(!pool.recycle(Page::zeroed(64)));
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        // twin → end-interval → recycle loop: after warm-up every take hits.
        let mut pool = PagePool::new(64);
        let mut page = Page::zeroed(64);
        for i in 0..10u8 {
            let twin = page.twin();
            page.write_pooled(&mut pool, 0, &[i]);
            pool.recycle(twin);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 1, "only the first interval allocates");
        assert_eq!(s.hits, 9);
    }
}
