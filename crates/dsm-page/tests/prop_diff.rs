//! Property tests for the diff and vector-clock machinery.

use dsm_page::diff::reference;
use dsm_page::{Diff, DiffScratch, Interval, Page, PageId, VectorClock};
use proptest::prelude::*;

const PAGE: usize = 256;

/// Random page contents with low entropy so that diffs have both changed and
/// unchanged words.
fn page_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(0u8), any::<u8>()], PAGE)
}

/// A twin/current pair built from an explicit write pattern, covering the
/// shapes the u64 fast path must not get wrong:
/// - dense: most words mutated (runs span nearly the whole page),
/// - sparse: a handful of isolated words (many short runs),
/// - unaligned run boundaries: runs starting/ending at the first/last word
///   of the page and runs separated by exactly one unchanged word.
fn pair_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let words = PAGE / 8;
    let base = proptest::collection::vec(any::<u8>(), PAGE);
    // Each mutation is (word index, new word value); duplicates are fine.
    let sparse = proptest::collection::vec((0..words, any::<u64>()), 0..6);
    let dense = proptest::collection::vec((0..words, any::<u64>()), words..2 * words);
    let edges = prop_oneof![
        Just(vec![(0usize, 1u64)]),                              // first word only
        Just(vec![(words - 1, 1u64)]),                           // last word only
        Just(vec![(0usize, 1u64), (words - 1, 1)]),              // both edges
        Just(vec![(3usize, 1u64), (5, 1)]),                      // one-word gap
        Just((0..words).map(|w| (w, 1u64)).collect::<Vec<_>>()), // whole page
    ];
    (base, prop_oneof![sparse, dense, edges]).prop_map(
        |(base, muts): (Vec<u8>, Vec<(usize, u64)>)| {
            let mut cur = base.clone();
            for (w, val) in muts {
                cur[w * 8..w * 8 + 8].copy_from_slice(&val.to_ne_bytes());
            }
            (base, cur)
        },
    )
}

proptest! {
    /// diff(create(twin, cur)).apply(twin) == cur, for arbitrary page pairs.
    #[test]
    fn diff_is_exact_patch(a in page_strategy(), b in page_strategy()) {
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        let mut replay = twin.clone();
        if let Some(d) = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur) {
            d.apply(&mut replay);
        }
        prop_assert_eq!(replay.bytes(), cur.bytes());
    }

    /// Runs are sorted, non-overlapping, word-aligned, and only cover words
    /// that actually differ.
    #[test]
    fn diff_runs_are_canonical(a in page_strategy(), b in page_strategy()) {
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        if let Some(d) = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur) {
            let mut prev_end = 0usize;
            for (i, (off, bytes)) in d.runs().enumerate() {
                prop_assert_eq!(off % 8, 0);
                prop_assert_eq!(bytes.len() % 8, 0);
                if i > 0 {
                    // A gap of at least one unchanged word separates runs.
                    prop_assert!(off >= prev_end + 8);
                }
                // Boundary words of each run really differ.
                prop_assert_ne!(&a[off..off + 8], &b[off..off + 8]);
                let last = off + bytes.len() - 8;
                prop_assert_ne!(&a[last..last + 8], &b[last..last + 8]);
                prev_end = off + bytes.len();
            }
        }
    }

    /// The u64 fast path produces run-for-run identical output to the
    /// retained byte-wise reference implementation, on random pairs.
    #[test]
    fn fast_diff_equals_reference_random(a in page_strategy(), b in page_strategy()) {
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        let naive = reference::create(&twin, &cur);
        let fast = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur);
        match fast {
            None => prop_assert!(naive.is_empty()),
            Some(d) => {
                let f: Vec<(u32, Vec<u8>)> =
                    d.runs().map(|(o, bytes)| (o as u32, bytes.to_vec())).collect();
                let n: Vec<(u32, Vec<u8>)> =
                    naive.into_iter().map(|r| (r.offset, r.bytes)).collect();
                prop_assert_eq!(f, n);
            }
        }
    }

    /// Same equivalence on structured dense / sparse / run-boundary-edge
    /// patterns, plus apply-roundtrip, using the reused node scratch.
    #[test]
    fn fast_diff_equals_reference_patterns(pair in pair_strategy()) {
        let (a, b) = pair;
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        let naive = reference::create(&twin, &cur);
        let mut scratch = DiffScratch::new();
        let fast = Diff::create_with(
            &mut scratch, PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur);
        match fast {
            None => prop_assert!(naive.is_empty()),
            Some(d) => {
                let f: Vec<(u32, Vec<u8>)> =
                    d.runs().map(|(o, bytes)| (o as u32, bytes.to_vec())).collect();
                let n: Vec<(u32, Vec<u8>)> =
                    naive.into_iter().map(|r| (r.offset, r.bytes)).collect();
                prop_assert_eq!(f, n);
                let mut replay = twin.clone();
                d.apply(&mut replay);
                prop_assert_eq!(replay.bytes(), cur.bytes());
            }
        }
    }

    /// Vector clock join is the lattice least-upper-bound: commutative,
    /// idempotent, and covers both operands.
    #[test]
    fn vector_clock_join_laws(
        a in proptest::collection::vec(0u32..50, 4),
        b in proptest::collection::vec(0u32..50, 4),
    ) {
        let va = VectorClock::from_vec(a);
        let vb = VectorClock::from_vec(b);
        let mut ab = va.clone();
        ab.join(&vb);
        let mut ba = vb.clone();
        ba.join(&va);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.covers(&va) && ab.covers(&vb));
        let mut idem = ab.clone();
        idem.join(&ab);
        prop_assert_eq!(&idem, &ab);
        // join is the *least* upper bound: any other upper bound covers it.
        let mut ub = va.clone();
        ub.join(&vb);
        prop_assert!(ub.covers(&ab) && ab.covers(&ub));
    }

    /// `missing_from` enumerates exactly the intervals whose join closes the
    /// gap between two clocks.
    #[test]
    fn missing_from_closes_gap(
        a in proptest::collection::vec(0u32..20, 4),
        b in proptest::collection::vec(0u32..20, 4),
    ) {
        let va = VectorClock::from_vec(a);
        let vb = VectorClock::from_vec(b);
        let missing = va.missing_from(&vb);
        let mut closed = va.clone();
        for iv in &missing {
            prop_assert!(!va.covers_interval(*iv));
            prop_assert!(vb.covers_interval(*iv));
            let cur = closed.get(iv.proc);
            closed.set(iv.proc, cur.max(iv.seq));
        }
        // Applying all missing intervals turns `a` into join(a, b).
        let mut j = va.clone();
        j.join(&vb);
        prop_assert_eq!(closed, j);
    }
}
