//! Property tests for the diff and vector-clock machinery.

use dsm_page::{Diff, Interval, Page, PageId, VectorClock};
use proptest::prelude::*;

const PAGE: usize = 256;

/// Random page contents with low entropy so that diffs have both changed and
/// unchanged words.
fn page_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(0u8), any::<u8>()], PAGE)
}

proptest! {
    /// diff(create(twin, cur)).apply(twin) == cur, for arbitrary page pairs.
    #[test]
    fn diff_is_exact_patch(a in page_strategy(), b in page_strategy()) {
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        let mut replay = twin.clone();
        if let Some(d) = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur) {
            d.apply(&mut replay);
        }
        prop_assert_eq!(replay.bytes(), cur.bytes());
    }

    /// Runs are sorted, non-overlapping, word-aligned, and only cover words
    /// that actually differ.
    #[test]
    fn diff_runs_are_canonical(a in page_strategy(), b in page_strategy()) {
        let twin = Page::from_bytes(&a);
        let cur = Page::from_bytes(&b);
        if let Some(d) = Diff::create(PageId(0), Interval { proc: 0, seq: 1 }, &twin, &cur) {
            let mut prev_end = 0u32;
            for (i, run) in d.runs.iter().enumerate() {
                prop_assert_eq!(run.offset % 8, 0);
                prop_assert_eq!(run.bytes.len() % 8, 0);
                if i > 0 {
                    // A gap of at least one unchanged word separates runs.
                    prop_assert!(run.offset >= prev_end + 8);
                }
                // Boundary words of each run really differ.
                let off = run.offset as usize;
                prop_assert_ne!(&a[off..off + 8], &b[off..off + 8]);
                let last = off + run.bytes.len() - 8;
                prop_assert_ne!(&a[last..last + 8], &b[last..last + 8]);
                prev_end = run.offset + run.bytes.len() as u32;
            }
        }
    }

    /// Vector clock join is the lattice least-upper-bound: commutative,
    /// idempotent, and covers both operands.
    #[test]
    fn vector_clock_join_laws(
        a in proptest::collection::vec(0u32..50, 4),
        b in proptest::collection::vec(0u32..50, 4),
    ) {
        let va = VectorClock::from_vec(a);
        let vb = VectorClock::from_vec(b);
        let mut ab = va.clone();
        ab.join(&vb);
        let mut ba = vb.clone();
        ba.join(&va);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.covers(&va) && ab.covers(&vb));
        let mut idem = ab.clone();
        idem.join(&ab);
        prop_assert_eq!(&idem, &ab);
        // join is the *least* upper bound: any other upper bound covers it.
        let mut ub = va.clone();
        ub.join(&vb);
        prop_assert!(ub.covers(&ab) && ab.covers(&ub));
    }

    /// `missing_from` enumerates exactly the intervals whose join closes the
    /// gap between two clocks.
    #[test]
    fn missing_from_closes_gap(
        a in proptest::collection::vec(0u32..20, 4),
        b in proptest::collection::vec(0u32..20, 4),
    ) {
        let va = VectorClock::from_vec(a);
        let vb = VectorClock::from_vec(b);
        let missing = va.missing_from(&vb);
        let mut closed = va.clone();
        for iv in &missing {
            prop_assert!(!va.covers_interval(*iv));
            prop_assert!(vb.covers_interval(*iv));
            let cur = closed.get(iv.proc);
            closed.set(iv.proc, cur.max(iv.seq));
        }
        // Applying all missing intervals turns `a` into join(a, b).
        let mut j = va.clone();
        j.join(&vb);
        prop_assert_eq!(closed, j);
    }
}
