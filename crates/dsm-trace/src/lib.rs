//! Structured protocol tracing for the fault-tolerant DSM.
//!
//! The crate provides four layers:
//!
//! 1. **Events** ([`Event`], [`EventKind`]) — a typed vocabulary for every
//!    HLRC + FT protocol transition (page faults, diffs, locks, barriers,
//!    checkpoints, log trims, CGC, messages, crashes, recovery phases).
//! 2. **Recording** ([`Trace`], [`NodeTracer`], [`Ring`]) — one bounded
//!    ring buffer per node behind a single atomic enable flag; when
//!    disabled, emitting costs one relaxed load and a branch.
//! 3. **Aggregation** ([`Histogram`], [`LatencyHists`]) — hand-rolled
//!    log2-bucketed latency histograms merged into the run report.
//! 4. **Export** ([`export`]) — JSONL and Chrome trace-event JSON (one
//!    lane per node, loadable in Perfetto / `chrome://tracing`), plus a
//!    flight recorder that dumps the last events per node on panic.

mod ctx;
mod event;
pub mod export;
mod flight;
mod hist;
pub mod json;
mod ring;

pub use ctx::TraceCtx;
pub use event::{Event, EventKind, RecPhase, TrimRule};
pub use flight::{dump_flight_recorders, register_flight_recorder};
pub use hist::{bucket_lo, bucket_of, Histogram, LatencyHists, BUCKETS};
pub use ring::Ring;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

/// A consumer of the live event stream, called synchronously from the
/// emitting thread (after the event is recorded into the ring). Used by
/// the online invariant monitor; a sink must be cheap and must not emit
/// events itself.
pub trait EventSink: Send + Sync {
    /// Observe one freshly recorded event.
    fn on_event(&self, e: &Event);
}

/// How a [`Trace`] records. Built explicitly or from the environment
/// (`FTDSM_TRACE`, `FTDSM_TRACE_ECHO`, `FTDSM_TRACE_BUF`,
/// `FTDSM_TRACE_LOCKS`).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch; when false, emit is a load + branch.
    pub enabled: bool,
    /// Echo every recorded event to stderr as it happens.
    pub echo: bool,
    /// Echo only lock-protocol events (legacy `FTDSM_TRACE_LOCKS` parity).
    pub echo_locks: bool,
    /// Per-node ring capacity in events.
    pub buffer: usize,
    /// Events per node dumped by the flight recorder.
    pub flight_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            echo: false,
            echo_locks: false,
            buffer: 16 * 1024,
            flight_events: 64,
        }
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

impl TraceConfig {
    /// Tracing on with default buffering.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Read the `FTDSM_TRACE*` environment variables. `FTDSM_TRACE_LOCKS`
    /// implies `enabled` so the legacy lock echo keeps working unchanged.
    pub fn from_env() -> Self {
        let echo_locks = env_flag("FTDSM_TRACE_LOCKS");
        let enabled = env_flag("FTDSM_TRACE") || echo_locks;
        let echo = env_flag("FTDSM_TRACE_ECHO");
        let buffer = std::env::var("FTDSM_TRACE_BUF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16 * 1024);
        TraceConfig {
            enabled,
            echo,
            echo_locks,
            buffer,
            flight_events: 64,
        }
    }
}

pub(crate) struct Shared {
    enabled: AtomicBool,
    echo: AtomicBool,
    echo_locks: AtomicBool,
    epoch: Instant,
    flight_events: usize,
    nodes: Vec<Mutex<Ring>>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
}

/// Cluster-wide trace handle: owns the per-node rings and the enable flag.
/// Cheap to clone (an `Arc` internally); one per run.
#[derive(Clone)]
pub struct Trace {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("nodes", &self.n_nodes())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// Create a trace for an `n_nodes` cluster.
    pub fn new(n_nodes: usize, config: &TraceConfig) -> Self {
        let shared = Arc::new(Shared {
            enabled: AtomicBool::new(config.enabled),
            echo: AtomicBool::new(config.echo),
            echo_locks: AtomicBool::new(config.echo_locks),
            epoch: Instant::now(),
            flight_events: config.flight_events,
            nodes: (0..n_nodes)
                .map(|_| Mutex::new(Ring::new(config.buffer)))
                .collect(),
            sink: RwLock::new(None),
        });
        Trace { shared }
    }

    /// A disabled trace for tests and default construction.
    pub fn disabled(n_nodes: usize) -> Self {
        Trace::new(n_nodes, &TraceConfig::default())
    }

    /// Handle for one node's threads to emit through.
    pub fn tracer(&self, node: usize) -> NodeTracer {
        assert!(node < self.shared.nodes.len(), "node out of range");
        NodeTracer {
            shared: Arc::clone(&self.shared),
            node,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Number of node lanes.
    pub fn n_nodes(&self) -> usize {
        self.shared.nodes.len()
    }

    /// Nanoseconds since the trace epoch.
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Copy out one node's retained events, oldest first.
    pub fn node_events(&self, node: usize) -> Vec<Event> {
        self.shared.nodes[node]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot()
    }

    /// Copy out all events from all nodes, merged in timestamp order.
    pub fn all_events(&self) -> Vec<Event> {
        let mut all: Vec<Event> = (0..self.n_nodes())
            .flat_map(|n| self.node_events(n))
            .collect();
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Per-node (retained, total-pushed) counts.
    pub fn counts(&self) -> Vec<(usize, u64)> {
        self.shared
            .nodes
            .iter()
            .map(|m| {
                let r = m.lock().unwrap_or_else(PoisonError::into_inner);
                (r.len(), r.total_pushed())
            })
            .collect()
    }

    /// Register this trace with the global flight-recorder registry so a
    /// panic anywhere dumps its tail (see [`dump_flight_recorders`]).
    pub fn register_flight_recorder(&self) {
        flight::register(Arc::downgrade(&self.shared));
    }

    /// Attach a live event sink (e.g. the invariant monitor). The sink is
    /// called synchronously from every emitting thread while tracing is
    /// enabled. Pass `None` to detach. The sink must not hold a strong
    /// reference back to this trace (that would leak the rings).
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        *self
            .shared
            .sink
            .write()
            .unwrap_or_else(PoisonError::into_inner) = sink;
    }

    /// Stitch the causal flow `flow` out of the retained events: every
    /// `MsgSend`/`MsgRecv` on the flow or directly parented by it, plus the
    /// chain of ancestor sends (bounded walk), in timestamp order.
    pub fn events_for_flow(&self, flow: u64) -> Vec<Event> {
        stitch_flow(self.all_events(), flow)
    }
}

/// Stitch one causal flow out of a timestamp-sorted event dump. Walks the
/// parent chain upward (a reply's parent is the request's flow, whose send
/// may itself have a parent), then keeps every event on any flow in the
/// chain or directly parented by one.
pub(crate) fn stitch_flow(all: Vec<Event>, flow: u64) -> Vec<Event> {
    let mut flows = vec![flow];
    let mut cursor = flow;
    for _ in 0..8 {
        let parent = all.iter().find_map(|e| match e.kind.flow_ref() {
            Some((f, p)) if f == cursor && p != 0 => Some(p),
            _ => None,
        });
        match parent {
            Some(p) if !flows.contains(&p) => {
                flows.push(p);
                cursor = p;
            }
            _ => break,
        }
    }
    all.into_iter()
        .filter(|e| match e.kind.flow_ref() {
            Some((f, p)) => flows.contains(&f) || (p != 0 && flows.contains(&p)),
            None => false,
        })
        .collect()
}

impl Shared {
    pub(crate) fn dump_tail(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut all: Vec<Event> = Vec::new();
        for (node, ring) in self.nodes.iter().enumerate() {
            let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
            let snap = ring.snapshot();
            let tail = snap.len().saturating_sub(self.flight_events);
            writeln!(
                out,
                "--- node {node}: last {} of {} events ({} dropped from ring) ---",
                snap.len() - tail,
                ring.total_pushed(),
                ring.dropped(),
            )?;
            for e in &snap[tail..] {
                writeln!(out, "{e}")?;
            }
            all.extend(snap);
        }
        // The last stitched causal flow: usually the message being served
        // when things went wrong.
        all.sort_by_key(|e| e.ts_ns);
        let last_flow = all.iter().rev().find_map(|e| match &e.kind {
            EventKind::MsgRecv { flow, .. } if *flow != 0 => Some(*flow),
            _ => None,
        });
        if let Some(flow) = last_flow {
            writeln!(out, "--- last causal flow (flow {flow}) ---")?;
            for e in stitch_flow(all, flow) {
                writeln!(out, "{e}")?;
            }
        }
        Ok(())
    }
}

/// Per-node emitting handle, shared by a node's app and service threads.
/// All emit paths start with one relaxed atomic load; when tracing is
/// disabled nothing else runs.
#[derive(Clone)]
pub struct NodeTracer {
    shared: Arc<Shared>,
    node: usize,
}

impl NodeTracer {
    /// A tracer that records nothing (for default-constructed state).
    pub fn disabled() -> Self {
        Trace::disabled(1).tracer(0)
    }

    /// Is recording on? Callers can skip payload construction when not.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Record an instant event.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if !self.enabled() {
            return;
        }
        let ts = self.shared.epoch.elapsed().as_nanos() as u64;
        self.push(Event {
            ts_ns: ts,
            dur_ns: 0,
            node: self.node,
            kind,
        });
    }

    /// Record a span that started at `start` and ends now.
    #[inline]
    pub fn emit_span(&self, kind: EventKind, start: Instant) {
        if !self.enabled() {
            return;
        }
        let dur = start.elapsed().as_nanos() as u64;
        let end = self.shared.epoch.elapsed().as_nanos() as u64;
        self.push(Event {
            ts_ns: end.saturating_sub(dur),
            dur_ns: dur.max(1),
            node: self.node,
            kind,
        });
    }

    fn push(&self, e: Event) {
        if self.shared.echo.load(Ordering::Relaxed)
            || (self.shared.echo_locks.load(Ordering::Relaxed) && e.kind.is_lock_event())
        {
            eprintln!("{e}");
        }
        self.shared.nodes[self.node]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(e.clone());
        let sink = self
            .shared
            .sink
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = sink.as_ref() {
            s.on_event(&e);
        }
    }

    /// Nanoseconds since the trace epoch (shared by every node's tracer,
    /// so cross-node timestamps and transit times are comparable).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// The node this tracer writes to.
    pub fn node(&self) -> usize {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled(2);
        let tr = t.tracer(1);
        assert!(!tr.enabled());
        tr.emit(EventKind::PageFault { page: 1 });
        tr.emit_span(
            EventKind::RecoveryPhase {
                phase: RecPhase::Replay,
            },
            Instant::now(),
        );
        assert!(t.all_events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_ts_order_across_nodes() {
        let t = Trace::new(2, &TraceConfig::enabled());
        let a = t.tracer(0);
        let b = t.tracer(1);
        a.emit(EventKind::LockRequest { lock: 1 });
        b.emit(EventKind::LockGrant {
            lock: 1,
            to: 0,
            gen: 1,
        });
        a.emit(EventKind::LockAcquire { lock: 1 });
        let all = t.all_events();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(t.node_events(0).len(), 2);
        assert_eq!(t.node_events(1).len(), 1);
    }

    #[test]
    fn span_event_has_duration_and_earlier_start() {
        let t = Trace::new(1, &TraceConfig::enabled());
        let tr = t.tracer(0);
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        tr.emit_span(EventKind::CkptBegin { seq: 1 }, start);
        let e = &t.all_events()[0];
        assert!(e.dur_ns >= 1_000_000, "dur {} too small", e.dur_ns);
        assert!(e.ts_ns + e.dur_ns <= t.now_ns() + 1_000_000);
    }

    #[test]
    fn runtime_toggle() {
        let t = Trace::disabled(1);
        let tr = t.tracer(0);
        tr.emit(EventKind::PageFault { page: 1 });
        t.set_enabled(true);
        tr.emit(EventKind::PageFault { page: 2 });
        t.set_enabled(false);
        tr.emit(EventKind::PageFault { page: 3 });
        let all = t.all_events();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].kind, EventKind::PageFault { page: 2 });
    }
}
