//! Trace exporters: JSONL (one event per line) and the Chrome trace-event
//! format (loadable in Perfetto or `chrome://tracing`).

use std::io::{self, Write};

use crate::event::Event;
use crate::Trace;

/// Serialize one event as a JSONL record.
fn event_jsonl(e: &Event) -> String {
    let mut s = format!(
        "{{\"ts_ns\":{},\"node\":{},\"event\":\"{}\"",
        e.ts_ns,
        e.node,
        e.kind.name()
    );
    if e.dur_ns > 0 {
        s.push_str(&format!(",\"dur_ns\":{}", e.dur_ns));
    }
    let args = e.kind.args_json();
    if !args.is_empty() {
        s.push(',');
        s.push_str(&args);
    }
    s.push('}');
    s
}

/// Write the merged trace as JSONL: one JSON object per line, sorted by
/// timestamp.
pub fn write_jsonl(trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
    for e in trace.all_events() {
        writeln!(out, "{}", event_jsonl(&e))?;
    }
    Ok(())
}

/// JSONL export into a string.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_jsonl(trace, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// One Chrome trace-event record. Span events (`dur_ns > 0`) become
/// complete events (`ph:"X"`); the rest become instants (`ph:"i"`).
/// Timestamps are microseconds as required by the format.
fn event_chrome(e: &Event) -> String {
    let ts_us = e.ts_ns as f64 / 1000.0;
    let args = e.kind.args_json();
    let args_obj = if args.is_empty() {
        "{}".to_string()
    } else {
        format!("{{{args}}}")
    };
    if e.dur_ns > 0 {
        let dur_us = (e.dur_ns as f64 / 1000.0).max(0.001);
        format!(
            "{{\"name\":\"{}\",\"cat\":\"dsm\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{},\"args\":{args_obj}}}",
            e.kind.name(),
            e.node
        )
    } else {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"dsm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{},\"args\":{args_obj}}}",
            e.kind.name(),
            e.node
        )
    }
}

/// Cross-node flow arrows: a stamped `MsgSend` opens a flow (`ph:"s"`),
/// the matching `MsgRecv` closes it (`ph:"f"`, binding to the enclosing
/// slice). Perfetto draws an arrow from the sender's lane to the
/// receiver's.
fn event_flow(e: &Event) -> Option<String> {
    let ts_us = e.ts_ns as f64 / 1000.0;
    match &e.kind {
        crate::EventKind::MsgSend { kind, flow, .. } if *flow != 0 => Some(format!(
            "{{\"name\":\"{kind}\",\"cat\":\"dsm.flow\",\"ph\":\"s\",\"id\":{flow},\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
            e.node
        )),
        crate::EventKind::MsgRecv { kind, flow, .. } if *flow != 0 => Some(format!(
            "{{\"name\":\"{kind}\",\"cat\":\"dsm.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow},\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
            e.node
        )),
        _ => None,
    }
}

/// Write the merged trace in Chrome trace-event JSON. Each node gets its
/// own lane (`tid`), named via `thread_name` metadata so Perfetto shows
/// "node 0", "node 1", … rows under one "dsm cluster" process. Stamped
/// message sends/receives additionally emit flow events (`ph:"s"`/`"f"`)
/// so Perfetto draws cross-lane causality arrows.
pub fn write_chrome_trace(trace: &Trace, out: &mut dyn Write) -> io::Result<()> {
    write!(out, "{{\"traceEvents\":[")?;
    write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"dsm cluster\"}}}}"
    )?;
    for node in 0..trace.n_nodes() {
        write!(
            out,
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{node},\"args\":{{\"name\":\"node {node}\"}}}}"
        )?;
    }
    for e in trace.all_events() {
        write!(out, ",{}", event_chrome(&e))?;
        if let Some(flow) = event_flow(&e) {
            write!(out, ",{flow}")?;
        }
    }
    write!(out, "],\"displayTimeUnit\":\"ns\"}}")?;
    Ok(())
}

/// Chrome trace export into a string.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(trace, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, RecPhase, TraceConfig};
    use std::time::Instant;

    fn sample_trace() -> Trace {
        let t = Trace::new(2, &TraceConfig::enabled());
        let a = t.tracer(0);
        let b = t.tracer(1);
        a.emit(EventKind::PageFault { page: 7 });
        b.emit(EventKind::MsgSend {
            kind: "PageReq",
            to: 0,
            bytes: 16,
            flow: 0,
            parent: 0,
        });
        a.emit_span(
            EventKind::RecoveryPhase {
                phase: RecPhase::Restore,
            },
            Instant::now(),
        );
        t
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let t = sample_trace();
        let text = to_jsonl(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("ts_ns").is_some());
            assert!(v.get("node").is_some());
            assert!(v.get("event").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn chrome_trace_parses_and_has_lanes() {
        let t = sample_trace();
        let text = to_chrome_trace(&t);
        let v = crate::json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 3 events
        assert_eq!(events.len(), 6);
        let lanes: std::collections::BTreeSet<i64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("tid").unwrap().as_num().unwrap() as i64)
            .collect();
        assert_eq!(lanes.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        // The span event carries a duration.
        assert!(events
            .iter()
            .any(|e| { e.get("ph").unwrap().as_str() == Some("X") && e.get("dur").is_some() }));
    }

    #[test]
    fn stamped_send_recv_pairs_emit_flow_events() {
        let t = Trace::new(2, &TraceConfig::enabled());
        let flow = crate::TraceCtx {
            origin: 0,
            seq: 1,
            ..crate::TraceCtx::NONE
        }
        .flow_id();
        t.tracer(0).emit(EventKind::MsgSend {
            kind: "PageReq",
            to: 1,
            bytes: 16,
            flow,
            parent: 0,
        });
        t.tracer(1).emit(EventKind::MsgRecv {
            kind: "PageReq",
            from: 0,
            bytes: 16,
            flow,
            queue_ns: 120,
            chaos_ns: 0,
        });
        let v = crate::json::parse(&to_chrome_trace(&t)).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let start = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .expect("flow start");
        let finish = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .expect("flow finish");
        assert_eq!(
            start.get("id").unwrap().as_num(),
            finish.get("id").unwrap().as_num()
        );
        assert_eq!(start.get("tid").unwrap().as_num(), Some(0.0));
        assert_eq!(finish.get("tid").unwrap().as_num(), Some(1.0));
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));
        // The recv instant carries the queue-wait attribution.
        let recv = events
            .iter()
            .find(|e| {
                e.get("name").unwrap().as_str() == Some("msg_recv")
                    && e.get("ph").unwrap().as_str() == Some("i")
            })
            .expect("msg_recv instant");
        assert_eq!(
            recv.get("args").unwrap().get("queue_ns").unwrap().as_num(),
            Some(120.0)
        );
    }

    #[test]
    fn empty_trace_still_valid_chrome_json() {
        let t = Trace::disabled(3);
        let v = crate::json::parse(&to_chrome_trace(&t)).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4); // process_name + 3 thread_name
    }
}
