//! Causal trace context carried on every wire message.
//!
//! The context is deliberately tiny: the stamping node, a per-endpoint
//! monotonic sequence number, and the flow id of the message being served
//! when this one was sent (the *parent*). Together these stitch per-node
//! ring-buffer events into cross-node causal flows without any global
//! coordination — a flow id is unique because `(origin, seq)` is.
//!
//! Two more fields ride along as **local measurement metadata** and are
//! *not* charged to the wire-size model (they exist only because the whole
//! cluster shares one address space; a real network stack would derive
//! them from NIC timestamps): the send timestamp and the chaos delay the
//! fabric injected. The receive side subtracts both from the observed
//! transit time to split "fabric/chaos delay" from "receiver queue wait".

/// Compact causal context stamped by [`Endpoint::send`] on every message.
///
/// Wire-charged layout (16 bytes): origin `u16`, seq `u48`, parent `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Node that stamped this message.
    pub origin: u32,
    /// Per-endpoint monotonic sequence number, starting at 1 (0 = unset).
    pub seq: u64,
    /// Flow id of the message this one was sent in service of; 0 = root
    /// (originated by an app thread or a timer, not by another message).
    pub parent: u64,
    /// Trace-epoch nanoseconds at send time (measurement only, un-charged;
    /// 0 when tracing was disabled at send time).
    pub sent_at_ns: u64,
    /// Total delay injected by the chaos fabric (Delay rules and duplicate
    /// detours), accumulated in nanoseconds. Measurement only, un-charged.
    pub chaos_delay_ns: u64,
}

impl TraceCtx {
    /// Bytes the context is charged on the wire: origin u16 + seq u48 +
    /// parent u64.
    pub const WIRE_SIZE: usize = 16;

    /// An unstamped context (local construction; the endpoint stamps it).
    pub const NONE: TraceCtx = TraceCtx {
        origin: 0,
        seq: 0,
        parent: 0,
        sent_at_ns: 0,
        chaos_delay_ns: 0,
    };

    /// The message's own flow id: `(origin + 1) << 48 | seq`. Never 0 for
    /// a stamped message (seq starts at 1), so 0 can mean "no flow".
    #[inline]
    pub fn flow_id(&self) -> u64 {
        if self.seq == 0 {
            return 0;
        }
        ((self.origin as u64 + 1) << 48) | (self.seq & 0xFFFF_FFFF_FFFF)
    }

    /// Has the endpoint stamped this context?
    #[inline]
    pub fn is_stamped(&self) -> bool {
        self.seq != 0
    }

    /// The node a flow id was stamped by (inverse of [`flow_id`]'s origin
    /// encoding); `None` for the 0 sentinel.
    pub fn flow_origin(flow: u64) -> Option<usize> {
        if flow == 0 {
            None
        } else {
            Some((flow >> 48) as usize - 1)
        }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_is_unique_per_origin_seq_and_never_zero() {
        let a = TraceCtx {
            origin: 0,
            seq: 1,
            ..TraceCtx::NONE
        };
        let b = TraceCtx {
            origin: 1,
            seq: 1,
            ..TraceCtx::NONE
        };
        let c = TraceCtx {
            origin: 0,
            seq: 2,
            ..TraceCtx::NONE
        };
        assert_ne!(a.flow_id(), 0);
        assert_ne!(a.flow_id(), b.flow_id());
        assert_ne!(a.flow_id(), c.flow_id());
        assert_eq!(TraceCtx::NONE.flow_id(), 0);
        assert!(!TraceCtx::NONE.is_stamped());
    }

    #[test]
    fn flow_origin_round_trips() {
        for origin in [0u32, 1, 3, 63] {
            let ctx = TraceCtx {
                origin,
                seq: 42,
                ..TraceCtx::NONE
            };
            assert_eq!(TraceCtx::flow_origin(ctx.flow_id()), Some(origin as usize));
        }
        assert_eq!(TraceCtx::flow_origin(0), None);
    }
}
