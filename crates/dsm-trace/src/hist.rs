//! Hand-rolled log2-bucketed latency histograms (HDR-style, power-of-two
//! resolution) — no dependencies, mergeable across nodes.

/// 65 buckets: bucket 0 holds the value 0; bucket `b` (1..=64) holds
/// values in `[2^(b-1), 2^b)`, so `u64::MAX` lands in bucket 64.
pub const BUCKETS: usize = 65;

/// A log2 histogram over `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a sample.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile (`q` in [0,1]): lower bound of the bucket
    /// containing the q-th sample. Power-of-two resolution, like HDR at
    /// zero significant digits.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lo(b);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The named latency histograms every node keeps (all in nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencyHists {
    /// Remote page fetch, fault to installed copy.
    pub page_fetch: Histogram,
    /// Lock acquire wait, request to grant applied.
    pub lock_wait: Histogram,
    /// Barrier wait, arrival to release applied.
    pub barrier_wait: Histogram,
    /// End-of-interval diff creation pass (all twins of the interval).
    pub diff_create: Histogram,
    /// Applying one diff to a home page.
    pub diff_apply: Histogram,
    /// Page bytes physically copied per remote fetch (serve → deposit →
    /// install). Zero with shared buffers; page-size before them — a
    /// counter, in bytes rather than nanoseconds.
    pub fetch_copy: Histogram,
    /// Writing one checkpoint to stable storage.
    pub ckpt_write: Histogram,
    /// Recovery: restoring from the checkpoint.
    pub rec_restore: Histogram,
    /// Recovery: collecting peers' logs.
    pub rec_log_collect: Histogram,
    /// Recovery: deterministic replay.
    pub rec_replay: Histogram,
    /// Pages per batched prefetch request (a counter, in pages).
    pub fetch_batch_pages: Histogram,
    /// Waiting for a home-store shard lock on the service fast path.
    pub shard_lock_wait: Histogram,
    /// First touch satisfied by an in-flight prefetch (wait until installed).
    pub prefetch_hit: Histogram,
    /// First touch whose prefetch was dropped or stale (wait until the miss
    /// was detected; the fault then falls back to its own `PageReq`).
    pub prefetch_miss: Histogram,
    /// Heartbeat round-trip time (ping sent to matching pong received).
    pub heartbeat_rtt: Histogram,
    /// Failure-detection latency: first suspicion of a peer to its
    /// confirmed `Down`.
    pub suspicion_latency: Histogram,
    /// Retransmissions per completed wait (a counter, in retries: 0 =
    /// answered first time). Only recorded when the retry layer is on.
    pub retransmits: Histogram,
}

impl LatencyHists {
    /// (label, histogram) pairs in print order.
    pub fn named(&self) -> [(&'static str, &Histogram); 17] {
        [
            ("page_fetch", &self.page_fetch),
            ("lock_wait", &self.lock_wait),
            ("barrier_wait", &self.barrier_wait),
            ("diff_create", &self.diff_create),
            ("diff_apply", &self.diff_apply),
            ("fetch_copy_bytes", &self.fetch_copy),
            ("ckpt_write", &self.ckpt_write),
            ("rec_restore", &self.rec_restore),
            ("rec_log_collect", &self.rec_log_collect),
            ("rec_replay", &self.rec_replay),
            ("fetch_batch_pages", &self.fetch_batch_pages),
            ("shard_lock_wait", &self.shard_lock_wait),
            ("prefetch_hit", &self.prefetch_hit),
            ("prefetch_miss", &self.prefetch_miss),
            ("heartbeat_rtt", &self.heartbeat_rtt),
            ("suspicion_latency", &self.suspicion_latency),
            ("retransmits", &self.retransmits),
        ]
    }

    /// Fold another node's histograms into this one.
    pub fn merge(&mut self, other: &LatencyHists) {
        self.page_fetch.merge(&other.page_fetch);
        self.lock_wait.merge(&other.lock_wait);
        self.barrier_wait.merge(&other.barrier_wait);
        self.diff_create.merge(&other.diff_create);
        self.diff_apply.merge(&other.diff_apply);
        self.fetch_copy.merge(&other.fetch_copy);
        self.ckpt_write.merge(&other.ckpt_write);
        self.rec_restore.merge(&other.rec_restore);
        self.rec_log_collect.merge(&other.rec_log_collect);
        self.rec_replay.merge(&other.rec_replay);
        self.fetch_batch_pages.merge(&other.fetch_batch_pages);
        self.shard_lock_wait.merge(&other.shard_lock_wait);
        self.prefetch_hit.merge(&other.prefetch_hit);
        self.prefetch_miss.merge(&other.prefetch_miss);
        self.heartbeat_rtt.merge(&other.heartbeat_rtt);
        self.suspicion_latency.merge(&other.suspicion_latency);
        self.retransmits.merge(&other.retransmits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 20) - 1), 20);
        assert_eq!(bucket_of(1 << 20), 21);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(64), 1 << 63);
    }

    #[test]
    fn record_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 1);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_land_in_right_buckets() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(1.0), 1024);
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(0);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.buckets()[0], 1);
    }

    #[test]
    fn latency_hists_merge_by_name() {
        let mut a = LatencyHists::default();
        let mut b = LatencyHists::default();
        a.page_fetch.record(10);
        b.page_fetch.record(20);
        b.lock_wait.record(30);
        a.merge(&b);
        assert_eq!(a.page_fetch.count(), 2);
        assert_eq!(a.lock_wait.count(), 1);
        assert_eq!(a.named()[0].0, "page_fetch");
    }
}
