//! A minimal serde-free JSON parser, used by the golden-file tests to
//! round-trip the exporters' output and by any tool that wants to inspect
//! a trace without external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parse failed at.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escape() {
        let v = parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
