//! Crash flight recorder: a global registry of live traces whose event
//! tails can be dumped when something goes wrong (panic, watchdog
//! timeout, failed run).

use std::sync::{Mutex, OnceLock, PoisonError, Weak};

use crate::Shared;

static RECORDERS: OnceLock<Mutex<Vec<Weak<Shared>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Weak<Shared>>> {
    RECORDERS.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn register(shared: Weak<Shared>) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    // Drop registrations whose runs already finished.
    reg.retain(|w| w.strong_count() > 0);
    reg.push(shared);
}

/// Re-export with a doc-friendly name: register a trace so panics dump it.
pub fn register_flight_recorder(trace: &crate::Trace) {
    trace.register_flight_recorder();
}

/// Dump the tail of every registered, still-live trace to stderr.
/// `reason` is printed in the header. Intended to be called from a panic
/// hook or watchdog; best-effort, never panics.
pub fn dump_flight_recorders(reason: &str) {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let live: Vec<_> = reg.iter().filter_map(|w| w.upgrade()).collect();
    drop(reg);
    if live.is_empty() {
        return;
    }
    let mut err = std::io::stderr().lock();
    use std::io::Write;
    let _ = writeln!(err, "=== dsm-trace flight recorder: {reason} ===");
    for shared in live {
        let _ = shared.dump_tail(&mut err);
    }
    let _ = writeln!(err, "=== end flight recorder ===");
}

#[cfg(test)]
mod tests {
    use crate::{EventKind, Trace, TraceConfig};

    #[test]
    fn dump_survives_registered_and_dropped_traces() {
        let t = Trace::new(1, &TraceConfig::enabled());
        t.register_flight_recorder();
        t.tracer(0).emit(EventKind::PageFault { page: 1 });
        // A trace that dies before the dump must be skipped silently.
        {
            let dead = Trace::new(1, &TraceConfig::enabled());
            dead.register_flight_recorder();
        }
        super::dump_flight_recorders("unit test");
        drop(t);
        super::dump_flight_recorders("after drop (no live traces)");
    }
}
