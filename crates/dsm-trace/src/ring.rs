//! Bounded per-node event ring buffer.

use crate::event::Event;

/// Fixed-capacity ring keeping the most recent events plus a running count
/// of everything ever pushed (so exporters can report drops).
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    total: u64,
}

impl Ring {
    /// Create a ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            total: 0,
        }
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            let idx = (self.total % self.cap as u64) as usize;
            self.buf[idx] = e;
        }
        self.total += 1;
    }

    /// Events ever pushed (≥ `len`).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events that fell off the ring.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            return self.buf.clone();
        }
        let split = (self.total % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event {
            ts_ns: i,
            dur_ns: 0,
            node: 0,
            kind: EventKind::PageFault { page: i as u32 },
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 10);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_before_wrap_is_in_order() {
        let mut r = Ring::new(8);
        for i in 0..3 {
            r.push(ev(i));
        }
        let ts: Vec<u64> = r.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn exact_boundary_wrap() {
        let mut r = Ring::new(3);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(
            r.snapshot().iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        r.push(ev(3));
        assert_eq!(
            r.snapshot().iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let mut r = Ring::new(1);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(
            r.snapshot().iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![4]
        );
        assert_eq!(r.dropped(), 4);
    }
}
