//! Typed protocol events covering the HLRC + FT lifecycle.

use std::fmt;

/// Which lazy-log-trimming rule discarded log entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrimRule {
    /// Rule 1: peers' checkpoints cover the entries.
    Rule1,
    /// Rule 2: the acquirer checkpointed past the grant.
    Rule2,
    /// Rule 3: the failed node's starting copy covers the diffs.
    Rule3,
    /// Barrier analogue of the lock rules.
    Barrier,
}

impl TrimRule {
    /// Short stable name for export.
    pub fn name(self) -> &'static str {
        match self {
            TrimRule::Rule1 => "rule1",
            TrimRule::Rule2 => "rule2",
            TrimRule::Rule3 => "rule3",
            TrimRule::Barrier => "barrier",
        }
    }
}

/// Phase of log-based recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecPhase {
    /// Restore node state from the latest checkpoint.
    Restore,
    /// Collect peers' logs (handshake + merge + homed-page diffs).
    LogCollect,
    /// Deterministic replay up to the pre-crash state.
    Replay,
}

impl RecPhase {
    /// Short stable name for export.
    pub fn name(self) -> &'static str {
        match self {
            RecPhase::Restore => "restore",
            RecPhase::LogCollect => "log_collect",
            RecPhase::Replay => "replay",
        }
    }
}

/// One protocol transition. Payload fields are the minimum needed to read
/// a timeline: page/lock ids, peers, byte counts, sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// App thread faulted on a page it does not hold.
    PageFault { page: u32 },
    /// The fetched page copy arrived and was installed.
    PageReply { page: u32, from: usize },
    /// A diff was created against the twin at release/flush time.
    DiffCreate { page: u32, bytes: u32 },
    /// A diff was applied to the home copy. `writer` is the interval's
    /// owning process and `interval` its per-writer sequence number — the
    /// invariant monitor asserts `(page, writer)` intervals apply in
    /// strictly increasing order, exactly once.
    DiffApply {
        page: u32,
        bytes: u32,
        writer: usize,
        interval: u64,
    },
    /// App thread asked the lock manager for a lock.
    LockRequest { lock: u32 },
    /// This node (as manager or holder) granted the lock to `to` for chain
    /// generation `gen`. Re-granting the same generation to the same
    /// requester is a legal retransmission replay; to a *different*
    /// requester it is a protocol violation.
    LockGrant { lock: u32, to: usize, gen: u64 },
    /// App thread finished acquiring the lock.
    LockAcquire { lock: u32 },
    /// App thread arrived at a barrier episode.
    BarrierEnter { episode: u32 },
    /// Barrier release reached this node.
    BarrierRelease { episode: u32 },
    /// Checkpoint `seq` started.
    CkptBegin { seq: u64 },
    /// Checkpoint `seq` was written (`bytes` to stable storage).
    CkptEnd { seq: u64, bytes: u64 },
    /// Lazy log trimming discarded `bytes` of volatile log.
    LogTrim { rule: TrimRule, bytes: u64 },
    /// Checkpoint garbage collection dropped a retained checkpoint.
    CgcDiscard { seq: u64, bytes: u64 },
    /// A message left this node. `flow` is the message's own flow id
    /// (from its stamped [`TraceCtx`](crate::TraceCtx)); `parent` is the
    /// flow it was sent in service of (0 = root).
    MsgSend {
        kind: &'static str,
        to: usize,
        bytes: u32,
        flow: u64,
        parent: u64,
    },
    /// A message was taken off this node's channel. `queue_ns` is transit
    /// time minus injected chaos delay (sender hand-off + receiver inbound
    /// queue); `chaos_ns` is the delay the fault plan injected.
    MsgRecv {
        kind: &'static str,
        from: usize,
        bytes: u32,
        flow: u64,
        queue_ns: u64,
        chaos_ns: u64,
    },
    /// The failure injector crashed this node.
    CrashInjected { at_op: u64 },
    /// One phase of recovery completed (duration is the event's span).
    RecoveryPhase { phase: RecPhase },
    /// The failure detector suspected `node` (missed heartbeats).
    Suspect { node: usize },
    /// Membership confirmed `node` failed (suspicion + confirmation round,
    /// or a peer's announcement).
    MemberDown { node: usize },
    /// Membership saw `node` return (heartbeat with a new incarnation).
    MemberUp { node: usize },
    /// A timed-out request was retransmitted to `to`.
    Retransmit { kind: &'static str, to: usize },
}

impl EventKind {
    /// Stable name used for trace export and histogram labels.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PageFault { .. } => "page_fault",
            EventKind::PageReply { .. } => "page_reply",
            EventKind::DiffCreate { .. } => "diff_create",
            EventKind::DiffApply { .. } => "diff_apply",
            EventKind::LockRequest { .. } => "lock_request",
            EventKind::LockGrant { .. } => "lock_grant",
            EventKind::LockAcquire { .. } => "lock_acquire",
            EventKind::BarrierEnter { .. } => "barrier_enter",
            EventKind::BarrierRelease { .. } => "barrier_release",
            EventKind::CkptBegin { .. } => "ckpt_begin",
            EventKind::CkptEnd { .. } => "ckpt_end",
            EventKind::LogTrim { .. } => "log_trim",
            EventKind::CgcDiscard { .. } => "cgc_discard",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgRecv { .. } => "msg_recv",
            EventKind::CrashInjected { .. } => "crash_injected",
            EventKind::RecoveryPhase { .. } => "recovery_phase",
            EventKind::Suspect { .. } => "suspect",
            EventKind::MemberDown { .. } => "member_down",
            EventKind::MemberUp { .. } => "member_up",
            EventKind::Retransmit { .. } => "retransmit",
        }
    }

    /// Payload rendered as the body of a JSON object (no braces), e.g.
    /// `"page":3,"bytes":128`. Empty for payload-free events.
    pub fn args_json(&self) -> String {
        match self {
            EventKind::PageFault { page } => format!("\"page\":{page}"),
            EventKind::PageReply { page, from } => format!("\"page\":{page},\"from\":{from}"),
            EventKind::DiffCreate { page, bytes } => format!("\"page\":{page},\"bytes\":{bytes}"),
            EventKind::DiffApply {
                page,
                bytes,
                writer,
                interval,
            } => format!(
                "\"page\":{page},\"bytes\":{bytes},\"writer\":{writer},\"interval\":{interval}"
            ),
            EventKind::LockRequest { lock } | EventKind::LockAcquire { lock } => {
                format!("\"lock\":{lock}")
            }
            EventKind::LockGrant { lock, to, gen } => {
                format!("\"lock\":{lock},\"to\":{to},\"gen\":{gen}")
            }
            EventKind::BarrierEnter { episode } | EventKind::BarrierRelease { episode } => {
                format!("\"episode\":{episode}")
            }
            EventKind::CkptBegin { seq } => format!("\"seq\":{seq}"),
            EventKind::CkptEnd { seq, bytes } => format!("\"seq\":{seq},\"bytes\":{bytes}"),
            EventKind::LogTrim { rule, bytes } => {
                format!("\"rule\":\"{}\",\"bytes\":{bytes}", rule.name())
            }
            EventKind::CgcDiscard { seq, bytes } => format!("\"seq\":{seq},\"bytes\":{bytes}"),
            EventKind::MsgSend {
                kind,
                to,
                bytes,
                flow,
                parent,
            } => {
                let mut s = format!("\"kind\":\"{kind}\",\"to\":{to},\"bytes\":{bytes}");
                if *flow != 0 {
                    s.push_str(&format!(",\"flow\":{flow}"));
                }
                if *parent != 0 {
                    s.push_str(&format!(",\"parent\":{parent}"));
                }
                s
            }
            EventKind::MsgRecv {
                kind,
                from,
                bytes,
                flow,
                queue_ns,
                chaos_ns,
            } => {
                let mut s = format!("\"kind\":\"{kind}\",\"from\":{from},\"bytes\":{bytes}");
                if *flow != 0 {
                    s.push_str(&format!(",\"flow\":{flow}"));
                    s.push_str(&format!(",\"queue_ns\":{queue_ns}"));
                    if *chaos_ns != 0 {
                        s.push_str(&format!(",\"chaos_ns\":{chaos_ns}"));
                    }
                }
                s
            }
            EventKind::CrashInjected { at_op } => format!("\"at_op\":{at_op}"),
            EventKind::RecoveryPhase { phase } => format!("\"phase\":\"{}\"", phase.name()),
            EventKind::Suspect { node }
            | EventKind::MemberDown { node }
            | EventKind::MemberUp { node } => format!("\"node\":{node}"),
            EventKind::Retransmit { kind, to } => {
                format!("\"kind\":\"{kind}\",\"to\":{to}")
            }
        }
    }

    /// The causal flow this event participates in: `(own_flow, parent)`.
    /// `MsgSend` carries both; `MsgRecv` carries only its own flow. Events
    /// without a wire context return `None`.
    pub fn flow_ref(&self) -> Option<(u64, u64)> {
        match self {
            EventKind::MsgSend { flow, parent, .. } if *flow != 0 => Some((*flow, *parent)),
            EventKind::MsgRecv { flow, .. } if *flow != 0 => Some((*flow, 0)),
            _ => None,
        }
    }

    /// True for lock-protocol events (used by the legacy
    /// `FTDSM_TRACE_LOCKS` stderr echo).
    pub fn is_lock_event(&self) -> bool {
        matches!(
            self,
            EventKind::LockRequest { .. }
                | EventKind::LockGrant { .. }
                | EventKind::LockAcquire { .. }
        )
    }
}

/// One recorded event: monotonic timestamp, optional span duration, node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (span start for span events).
    pub ts_ns: u64,
    /// Span duration in nanoseconds; 0 marks an instant event.
    pub dur_ns: u64,
    /// Node the event happened on.
    pub node: usize,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}ns n{} {}",
            self.ts_ns,
            self.node,
            self.kind.name()
        )?;
        let args = self.kind.args_json();
        if !args.is_empty() {
            write!(f, " {{{args}}}")?;
        }
        if self.dur_ns > 0 {
            write!(f, " dur={}ns", self.dur_ns)?;
        }
        f.write_str("]")
    }
}
