#![warn(missing_docs)]
//! Heartbeat membership and failure detection.
//!
//! The paper assumes fail-stop failures that are *detected* — it never says
//! how. This crate supplies the how: every node runs a [`Detector`], a pure
//! state machine driven by a ticker thread in the runtime. Nodes exchange
//! periodic heartbeats; a peer that misses enough of them becomes
//! *suspected*, suspicion triggers a confirmation round (ask the other
//! peers whether they still hear it), and a confirmed failure is announced
//! cluster-wide and surfaced as a [`Action::Down`] membership event — which
//! is what triggers recovery retransmissions, replacing the simulator's
//! orchestrated perfect-knowledge notification.
//!
//! Restarts are discovered the same way: a recovering node bumps its
//! *incarnation* number (its recovery count) and keeps heartbeating; any
//! heartbeat carrying a higher incarnation than previously seen proves the
//! peer failed and came back, and surfaces as [`Action::Up`].
//!
//! The detector is deliberately transport-free: it receives wire messages
//! ([`Wire`]) and clock readings, and returns [`Action`]s (messages to
//! send, membership events to raise, latency samples to record). All
//! policy — intervals, suspicion thresholds, confirmation timeout — lives
//! in [`MemberConfig`]. Under a lossy fabric false suspicions are expected;
//! they are counted, rescinded by any sign of life, and safe: every
//! retransmission they trigger is idempotent at the protocol layer.

use std::time::{Duration, Instant};

/// Index of a node in the cluster (matches `dsm_net::NodeId`).
pub type NodeId = usize;

/// Tuning knobs of the failure detector.
#[derive(Debug, Clone)]
pub struct MemberConfig {
    /// Heartbeat period.
    pub heartbeat_every: Duration,
    /// Missed heartbeat intervals before a peer becomes suspected.
    pub suspect_after: u32,
    /// How long a confirmation round may wait for peer replies before the
    /// suspicion is confirmed unilaterally.
    pub confirm_timeout: Duration,
    /// Timeout after which an outstanding protocol request (page fetch,
    /// lock acquire, barrier arrival) is retransmitted. Used by the
    /// runtime's retry layer, not the detector itself.
    pub retry_after: Duration,
}

impl Default for MemberConfig {
    fn default() -> Self {
        MemberConfig {
            heartbeat_every: Duration::from_millis(2),
            suspect_after: 6,
            confirm_timeout: Duration::from_millis(8),
            retry_after: Duration::from_millis(25),
        }
    }
}

impl MemberConfig {
    /// Upper bound on detection latency: the suspicion threshold plus the
    /// confirmation round.
    pub fn detection_bound(&self) -> Duration {
        self.heartbeat_every * self.suspect_after + self.confirm_timeout
    }
}

/// Membership messages on the wire. The runtime embeds these in its own
/// message enum; sizes are small and fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// Periodic heartbeat.
    Ping {
        /// Sender-local heartbeat sequence number (RTT correlation).
        seq: u64,
        /// Sender's incarnation (its recovery count).
        incarnation: u64,
    },
    /// Heartbeat reply.
    Pong {
        /// Echo of the ping's sequence number.
        seq: u64,
        /// Responder's incarnation.
        incarnation: u64,
    },
    /// Confirmation round: "do you still hear `about`?"
    SuspectQuery {
        /// The suspected node.
        about: NodeId,
    },
    /// Confirmation reply with the responder's view.
    SuspectReply {
        /// The suspected node.
        about: NodeId,
        /// True when the responder heard from `about` recently.
        alive: bool,
    },
    /// Cluster-wide announcement of a confirmed failure.
    DownAnnounce {
        /// The failed node.
        node: NodeId,
        /// Its last known incarnation.
        incarnation: u64,
    },
}

impl Wire {
    /// Encoded size in bytes (1 tag byte + fields).
    pub fn wire_size(&self) -> usize {
        match self {
            Wire::Ping { .. } | Wire::Pong { .. } => 17,
            Wire::SuspectQuery { .. } => 5,
            Wire::SuspectReply { .. } => 6,
            Wire::DownAnnounce { .. } => 13,
        }
    }

    /// Stable kind label for tracing/traffic accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            Wire::Ping { .. } => "HbPing",
            Wire::Pong { .. } => "HbPong",
            Wire::SuspectQuery { .. } => "SuspectQuery",
            Wire::SuspectReply { .. } => "SuspectReply",
            Wire::DownAnnounce { .. } => "DownAnnounce",
        }
    }
}

/// What the detector wants done after processing an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Wire,
    },
    /// Membership event: `node` was confirmed failed.
    Down {
        /// The failed node.
        node: NodeId,
        /// Its last known incarnation.
        incarnation: u64,
    },
    /// Membership event: `node` is back (recovered, or falsely declared
    /// down). Requesters should retransmit anything they still owe to or
    /// expect from it.
    Up {
        /// The returned node.
        node: NodeId,
        /// Its current incarnation.
        incarnation: u64,
    },
    /// A heartbeat round-trip-time sample, in nanoseconds.
    RttSample {
        /// The sample.
        ns: u64,
    },
    /// Time from first suspicion to confirmed failure, in nanoseconds.
    SuspicionLatency {
        /// The sample.
        ns: u64,
    },
}

/// Liveness of one peer as this node sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats arriving normally.
    Alive,
    /// Missed too many heartbeats; confirmation round in progress.
    Suspect,
    /// Confirmed failed.
    Down,
}

/// Monotonic counters the detector keeps (exported into `NodeReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberStats {
    /// Suspicions raised (entering [`PeerState::Suspect`]).
    pub suspicions: u64,
    /// Suspicions rescinded by a sign of life (includes peers falsely
    /// confirmed down that later heartbeat with an unchanged incarnation).
    pub false_suspicions: u64,
    /// Down events raised (locally confirmed or learned by announcement).
    pub down_events: u64,
    /// Up events raised.
    pub up_events: u64,
    /// Heartbeats sent.
    pub pings_sent: u64,
}

#[derive(Debug)]
struct PeerView {
    state: PeerState,
    /// Highest incarnation seen from this peer.
    incarnation: u64,
    last_heard: Instant,
    /// `(seq, sent_at)` of the most recent ping, for RTT.
    last_ping: Option<(u64, Instant)>,
    suspect_since: Option<Instant>,
    /// During a confirmation round: dead votes received.
    dead_votes: u32,
    /// Peers queried in the current confirmation round.
    queried: u32,
}

/// The per-node failure-detector state machine. Not thread-safe by itself;
/// the runtime drives it under one lock from the ticker thread and the
/// message-service thread.
#[derive(Debug)]
pub struct Detector {
    me: NodeId,
    n: usize,
    cfg: MemberConfig,
    /// This node's own incarnation (bumped by the runtime at each recovery).
    incarnation: u64,
    hb_seq: u64,
    next_hb: Instant,
    peers: Vec<Option<PeerView>>,
    stats: MemberStats,
}

impl Detector {
    /// New detector for node `me` of `n`, with all peers assumed alive as
    /// of `now`.
    pub fn new(me: NodeId, n: usize, cfg: MemberConfig, now: Instant) -> Detector {
        let peers = (0..n)
            .map(|p| {
                (p != me).then_some(PeerView {
                    state: PeerState::Alive,
                    incarnation: 0,
                    last_heard: now,
                    last_ping: None,
                    suspect_since: None,
                    dead_votes: 0,
                    queried: 0,
                })
            })
            .collect();
        Detector {
            me,
            n,
            cfg,
            incarnation: 0,
            hb_seq: 0,
            next_hb: now,
            peers,
            stats: MemberStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> MemberStats {
        self.stats
    }

    /// This node's current incarnation.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// How this node currently sees `peer`.
    pub fn peer_state(&self, peer: NodeId) -> PeerState {
        self.peers[peer].as_ref().expect("own id").state
    }

    /// The runtime calls this when *this* node starts recovering: bump the
    /// incarnation so peers can tell the new life from the old one, and
    /// reset peer bookkeeping (we may have been gone a while; don't suspect
    /// everyone the moment we come back).
    pub fn begin_new_incarnation(&mut self, now: Instant) {
        self.incarnation += 1;
        self.next_hb = now;
        for p in self.peers.iter_mut().flatten() {
            p.last_heard = now;
            p.last_ping = None;
            p.suspect_since = None;
            p.dead_votes = 0;
            p.queried = 0;
            if p.state == PeerState::Suspect {
                p.state = PeerState::Alive;
            }
        }
    }

    fn suspect_threshold(&self) -> Duration {
        self.cfg.heartbeat_every * self.cfg.suspect_after
    }

    /// Record a sign of life from `peer` carrying `incarnation`; returns
    /// the membership actions that fall out (an `Up` event when the peer
    /// was down or announces a new life).
    fn heard_from(&mut self, peer: NodeId, incarnation: u64, now: Instant, out: &mut Vec<Action>) {
        let me = self.me;
        let p = self.peers[peer].as_mut().expect("no view of self");
        debug_assert_ne!(peer, me);
        p.last_heard = now;
        let was = p.state;
        let new_life = incarnation > p.incarnation;
        p.incarnation = p.incarnation.max(incarnation);
        match was {
            PeerState::Alive if new_life => {
                // The peer crashed and recovered before we even suspected
                // it (fast restart). Still a membership round trip:
                // requesters owe it retransmissions.
                self.stats.down_events += 1;
                self.stats.up_events += 1;
                out.push(Action::Down {
                    node: peer,
                    incarnation: incarnation - 1,
                });
                out.push(Action::Up {
                    node: peer,
                    incarnation,
                });
            }
            PeerState::Alive => {}
            PeerState::Suspect => {
                // Sign of life rescinds the suspicion.
                p.state = PeerState::Alive;
                p.suspect_since = None;
                p.dead_votes = 0;
                p.queried = 0;
                self.stats.false_suspicions += 1;
                if new_life {
                    self.stats.down_events += 1;
                    self.stats.up_events += 1;
                    out.push(Action::Down {
                        node: peer,
                        incarnation: incarnation - 1,
                    });
                    out.push(Action::Up {
                        node: peer,
                        incarnation,
                    });
                }
            }
            PeerState::Down => {
                p.state = PeerState::Alive;
                p.suspect_since = None;
                self.stats.up_events += 1;
                if !new_life {
                    // We confirmed it down but it was never gone.
                    self.stats.false_suspicions += 1;
                }
                out.push(Action::Up {
                    node: peer,
                    incarnation,
                });
            }
        }
    }

    /// Drive timers: send due heartbeats, raise suspicions, conclude
    /// confirmation rounds. Call every ~heartbeat period.
    pub fn tick(&mut self, now: Instant) -> Vec<Action> {
        let mut out = Vec::new();
        // Heartbeats.
        if now >= self.next_hb {
            self.next_hb = now + self.cfg.heartbeat_every;
            self.hb_seq += 1;
            let seq = self.hb_seq;
            let incarnation = self.incarnation;
            for peer in 0..self.n {
                let Some(p) = self.peers[peer].as_mut() else {
                    continue;
                };
                // Down peers are not pinged; their recovered self pings us.
                if p.state == PeerState::Down {
                    continue;
                }
                p.last_ping = Some((seq, now));
                self.stats.pings_sent += 1;
                out.push(Action::Send {
                    to: peer,
                    msg: Wire::Ping { seq, incarnation },
                });
            }
        }
        // Suspicions.
        let threshold = self.suspect_threshold();
        let peers_alive: Vec<NodeId> = (0..self.n)
            .filter(|&q| {
                self.peers[q]
                    .as_ref()
                    .is_some_and(|v| v.state == PeerState::Alive)
            })
            .collect();
        for peer in 0..self.n {
            let Some(p) = self.peers[peer].as_mut() else {
                continue;
            };
            match p.state {
                PeerState::Alive if now.duration_since(p.last_heard) >= threshold => {
                    p.state = PeerState::Suspect;
                    p.suspect_since = Some(now);
                    p.dead_votes = 0;
                    p.queried = 0;
                    self.stats.suspicions += 1;
                    for &q in &peers_alive {
                        if q != peer {
                            p.queried += 1;
                            out.push(Action::Send {
                                to: q,
                                msg: Wire::SuspectQuery { about: peer },
                            });
                        }
                    }
                }
                PeerState::Suspect => {
                    let since = p.suspect_since.expect("suspect without timestamp");
                    let votes_in = p.queried > 0 && p.dead_votes >= p.queried;
                    let timed_out = now.duration_since(since) >= self.cfg.confirm_timeout;
                    if votes_in || timed_out {
                        p.state = PeerState::Down;
                        p.suspect_since = None;
                        let incarnation = p.incarnation;
                        self.stats.down_events += 1;
                        out.push(Action::SuspicionLatency {
                            ns: now.duration_since(since).as_nanos() as u64,
                        });
                        out.push(Action::Down {
                            node: peer,
                            incarnation,
                        });
                        // Tell everyone else so the cluster converges even
                        // if their own timers are slower.
                        for &q in &peers_alive {
                            if q != peer {
                                out.push(Action::Send {
                                    to: q,
                                    msg: Wire::DownAnnounce {
                                        node: peer,
                                        incarnation,
                                    },
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Feed one received membership message into the detector.
    pub fn on_msg(&mut self, from: NodeId, msg: Wire, now: Instant) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            Wire::Ping { seq, incarnation } => {
                self.heard_from(from, incarnation, now, &mut out);
                out.push(Action::Send {
                    to: from,
                    msg: Wire::Pong {
                        seq,
                        incarnation: self.incarnation,
                    },
                });
            }
            Wire::Pong { seq, incarnation } => {
                self.heard_from(from, incarnation, now, &mut out);
                let p = self.peers[from].as_mut().expect("no view of self");
                if let Some((sent_seq, sent_at)) = p.last_ping {
                    if sent_seq == seq {
                        out.push(Action::RttSample {
                            ns: now.duration_since(sent_at).as_nanos() as u64,
                        });
                        p.last_ping = None;
                    }
                }
            }
            Wire::SuspectQuery { about } => {
                // The query itself proves the sender is alive. Our vote on
                // `about`: alive iff we heard from it within the suspicion
                // window ourselves. (A query about us means the asker lost
                // our heartbeats; just vouch for ourselves.)
                self.heard_from(from, 0, now, &mut out);
                let alive = if about == self.me {
                    true
                } else {
                    self.peers[about].as_ref().is_some_and(|p| {
                        p.state != PeerState::Down
                            && now.duration_since(p.last_heard) < self.suspect_threshold()
                    })
                };
                out.push(Action::Send {
                    to: from,
                    msg: Wire::SuspectReply { about, alive },
                });
            }
            Wire::SuspectReply { about, alive } => {
                self.heard_from(from, 0, now, &mut out);
                if about == self.me {
                    return out;
                }
                let p = self.peers[about].as_mut().expect("no view of self");
                if p.state == PeerState::Suspect {
                    if alive {
                        // Someone still hears it: false alarm.
                        p.state = PeerState::Alive;
                        p.last_heard = now;
                        p.suspect_since = None;
                        p.dead_votes = 0;
                        p.queried = 0;
                        self.stats.false_suspicions += 1;
                    } else {
                        p.dead_votes += 1;
                        // tick() concludes the round once all votes are in.
                    }
                }
            }
            Wire::DownAnnounce { node, incarnation } => {
                self.heard_from(from, 0, now, &mut out);
                if node == self.me {
                    return out;
                }
                let p = self.peers[node].as_mut().expect("no view of self");
                // Believe it only if it isn't stale news about a previous
                // life we already saw end.
                if p.state != PeerState::Down && p.incarnation <= incarnation {
                    p.state = PeerState::Down;
                    p.suspect_since = None;
                    self.stats.down_events += 1;
                    out.push(Action::Down { node, incarnation });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemberConfig {
        MemberConfig {
            heartbeat_every: Duration::from_millis(2),
            suspect_after: 5,
            confirm_timeout: Duration::from_millis(8),
            retry_after: Duration::from_millis(25),
        }
    }

    fn sends(actions: &[Action]) -> Vec<(NodeId, Wire)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((*to, *msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn ticks_emit_heartbeats_on_schedule() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 3, cfg(), t0);
        let a = d.tick(t0);
        assert_eq!(sends(&a).len(), 2); // pings to 1 and 2
                                        // Before the period elapses: nothing.
        assert!(d.tick(t0 + Duration::from_micros(500)).is_empty());
        let a = d.tick(t0 + Duration::from_millis(2));
        assert_eq!(sends(&a).len(), 2);
        assert_eq!(d.stats().pings_sent, 4);
    }

    #[test]
    fn ping_answered_with_pong_and_rtt_measured() {
        let t0 = Instant::now();
        let mut d0 = Detector::new(0, 2, cfg(), t0);
        let mut d1 = Detector::new(1, 2, cfg(), t0);
        let a = d0.tick(t0);
        let (to, ping) = sends(&a)[0];
        assert_eq!(to, 1);
        let a = d1.on_msg(0, ping, t0);
        let (to, pong) = sends(&a)[0];
        assert_eq!(to, 0);
        assert!(matches!(pong, Wire::Pong { seq: 1, .. }));
        let a = d0.on_msg(1, pong, t0 + Duration::from_micros(300));
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::RttSample { ns } if *ns >= 300_000)));
    }

    #[test]
    fn silence_leads_to_suspicion_then_down() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 3, cfg(), t0);
        // Node 2 keeps heartbeating, node 1 goes silent.
        let mut now = t0;
        let mut down_seen = false;
        let mut queried = false;
        for step in 1..=20 {
            now = t0 + Duration::from_millis(2 * step);
            let actions = d.tick(now);
            for a in &actions {
                match a {
                    Action::Send {
                        to,
                        msg: Wire::SuspectQuery { about },
                    } => {
                        assert_eq!((*to, *about), (2, 1));
                        queried = true;
                    }
                    Action::Down { node, .. } => {
                        assert_eq!(*node, 1);
                        down_seen = true;
                    }
                    _ => {}
                }
            }
            let _ = d.on_msg(
                2,
                Wire::Ping {
                    seq: step,
                    incarnation: 0,
                },
                now,
            );
            if down_seen {
                break;
            }
        }
        assert!(queried, "confirmation round never started");
        assert!(down_seen, "silent peer never confirmed down");
        assert_eq!(d.peer_state(1), PeerState::Down);
        assert_eq!(d.peer_state(2), PeerState::Alive);
        // Detection happened within the configured bound.
        assert!(now.duration_since(t0) <= cfg().detection_bound() + Duration::from_millis(6));
        assert_eq!(d.stats().suspicions, 1);
        assert_eq!(d.stats().false_suspicions, 0);
    }

    #[test]
    fn alive_vote_rescinds_suspicion() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 3, cfg(), t0);
        let now = t0 + Duration::from_millis(12);
        // Keep 2 alive so only 1 is suspected.
        let _ = d.on_msg(
            2,
            Wire::Ping {
                seq: 1,
                incarnation: 0,
            },
            now - Duration::from_millis(1),
        );
        let actions = d.tick(now);
        assert!(sends(&actions)
            .iter()
            .any(|(_, m)| matches!(m, Wire::SuspectQuery { about: 1 })));
        assert_eq!(d.peer_state(1), PeerState::Suspect);
        let _ = d.on_msg(
            2,
            Wire::SuspectReply {
                about: 1,
                alive: true,
            },
            now,
        );
        assert_eq!(d.peer_state(1), PeerState::Alive);
        assert_eq!(d.stats().false_suspicions, 1);
        // No Down event ever fired.
        assert_eq!(d.stats().down_events, 0);
    }

    #[test]
    fn unanimous_dead_votes_confirm_before_timeout() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 4, cfg(), t0);
        // 1 goes silent; suspicion starts at 10ms.
        let now = t0 + Duration::from_millis(10);
        // Keep 2 and 3 alive.
        let _ = d.on_msg(
            2,
            Wire::Ping {
                seq: 1,
                incarnation: 0,
            },
            now - Duration::from_millis(1),
        );
        let _ = d.on_msg(
            3,
            Wire::Ping {
                seq: 1,
                incarnation: 0,
            },
            now - Duration::from_millis(1),
        );
        let actions = d.tick(now);
        let queries: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Wire::SuspectQuery { about: 1 }))
            .collect();
        assert_eq!(queries.len(), 2);
        let _ = d.on_msg(
            2,
            Wire::SuspectReply {
                about: 1,
                alive: false,
            },
            now + Duration::from_millis(1),
        );
        let _ = d.on_msg(
            3,
            Wire::SuspectReply {
                about: 1,
                alive: false,
            },
            now + Duration::from_millis(1),
        );
        // Next tick concludes well before confirm_timeout.
        let actions = d.tick(now + Duration::from_millis(2));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Down { node: 1, .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SuspicionLatency { .. })));
        // The rest of the cluster is told.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Wire::DownAnnounce { node: 1, .. },
                ..
            }
        )));
    }

    #[test]
    fn higher_incarnation_heartbeat_raises_up() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 2, cfg(), t0);
        // 1 dies and is confirmed down (n=2: no one to ask, timeout only).
        let mut now = t0;
        let mut down = false;
        for step in 1..=20 {
            now = t0 + Duration::from_millis(2 * step);
            if d.tick(now)
                .iter()
                .any(|a| matches!(a, Action::Down { node: 1, .. }))
            {
                down = true;
                break;
            }
        }
        assert!(down);
        // It restarts with incarnation 1 and pings us.
        let actions = d.on_msg(
            1,
            Wire::Ping {
                seq: 1,
                incarnation: 1,
            },
            now + Duration::from_millis(5),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Up {
                node: 1,
                incarnation: 1
            }
        )));
        assert_eq!(d.peer_state(1), PeerState::Alive);
        // And we keep pinging it again.
        let actions = d.tick(now + Duration::from_millis(7));
        assert!(sends(&actions).iter().any(|(to, _)| *to == 1));
    }

    #[test]
    fn fast_restart_detected_by_incarnation_alone() {
        // The peer crashes and recovers faster than the suspicion
        // threshold: no Down was ever raised, but the incarnation bump in
        // its next heartbeat still proves the restart.
        let t0 = Instant::now();
        let mut d = Detector::new(0, 2, cfg(), t0);
        let _ = d.on_msg(
            1,
            Wire::Ping {
                seq: 1,
                incarnation: 0,
            },
            t0 + Duration::from_millis(1),
        );
        let actions = d.on_msg(
            1,
            Wire::Ping {
                seq: 1,
                incarnation: 1,
            },
            t0 + Duration::from_millis(3),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Down {
                node: 1,
                incarnation: 0
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Up {
                node: 1,
                incarnation: 1
            }
        )));
    }

    #[test]
    fn same_incarnation_return_from_down_is_false_suspicion() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 2, cfg(), t0);
        let mut now = t0;
        for step in 1..=20 {
            now = t0 + Duration::from_millis(2 * step);
            if d.tick(now)
                .iter()
                .any(|a| matches!(a, Action::Down { node: 1, .. }))
            {
                break;
            }
        }
        assert_eq!(d.peer_state(1), PeerState::Down);
        // It was never actually dead — its heartbeats were just lost.
        let actions = d.on_msg(
            1,
            Wire::Ping {
                seq: 9,
                incarnation: 0,
            },
            now + Duration::from_millis(1),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Up {
                node: 1,
                incarnation: 0
            }
        )));
        assert_eq!(d.stats().false_suspicions, 1);
    }

    #[test]
    fn down_announce_adopted_once() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 3, cfg(), t0);
        let a1 = d.on_msg(
            2,
            Wire::DownAnnounce {
                node: 1,
                incarnation: 0,
            },
            t0,
        );
        assert!(a1.iter().any(|a| matches!(a, Action::Down { node: 1, .. })));
        // A duplicate announcement changes nothing.
        let a2 = d.on_msg(
            2,
            Wire::DownAnnounce {
                node: 1,
                incarnation: 0,
            },
            t0,
        );
        assert!(!a2.iter().any(|a| matches!(a, Action::Down { .. })));
        assert_eq!(d.stats().down_events, 1);
    }

    #[test]
    fn new_incarnation_resets_peer_timers() {
        let t0 = Instant::now();
        let mut d = Detector::new(0, 3, cfg(), t0);
        // We crash and recover at t0+50ms; without the reset every peer
        // would instantly look silent for 50ms and get suspected.
        let now = t0 + Duration::from_millis(50);
        d.begin_new_incarnation(now);
        assert_eq!(d.incarnation(), 1);
        let actions = d.tick(now);
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Wire::SuspectQuery { .. },
                ..
            }
        )));
        // Heartbeats now carry the new incarnation.
        assert!(sends(&actions)
            .iter()
            .any(|(_, m)| matches!(m, Wire::Ping { incarnation: 1, .. })));
    }

    #[test]
    fn suspect_query_vouches_for_self_and_live_peers() {
        let t0 = Instant::now();
        let mut d = Detector::new(1, 3, cfg(), t0);
        let _ = d.on_msg(
            2,
            Wire::Ping {
                seq: 1,
                incarnation: 0,
            },
            t0,
        );
        // Asked about ourselves: always alive.
        let a = d.on_msg(0, Wire::SuspectQuery { about: 1 }, t0);
        assert!(sends(&a).iter().any(|(to, m)| *to == 0
            && matches!(
                m,
                Wire::SuspectReply {
                    about: 1,
                    alive: true
                }
            )));
        // Asked about a recently-heard peer: alive.
        let a = d.on_msg(
            0,
            Wire::SuspectQuery { about: 2 },
            t0 + Duration::from_millis(1),
        );
        assert!(sends(&a).iter().any(|(_, m)| matches!(
            m,
            Wire::SuspectReply {
                about: 2,
                alive: true
            }
        )));
        // Asked about a peer we stopped hearing long ago: dead vote.
        let a = d.on_msg(
            0,
            Wire::SuspectQuery { about: 2 },
            t0 + Duration::from_millis(60),
        );
        assert!(sends(&a).iter().any(|(_, m)| matches!(
            m,
            Wire::SuspectReply {
                about: 2,
                alive: false
            }
        )));
    }
}
