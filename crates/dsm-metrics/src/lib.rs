//! A typed counter/gauge/histogram registry with periodic time-series
//! snapshots, exported as JSONL (one snapshot per line) or Prometheus
//! exposition text.
//!
//! Naming follows the Prometheus convention: `snake_case` with a unit
//! suffix (`_total` for counters, `_ns`/`_bytes` where applicable) and an
//! optional label block baked into the metric key, e.g.
//! `fabric_msgs_sent_total{node="0"}`. The registry treats the full
//! labelled string as the key; the exposition writer emits one `# TYPE`
//! line per base name (the part before `{`).
//!
//! Handles are lock-free atomics; `snapshot()` reads them all at one
//! timestamp. A [`TimeSeries`] accumulates snapshots during a run — its
//! [`merge`](TimeSeries::merge) is order-insensitive, so per-node or
//! per-shard series can be folded in any order (property-tested).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::Instant;

use dsm_trace::Histogram;

/// A monotonically increasing counter. For derived metrics sampled from an
/// external source (e.g. fabric atomics), use [`Counter::store`] with the
/// source's current total.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an externally computed total.
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed gauge.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registered log2 histogram (shared with [`dsm_trace::Histogram`]).
#[derive(Clone)]
pub struct HistHandle(Arc<Mutex<Histogram>>);

impl HistHandle {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(v);
    }
}

struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    hists: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

/// The metric registry: cheap to clone, safe to use from any thread.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry whose snapshot timestamps count from now.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Counter(Arc::clone(m.entry(name.to_string()).or_default()))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Gauge(Arc::clone(m.entry(name.to_string()).or_default()))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistHandle {
        let mut m = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        HistHandle(Arc::clone(
            m.entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(Histogram::new()))),
        ))
    }

    /// Read every metric at one timestamp (nanoseconds since the registry
    /// epoch).
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_at(self.inner.epoch.elapsed().as_nanos() as u64)
    }

    /// Snapshot with a caller-supplied timestamp (e.g. the trace epoch, so
    /// metrics and trace events share a timeline).
    pub fn snapshot_at(&self, ts_ns: u64) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let hists = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| {
                let h = v.lock().unwrap_or_else(PoisonError::into_inner);
                (k.clone(), HistSnapshot::of(&h))
            })
            .collect();
        Snapshot {
            ts_ns,
            counters,
            gauges,
            hists,
        }
    }

    /// Register with the global panic-dump registry (see
    /// [`dump_on_panic`]).
    pub fn register_flight_recorder(&self) {
        let mut reg = flight_registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&self.inner));
    }
}

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: u64,
    /// Median (power-of-two resolution).
    pub p50: u64,
    /// 99th percentile (power-of-two resolution).
    pub p99: u64,
}

impl HistSnapshot {
    fn of(h: &Histogram) -> Self {
        HistSnapshot {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
        }
    }
}

/// All metric values at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Nanoseconds since the sampling epoch.
    pub ts_ns: u64,
    /// Counter values by metric key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric key.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// One JSONL record: `{"ts_ns":…,"counters":{…},"gauges":{…},"hists":{…}}`.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("{{\"ts_ns\":{}", self.ts_ns);
        s.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", dsm_trace::json::escape(k));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", dsm_trace::json::escape(k));
        }
        s.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                dsm_trace::json::escape(k),
                h.count,
                h.min,
                h.max,
                h.mean,
                h.p50,
                h.p99
            );
        }
        s.push_str("}}");
        s
    }

    /// Prometheus exposition text. Histograms are rendered as summaries
    /// (`{quantile="…"}` series plus `_count`/`_sum`-style companions).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        fn base(name: &str) -> &str {
            name.split('{').next().unwrap_or(name)
        }
        let mut s = String::new();
        let mut typed: Option<&str> = None;
        for (k, v) in &self.counters {
            if typed != Some(base(k)) {
                let _ = writeln!(s, "# TYPE {} counter", base(k));
                typed = Some(base(k));
            }
            let _ = writeln!(s, "{k} {v}");
        }
        typed = None;
        for (k, v) in &self.gauges {
            if typed != Some(base(k)) {
                let _ = writeln!(s, "# TYPE {} gauge", base(k));
                typed = Some(base(k));
            }
            let _ = writeln!(s, "{k} {v}");
        }
        typed = None;
        for (k, h) in &self.hists {
            let (b, labels) = match k.find('{') {
                Some(i) => (&k[..i], format!(",{}", &k[i + 1..k.len() - 1])),
                None => (k.as_str(), String::new()),
            };
            if typed != Some(base(k)) {
                let _ = writeln!(s, "# TYPE {b} summary");
                typed = Some(base(k));
            }
            let _ = writeln!(s, "{b}{{quantile=\"0.5\"{labels}}} {}", h.p50);
            let _ = writeln!(s, "{b}{{quantile=\"0.99\"{labels}}} {}", h.p99);
            let _ = writeln!(
                s,
                "{b}_count{{{}}} {}",
                labels.trim_start_matches(','),
                h.count
            );
        }
        s
    }
}

/// A run's sequence of snapshots, ordered by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// Snapshots sorted by `(ts_ns, content)`.
    pub snapshots: Vec<Snapshot>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append one snapshot, keeping the series sorted.
    pub fn push(&mut self, snap: Snapshot) {
        self.snapshots.push(snap);
        self.normalize();
    }

    /// Fold another series into this one. Order-insensitive:
    /// `a.merge(b) == b.merge(a)` element-for-element, because the result
    /// is re-sorted with a total tie-break on serialized content.
    pub fn merge(&mut self, other: &TimeSeries) {
        self.snapshots.extend(other.snapshots.iter().cloned());
        self.normalize();
    }

    fn normalize(&mut self) {
        self.snapshots.sort_by(|a, b| {
            a.ts_ns
                .cmp(&b.ts_ns)
                .then_with(|| a.to_jsonl().cmp(&b.to_jsonl()))
        });
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&Snapshot> {
        self.snapshots.last()
    }

    /// Whole series as JSONL, one snapshot per line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for snap in &self.snapshots {
            s.push_str(&snap.to_jsonl());
            s.push('\n');
        }
        s
    }
}

static FLIGHT: OnceLock<Mutex<Vec<Weak<Inner>>>> = OnceLock::new();

fn flight_registry() -> &'static Mutex<Vec<Weak<Inner>>> {
    FLIGHT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Dump a fresh snapshot of every registered, still-live registry to
/// stderr. Called from panic hooks alongside the trace flight recorder;
/// best-effort, never panics.
pub fn dump_on_panic() {
    let reg = flight_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let live: Vec<_> = reg.iter().filter_map(|w| w.upgrade()).collect();
    drop(reg);
    if live.is_empty() {
        return;
    }
    eprintln!("=== dsm-metrics flight recorder ===");
    for inner in live {
        let r = Registry { inner };
        eprintln!("{}", r.snapshot().to_jsonl());
    }
    eprintln!("=== end metrics flight recorder ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_round_trip_through_snapshot() {
        let r = Registry::new();
        r.counter("msgs_total{node=\"0\"}").add(3);
        r.counter("msgs_total{node=\"0\"}").inc();
        r.gauge("inflight").set(-2);
        r.histogram("lat_ns").record(100);
        r.histogram("lat_ns").record(200);
        let s = r.snapshot();
        assert_eq!(s.counters["msgs_total{node=\"0\"}"], 4);
        assert_eq!(s.gauges["inflight"], -2);
        assert_eq!(s.hists["lat_ns"].count, 2);
        assert!(s.hists["lat_ns"].max >= 200);
    }

    #[test]
    fn jsonl_parses_with_the_trace_json_parser() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.gauge("g").set(7);
        r.histogram("h_ns").record(5);
        let line = r.snapshot_at(42).to_jsonl();
        let v = dsm_trace::json::parse(&line).unwrap();
        assert_eq!(v.get("ts_ns").unwrap().as_num(), Some(42.0));
        assert_eq!(
            v.get("counters").unwrap().get("a_total").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(
            v.get("hists")
                .unwrap()
                .get("h_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn prometheus_text_has_type_lines_and_values() {
        let r = Registry::new();
        r.counter("msgs_total{node=\"0\"}").add(5);
        r.counter("msgs_total{node=\"1\"}").add(7);
        r.gauge("mode").set(1);
        r.histogram("lat_ns{node=\"0\"}").record(64);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE msgs_total counter"));
        assert_eq!(text.matches("# TYPE msgs_total").count(), 1);
        assert!(text.contains("msgs_total{node=\"0\"} 5"));
        assert!(text.contains("msgs_total{node=\"1\"} 7"));
        assert!(text.contains("# TYPE mode gauge"));
        assert!(text.contains("# TYPE lat_ns summary"));
        assert!(text.contains("lat_ns{quantile=\"0.5\",node=\"0\"} 64"));
        assert!(text.contains("lat_ns_count{node=\"0\"} 1"));
    }

    #[test]
    fn time_series_merge_is_order_insensitive() {
        let r = Registry::new();
        let c = r.counter("x_total");
        let mut parts = Vec::new();
        for i in 0..4u64 {
            c.add(i + 1);
            let mut ts = TimeSeries::new();
            ts.push(r.snapshot_at(i * 100));
            parts.push(ts);
        }
        let mut fwd = TimeSeries::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = TimeSeries::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.snapshots.len(), 4);
        assert_eq!(fwd.last().unwrap().ts_ns, 300);
    }

    #[test]
    fn flight_dump_survives_dead_registries() {
        let r = Registry::new();
        r.counter("alive_total").inc();
        r.register_flight_recorder();
        {
            let dead = Registry::new();
            dead.register_flight_recorder();
        }
        dump_on_panic();
    }
}
