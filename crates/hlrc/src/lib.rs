#![warn(missing_docs)]
//! Home-based Lazy Release Consistency (HLRC) protocol substrate.
//!
//! Pure protocol data structures and state machines, free of threads and
//! I/O, so every transition is unit-testable:
//!
//! * [`wn`] — write notices (page invalidations tagged with the writer's
//!   interval) and the table of notices a node has learned.
//! * [`pagetable`] — per-node page state: cached copies, twins, per-page
//!   required versions; authoritative home copies with version vectors and
//!   idempotent diff application.
//! * [`homestore`] — the sharded store of home-page state, shared between
//!   the page table and the service thread so homes serve fetches and apply
//!   diffs concurrently with application compute.
//! * [`locks`] — the per-lock manager state machine: routing acquire
//!   requests to the last owner (which grants directly to the requester with
//!   LRC write notices), queueing, and crash-retransmission bookkeeping.
//! * [`barrier`] — the centralized barrier manager: episode arrivals
//!   carrying each node's own write notices since its previous arrival,
//!   aggregated releases.
//!
//! The threaded runtime that drives these machines over a
//! [`dsm_net::Fabric`] lives in the `ftdsm` crate, together with the fault
//! tolerance extensions (logging, checkpointing, LLT/CGC, recovery).

pub mod barrier;
pub mod homestore;
pub mod locks;
pub mod pagetable;
pub mod wn;

pub use barrier::{Arrival, BarrierManager, ReleaseSet};
pub use homestore::{ApplyOutcome, FetchOutcome, HomeStore, ReadyFetch, WaitingFetch};
pub use locks::{LockAction, LockId, LockManagerTable};
pub use pagetable::{AccessOutcome, PageMeta, PageState, PageTable};
pub use wn::{WnTable, WriteNotice};
