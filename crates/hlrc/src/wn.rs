//! Write notices and the write-notice table.
//!
//! A *write notice* announces that a process wrote a set of pages during one
//! of its intervals. Notices travel on lock grants and barrier releases; a
//! receiving node invalidates its cached copies of the named pages.
//!
//! The [`WnTable`] stores every notice a node has learned (its own and
//! foreign). LRC invariant: a node's table covers its vector timestamp, so
//! when it grants a lock it can supply the notices the acquirer is missing.

use std::collections::HashMap;

use dsm_page::{Interval, PageId, ProcId, VectorClock};

/// The pages one process wrote during one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteNotice {
    /// The writer's interval.
    pub interval: Interval,
    /// Pages written in that interval (sorted, deduplicated).
    pub pages: Vec<PageId>,
}

impl WriteNotice {
    /// Encoded size in bytes (interval: 8, count: 4, page ids: 4 each).
    pub fn wire_size(&self) -> usize {
        12 + 4 * self.pages.len()
    }
}

/// All write notices known to a node, keyed by interval.
#[derive(Debug, Default, Clone)]
pub struct WnTable {
    map: HashMap<(ProcId, u32), Vec<PageId>>,
}

impl WnTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a notice. Re-insertions (retransmissions during recovery) are
    /// idempotent.
    pub fn insert(&mut self, wn: WriteNotice) {
        self.map
            .entry((wn.interval.proc, wn.interval.seq))
            .or_insert(wn.pages);
    }

    /// Record a notice from parts.
    pub fn insert_parts(&mut self, interval: Interval, pages: Vec<PageId>) {
        self.insert(WriteNotice { interval, pages });
    }

    /// Pages written in `interval`, if known. An interval with no writes has
    /// no entry; both "unknown" and "empty" return `None`/`Some(&[])`
    /// respectively only if inserted that way — the protocol never inserts
    /// empty notices.
    pub fn get(&self, interval: Interval) -> Option<&[PageId]> {
        self.map
            .get(&(interval.proc, interval.seq))
            .map(|v| v.as_slice())
    }

    /// Number of stored notices.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no notices are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The notices for every interval in `(from, to]` (elementwise) that has
    /// an entry — what a granter sends to an acquirer with timestamp `from`
    /// when its own timestamp is `to`. Intervals without writes simply have
    /// no notice.
    pub fn missing_between(&self, from: &VectorClock, to: &VectorClock) -> Vec<WriteNotice> {
        from.missing_from(to)
            .into_iter()
            .filter_map(|iv| {
                self.get(iv).map(|pages| WriteNotice {
                    interval: iv,
                    pages: pages.to_vec(),
                })
            })
            .collect()
    }

    /// Drop notices for intervals covered by `bound` (elementwise): used
    /// when every process is known to have advanced past them. Returns the
    /// number of dropped notices.
    pub fn trim_covered_by(&mut self, bound: &VectorClock) -> usize {
        let before = self.map.len();
        self.map.retain(|(p, seq), _| *seq > bound.get(*p));
        before - self.map.len()
    }

    /// Total approximate memory footprint in bytes (for log accounting).
    pub fn approx_bytes(&self) -> usize {
        self.map.values().map(|v| 12 + 4 * v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(p: ProcId, s: u32) -> Interval {
        Interval { proc: p, seq: s }
    }

    #[test]
    fn insert_and_get() {
        let mut t = WnTable::new();
        t.insert_parts(iv(1, 3), vec![PageId(5), PageId(9)]);
        assert_eq!(t.get(iv(1, 3)), Some(&[PageId(5), PageId(9)][..]));
        assert_eq!(t.get(iv(1, 4)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut t = WnTable::new();
        t.insert_parts(iv(0, 1), vec![PageId(1)]);
        t.insert_parts(iv(0, 1), vec![PageId(2)]); // retransmission: ignored
        assert_eq!(t.get(iv(0, 1)), Some(&[PageId(1)][..]));
    }

    #[test]
    fn missing_between_selects_gap_with_entries() {
        let mut t = WnTable::new();
        t.insert_parts(iv(0, 2), vec![PageId(1)]);
        t.insert_parts(iv(0, 3), vec![PageId(2)]);
        t.insert_parts(iv(1, 1), vec![PageId(3)]);
        // interval (0,1) exists logically but had no writes: no entry.
        let from = VectorClock::from_vec(vec![1, 0]);
        let to = VectorClock::from_vec(vec![3, 1]);
        let missing = t.missing_between(&from, &to);
        assert_eq!(missing.len(), 3);
        assert_eq!(missing[0].interval, iv(0, 2));
        assert_eq!(missing[1].interval, iv(0, 3));
        assert_eq!(missing[2].interval, iv(1, 1));
    }

    #[test]
    fn trim_drops_only_covered() {
        let mut t = WnTable::new();
        t.insert_parts(iv(0, 1), vec![PageId(1)]);
        t.insert_parts(iv(0, 5), vec![PageId(1)]);
        t.insert_parts(iv(1, 2), vec![PageId(2)]);
        let dropped = t.trim_covered_by(&VectorClock::from_vec(vec![3, 2]));
        assert_eq!(dropped, 2);
        assert!(t.get(iv(0, 5)).is_some());
        assert!(t.get(iv(0, 1)).is_none());
        assert!(t.get(iv(1, 2)).is_none());
    }

    #[test]
    fn wire_size_matches_layout() {
        let wn = WriteNotice {
            interval: iv(0, 1),
            pages: vec![PageId(1), PageId(2)],
        };
        assert_eq!(wn.wire_size(), 12 + 8);
    }
}
