//! Per-lock manager state machine.
//!
//! Each lock has a static *manager* node (`lock_id % n`). Acquire requests
//! go to the manager, which forwards them to the lock's current *tail* —
//! the last process that was granted (or will be granted) the lock. The
//! tail grants directly to the requester with its release-time vector
//! timestamp and the write notices the requester is missing (LRC).
//!
//! To make every acquisition replayable from the mirrored release logs, the
//! manager acts as the initial owner of its locks: the very first request is
//! forwarded to the manager itself, which grants with a zero timestamp.
//!
//! Crash handling: the manager remembers, per (lock, requester), the last
//! forward it issued until a newer request from the same requester replaces
//! it. When a crashed node restarts ([`LockManagerTable::on_node_up`]) the
//! manager re-issues every forward that was addressed to it; grants are
//! idempotent (the granter replays them from its release log, the requester
//! dedups by acquisition sequence number).

use std::collections::HashMap;

use dsm_page::{ProcId, VectorClock};

/// Identifier of an application lock.
pub type LockId = usize;

/// An acquire request as routed by the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcqReq {
    /// The process that wants the lock.
    pub requester: ProcId,
    /// The requester's acquisition sequence number (dedup key; each process
    /// numbers all its lock acquisitions).
    pub acq_seq: u64,
    /// The requester's vector timestamp at request time.
    pub vt: VectorClock,
}

/// What the manager asks the runtime to do in response to a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAction {
    /// The lock in question.
    pub lock: LockId,
    /// The node that should produce the grant (the chain tail; possibly the
    /// manager itself).
    pub grant_from: ProcId,
    /// Grant generation: a per-lock counter assigned by the manager. Peers
    /// remember the highest generation they granted or queued, which lets a
    /// recovering manager rebuild the chain tail.
    pub gen: u64,
    /// The acquisition sequence number, *at the granter*, of the tenure
    /// this forward chains behind (`u64::MAX` for the chain start). The
    /// granter grants immediately iff it has already released that tenure —
    /// its own acquisition numbering is deterministic local knowledge, so
    /// the test survives the granter's crash and replay.
    pub pred_acq: u64,
    /// The request to satisfy.
    pub req: AcqReq,
}

#[derive(Debug)]
struct ManagedLock {
    /// Last node granted (or forwarded) the lock; grants chain through it.
    tail: ProcId,
    /// Generation of the request that made `tail` the tail (0 initially).
    tail_gen: u64,
    /// The tail's own acquisition sequence number for that request
    /// (`u64::MAX` initially: the manager-as-initial-owner has no tenure).
    tail_acq: u64,
    /// Next grant generation.
    gen_next: u64,
    /// The node that granted (or was forwarded) the tail's tenure — i.e.
    /// the `grant_from` of the edge that made `tail` the tail. A recovered
    /// manager restores this from the granter's release log, which lets it
    /// replay a grant whose delivery was lost: if the tail itself
    /// retransmits the acquisition that made it tail, the manager
    /// re-forwards to this granter instead of chaining the request behind
    /// its own (never completed) tenure. `None` when the edge's origin is
    /// unknown (tenure-derived restore, self-grant).
    tail_granter: Option<ProcId>,
    /// Per-requester last forward, kept for crash retransmission. Replaced
    /// when the same requester issues a newer acquisition.
    pending: HashMap<ProcId, PendingFwd>,
}

#[derive(Debug, Clone, Copy)]
struct PendingFwd {
    acq_seq: u64,
    forwarded_to: ProcId,
    gen: u64,
    pred_acq: u64,
}

/// All locks managed by one node.
#[derive(Debug)]
pub struct LockManagerTable {
    me: ProcId,
    locks: HashMap<LockId, ManagedLock>,
}

impl LockManagerTable {
    /// The manager table for node `me`.
    pub fn new(me: ProcId) -> Self {
        LockManagerTable {
            me,
            locks: HashMap::new(),
        }
    }

    /// Handle an acquire request (possibly a retransmission) for a lock
    /// managed here. Returns the forward to issue, or `None` for a stale
    /// duplicate.
    pub fn on_request(&mut self, lock: LockId, req: AcqReq) -> Option<LockAction> {
        let me = self.me;
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail: me,
            tail_gen: 0,
            tail_acq: u64::MAX,
            gen_next: 1,
            tail_granter: None,
            pending: HashMap::new(),
        });
        match ml.pending.get(&req.requester) {
            Some(p) if p.acq_seq == req.acq_seq => {
                // Retransmission of an in-flight request: re-forward to the
                // same predecessor; do not advance the chain again.
                Some(LockAction {
                    lock,
                    grant_from: p.forwarded_to,
                    gen: p.gen,
                    pred_acq: p.pred_acq,
                    req,
                })
            }
            Some(p) if p.acq_seq > req.acq_seq => None, // stale duplicate
            _ => {
                if ml.tail == req.requester && ml.tail_acq == req.acq_seq {
                    // The tail retransmits the very acquisition that made
                    // it the tail, and we have no pending record of it:
                    // this manager recovered from a crash, restored the
                    // tail from peer reports, and the original grant's
                    // delivery was lost. Chaining the request behind the
                    // tail's own tenure would deadlock it on itself. If
                    // the restoring report named the granter (the grant is
                    // in its release log), re-forward there: the granter
                    // replays the identical grant. Otherwise the tail came
                    // from a *delivered* tenure, whose owner never
                    // retransmits it — fall through and chain normally.
                    if let Some(granter) = ml.tail_granter {
                        if granter != req.requester {
                            let gen = ml.tail_gen;
                            ml.pending.insert(
                                req.requester,
                                PendingFwd {
                                    acq_seq: req.acq_seq,
                                    forwarded_to: granter,
                                    gen,
                                    // The granter replays from its release
                                    // log; the predecessor test never runs.
                                    pred_acq: u64::MAX,
                                },
                            );
                            return Some(LockAction {
                                lock,
                                grant_from: granter,
                                gen,
                                pred_acq: u64::MAX,
                                req,
                            });
                        }
                    }
                }
                let grant_from = ml.tail;
                let pred_acq = ml.tail_acq;
                let gen = ml.gen_next;
                ml.gen_next += 1;
                ml.tail = req.requester;
                ml.tail_gen = gen;
                ml.tail_acq = req.acq_seq;
                ml.tail_granter = Some(grant_from);
                ml.pending.insert(
                    req.requester,
                    PendingFwd {
                        acq_seq: req.acq_seq,
                        forwarded_to: grant_from,
                        gen,
                        pred_acq,
                    },
                );
                Some(LockAction {
                    lock,
                    grant_from,
                    gen,
                    pred_acq,
                    req,
                })
            }
        }
    }

    /// A crashed node restarted: re-issue every pending forward that was
    /// addressed to it (the original may have been dropped).
    pub fn on_node_up(&mut self, node: ProcId) -> Vec<LockAction> {
        let mut out = Vec::new();
        for (&lock, ml) in &self.locks {
            for (&requester, p) in &ml.pending {
                if p.forwarded_to == node {
                    out.push(LockAction {
                        lock,
                        grant_from: p.forwarded_to,
                        gen: p.gen,
                        pred_acq: p.pred_acq,
                        req: AcqReq {
                            requester,
                            acq_seq: p.acq_seq,
                            // The retransmitted forward carries a zero vt;
                            // the granter computes missing notices against
                            // the vt recorded in its release log for
                            // already-granted requests, and requesters of
                            // live grants resend their own request anyway.
                            vt: VectorClock::zero(0),
                        },
                    });
                }
            }
        }
        out
    }

    /// Manager recovery: restore a lock's chain from the highest-generation
    /// *materialized* acquisition reported by peers — a tenure the grantee
    /// actually entered, or a grant present in its granter's release log.
    /// Queued-but-undelivered chain edges are discarded at recovery (the
    /// peers drop them when serving the log handshake) and must NOT be
    /// offered here: their requesters re-drive the request and are chained
    /// fresh. `granter` is the node whose release log holds the grant
    /// (`None` for a tenure report, where no replayable record exists).
    pub fn restore_chain(
        &mut self,
        lock: LockId,
        gen: u64,
        tail: ProcId,
        tail_acq: u64,
        granter: Option<ProcId>,
    ) {
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail,
            tail_gen: gen,
            tail_acq,
            gen_next: gen + 1,
            tail_granter: granter,
            pending: HashMap::new(),
        });
        if gen + 1 > ml.gen_next {
            ml.gen_next = gen + 1;
        }
        if gen >= ml.tail_gen {
            // A displaced restored tail's edge materialized and the chain
            // moved past it, so its tenure completed and its requester will
            // never retransmit it — drop the replay record (restores run on
            // a fresh manager, so `pending` holds only restored edges).
            ml.pending.remove(&ml.tail);
            ml.tail = tail;
            ml.tail_gen = gen;
            ml.tail_acq = tail_acq;
            ml.tail_granter = granter;
            // A release-log-restored edge may have lost its delivery: the
            // grantee will retransmit the acquisition. Record the forward so
            // the retransmission replays from the granter at the original
            // generation even after new requests advance the chain —
            // chaining the same acquisition a second time behind the new
            // tail would close a grant cycle and deadlock both requesters.
            // (The tail-retransmission check in `on_request` only catches
            // the case where the chain has NOT moved yet.)
            if let Some(g) = granter {
                if g != tail {
                    ml.pending.insert(
                        tail,
                        PendingFwd {
                            acq_seq: tail_acq,
                            forwarded_to: g,
                            gen,
                            // The granter replays from its release log; the
                            // predecessor test never runs.
                            pred_acq: u64::MAX,
                        },
                    );
                }
            }
        }
    }

    /// Manager recovery: raise a lock's next grant generation above `gen`
    /// without touching the tail. Applied from peers' highest *seen*
    /// generations (including queued edges that the recovery discarded),
    /// so fresh post-recovery edges always outrank every pre-crash one.
    pub fn bound_gen(&mut self, lock: LockId, gen: u64) {
        if let Some(ml) = self.locks.get_mut(&lock) {
            if gen + 1 > ml.gen_next {
                ml.gen_next = gen + 1;
            }
        } else {
            let me = self.me;
            self.locks.insert(
                lock,
                ManagedLock {
                    tail: me,
                    tail_gen: 0,
                    tail_acq: u64::MAX,
                    gen_next: gen + 1,
                    tail_granter: None,
                    pending: HashMap::new(),
                },
            );
        }
    }

    /// Current chain tail of a managed lock, if any request has been seen.
    pub fn tail_of(&self, lock: LockId) -> Option<ProcId> {
        self.locks.get(&lock).map(|ml| ml.tail)
    }

    /// Generation of the grant that made the current tail the tail.
    pub fn tail_gen_of(&self, lock: LockId) -> Option<u64> {
        self.locks.get(&lock).map(|ml| ml.tail_gen)
    }

    /// Recovery: the recovering manager replayed a self-granted tenure of a
    /// lock it manages and no newer grant is known, so it is the chain
    /// tail. Callers must check `tail_of` first: a peer tail restored from
    /// the handshake means the chain moved past the self-granted tenure
    /// before the crash (the grant that made us tail is always reported by
    /// its granter, so a peer tail implies a newer generation).
    pub fn force_tail(&mut self, lock: LockId, tail: ProcId, tail_acq: u64) {
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail,
            tail_gen: 0,
            tail_acq,
            gen_next: 1,
            tail_granter: None,
            pending: HashMap::new(),
        });
        // Never regress our own tail: a restored tail naming the same node
        // at a newer acquisition already covers this tenure.
        if ml.tail == tail && ml.tail_acq != u64::MAX && ml.tail_acq >= tail_acq {
            return;
        }
        ml.tail = tail;
        ml.tail_acq = tail_acq;
        ml.tail_gen = ml.gen_next;
        ml.gen_next += 1;
        ml.tail_granter = None;
    }

    /// Number of locks with state.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no lock has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(r: ProcId, seq: u64) -> AcqReq {
        AcqReq {
            requester: r,
            acq_seq: seq,
            vt: VectorClock::zero(4),
        }
    }

    #[test]
    fn first_request_is_granted_by_the_manager_itself() {
        let mut m = LockManagerTable::new(2);
        let a = m.on_request(9, req(1, 0)).unwrap();
        assert_eq!(a.grant_from, 2);
        assert_eq!(a.req.requester, 1);
    }

    #[test]
    fn requests_chain_through_previous_requesters() {
        let mut m = LockManagerTable::new(0);
        let a1 = m.on_request(5, req(1, 0)).unwrap();
        assert_eq!(a1.grant_from, 0);
        let a2 = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(a2.grant_from, 1);
        let a3 = m.on_request(5, req(3, 0)).unwrap();
        assert_eq!(a3.grant_from, 2);
        // Re-acquisition by an earlier holder chains normally.
        let a4 = m.on_request(5, req(1, 1)).unwrap();
        assert_eq!(a4.grant_from, 3);
    }

    #[test]
    fn retransmission_reforwards_without_advancing_chain() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap();
        let retx = m.on_request(5, req(1, 0)).unwrap();
        assert_eq!(retx.grant_from, 0);
        // Chain tail is still 1: a new requester is forwarded to 1.
        let a = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(a.grant_from, 1);
    }

    #[test]
    fn stale_duplicate_is_dropped() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap();
        m.on_request(5, req(1, 1)).unwrap();
        assert_eq!(m.on_request(5, req(1, 0)), None);
    }

    #[test]
    fn node_up_reissues_forwards_addressed_to_it() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap(); // granted by 0
        m.on_request(5, req(2, 0)).unwrap(); // forwarded to 1
        m.on_request(7, req(3, 0)).unwrap(); // granted by 0
        let redo = m.on_node_up(1);
        assert_eq!(redo.len(), 1);
        assert_eq!(redo[0].lock, 5);
        assert_eq!(redo[0].grant_from, 1);
        assert_eq!(redo[0].req.requester, 2);
        assert_eq!(redo[0].req.acq_seq, 0);
        assert!(m.on_node_up(9).is_empty());
    }

    #[test]
    fn tail_retransmission_replays_from_restored_granter() {
        // A recovered manager restored the tail from granter 3's release
        // log: node 1's acquisition 4 (gen 7) was issued by 3 but its
        // delivery was lost. 1 retransmits; the manager must re-forward to
        // 3 (which replays the grant), not chain 1 behind its own never-
        // completed tenure.
        let mut m = LockManagerTable::new(0);
        m.restore_chain(5, 7, 1, 4, Some(3));
        let a = m.on_request(5, req(1, 4)).unwrap();
        assert_eq!(a.grant_from, 3);
        assert_eq!(a.gen, 7);
        assert_eq!(a.pred_acq, u64::MAX);
        // The chain did not advance: a new requester chains behind 1.
        let b = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(b.grant_from, 1);
        assert_eq!(b.pred_acq, 4);
    }

    #[test]
    fn tail_retransmission_after_chain_advanced_replays_from_granter() {
        // Deadlock regression: manager 1 recovers with restored tail 3
        // (acq 0, gen 4, grant in 1's own release log — delivery lost in
        // the crash). Node 2 then chains behind 3 (gen 5, moving the
        // tail). When 3 finally retransmits its lost acquisition, the
        // manager must replay it from the granter at the original
        // generation — chaining it a second time behind 2 would create a
        // 2↔3 grant cycle (2 waits on 3's tenure, 3 waits on 2's).
        let mut m = LockManagerTable::new(1);
        m.restore_chain(5, 4, 3, 0, Some(1));
        let a = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(a.grant_from, 3);
        assert_eq!(a.gen, 5);
        assert_eq!(a.pred_acq, 0);
        let b = m.on_request(5, req(3, 0)).unwrap();
        assert_eq!(b.grant_from, 1, "must replay from the granter's log");
        assert_eq!(b.gen, 4);
        assert_eq!(b.pred_acq, u64::MAX);
        // The chain did not advance again: tail is still 2.
        assert_eq!(m.tail_of(5), Some(2));
    }

    #[test]
    fn newer_restore_drops_the_displaced_tails_replay_record() {
        // Two release-log edges restored out of chain order: the gen-7 edge
        // displaces the gen-4 tail, whose tenure therefore completed. Its
        // old requester re-acquiring chains normally instead of replaying.
        let mut m = LockManagerTable::new(0);
        m.restore_chain(5, 4, 2, 1, Some(1));
        m.restore_chain(5, 7, 3, 2, Some(2));
        let a = m.on_request(5, req(2, 2)).unwrap();
        assert_eq!(a.grant_from, 3);
        assert_eq!(a.gen, 8);
        assert_eq!(a.pred_acq, 2);
    }

    #[test]
    fn tenure_restored_tail_requesting_again_chains_normally() {
        // Tail restored from a delivered-tenure report (no granter): the
        // owner's *next* acquisition chains behind that tenure.
        let mut m = LockManagerTable::new(0);
        m.restore_chain(5, 7, 1, 4, None);
        let a = m.on_request(5, req(1, 5)).unwrap();
        assert_eq!(a.grant_from, 1);
        assert_eq!(a.pred_acq, 4);
        assert_eq!(a.gen, 8);
    }

    #[test]
    fn bound_gen_outranks_discarded_edges_without_moving_tail() {
        let mut m = LockManagerTable::new(0);
        m.restore_chain(5, 3, 2, 1, None);
        m.bound_gen(5, 9); // a queued gen-9 edge was discarded at recovery
        assert_eq!(m.tail_of(5), Some(2));
        assert_eq!(m.tail_gen_of(5), Some(3));
        let a = m.on_request(5, req(3, 0)).unwrap();
        assert_eq!(a.gen, 10, "fresh edges must outrank discarded ones");
        assert_eq!(a.grant_from, 2);
    }

    #[test]
    fn restore_keeps_the_newest_materialized_acquisition() {
        let mut m = LockManagerTable::new(0);
        m.restore_chain(5, 4, 2, 1, Some(1));
        m.restore_chain(5, 7, 3, 2, None);
        m.restore_chain(5, 6, 1, 9, Some(2));
        assert_eq!(m.tail_of(5), Some(3));
        assert_eq!(m.tail_gen_of(5), Some(7));
    }

    #[test]
    fn distinct_locks_have_independent_chains() {
        let mut m = LockManagerTable::new(0);
        m.on_request(1, req(1, 0)).unwrap();
        let a = m.on_request(2, req(2, 0)).unwrap();
        assert_eq!(a.grant_from, 0);
    }
}
