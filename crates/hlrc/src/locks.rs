//! Per-lock manager state machine.
//!
//! Each lock has a static *manager* node (`lock_id % n`). Acquire requests
//! go to the manager, which forwards them to the lock's current *tail* —
//! the last process that was granted (or will be granted) the lock. The
//! tail grants directly to the requester with its release-time vector
//! timestamp and the write notices the requester is missing (LRC).
//!
//! To make every acquisition replayable from the mirrored release logs, the
//! manager acts as the initial owner of its locks: the very first request is
//! forwarded to the manager itself, which grants with a zero timestamp.
//!
//! Crash handling: the manager remembers, per (lock, requester), the last
//! forward it issued until a newer request from the same requester replaces
//! it. When a crashed node restarts ([`LockManagerTable::on_node_up`]) the
//! manager re-issues every forward that was addressed to it; grants are
//! idempotent (the granter replays them from its release log, the requester
//! dedups by acquisition sequence number).

use std::collections::HashMap;

use dsm_page::{ProcId, VectorClock};

/// Identifier of an application lock.
pub type LockId = usize;

/// An acquire request as routed by the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcqReq {
    /// The process that wants the lock.
    pub requester: ProcId,
    /// The requester's acquisition sequence number (dedup key; each process
    /// numbers all its lock acquisitions).
    pub acq_seq: u64,
    /// The requester's vector timestamp at request time.
    pub vt: VectorClock,
}

/// What the manager asks the runtime to do in response to a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAction {
    /// The lock in question.
    pub lock: LockId,
    /// The node that should produce the grant (the chain tail; possibly the
    /// manager itself).
    pub grant_from: ProcId,
    /// Grant generation: a per-lock counter assigned by the manager. Peers
    /// remember the highest generation they granted or queued, which lets a
    /// recovering manager rebuild the chain tail.
    pub gen: u64,
    /// The acquisition sequence number, *at the granter*, of the tenure
    /// this forward chains behind (`u64::MAX` for the chain start). The
    /// granter grants immediately iff it has already released that tenure —
    /// its own acquisition numbering is deterministic local knowledge, so
    /// the test survives the granter's crash and replay.
    pub pred_acq: u64,
    /// The request to satisfy.
    pub req: AcqReq,
}

#[derive(Debug)]
struct ManagedLock {
    /// Last node granted (or forwarded) the lock; grants chain through it.
    tail: ProcId,
    /// Generation of the request that made `tail` the tail (0 initially).
    tail_gen: u64,
    /// The tail's own acquisition sequence number for that request
    /// (`u64::MAX` initially: the manager-as-initial-owner has no tenure).
    tail_acq: u64,
    /// Next grant generation.
    gen_next: u64,
    /// Per-requester last forward, kept for crash retransmission. Replaced
    /// when the same requester issues a newer acquisition.
    pending: HashMap<ProcId, PendingFwd>,
}

#[derive(Debug, Clone, Copy)]
struct PendingFwd {
    acq_seq: u64,
    forwarded_to: ProcId,
    gen: u64,
    pred_acq: u64,
}

/// All locks managed by one node.
#[derive(Debug)]
pub struct LockManagerTable {
    me: ProcId,
    locks: HashMap<LockId, ManagedLock>,
}

impl LockManagerTable {
    /// The manager table for node `me`.
    pub fn new(me: ProcId) -> Self {
        LockManagerTable {
            me,
            locks: HashMap::new(),
        }
    }

    /// Handle an acquire request (possibly a retransmission) for a lock
    /// managed here. Returns the forward to issue, or `None` for a stale
    /// duplicate.
    pub fn on_request(&mut self, lock: LockId, req: AcqReq) -> Option<LockAction> {
        let me = self.me;
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail: me,
            tail_gen: 0,
            tail_acq: u64::MAX,
            gen_next: 1,
            pending: HashMap::new(),
        });
        match ml.pending.get(&req.requester) {
            Some(p) if p.acq_seq == req.acq_seq => {
                // Retransmission of an in-flight request: re-forward to the
                // same predecessor; do not advance the chain again.
                Some(LockAction {
                    lock,
                    grant_from: p.forwarded_to,
                    gen: p.gen,
                    pred_acq: p.pred_acq,
                    req,
                })
            }
            Some(p) if p.acq_seq > req.acq_seq => None, // stale duplicate
            _ => {
                let grant_from = ml.tail;
                let pred_acq = ml.tail_acq;
                let gen = ml.gen_next;
                ml.gen_next += 1;
                ml.tail = req.requester;
                ml.tail_gen = gen;
                ml.tail_acq = req.acq_seq;
                ml.pending.insert(
                    req.requester,
                    PendingFwd {
                        acq_seq: req.acq_seq,
                        forwarded_to: grant_from,
                        gen,
                        pred_acq,
                    },
                );
                Some(LockAction {
                    lock,
                    grant_from,
                    gen,
                    pred_acq,
                    req,
                })
            }
        }
    }

    /// A crashed node restarted: re-issue every pending forward that was
    /// addressed to it (the original may have been dropped).
    pub fn on_node_up(&mut self, node: ProcId) -> Vec<LockAction> {
        let mut out = Vec::new();
        for (&lock, ml) in &self.locks {
            for (&requester, p) in &ml.pending {
                if p.forwarded_to == node {
                    out.push(LockAction {
                        lock,
                        grant_from: p.forwarded_to,
                        gen: p.gen,
                        pred_acq: p.pred_acq,
                        req: AcqReq {
                            requester,
                            acq_seq: p.acq_seq,
                            // The retransmitted forward carries a zero vt;
                            // the granter computes missing notices against
                            // the vt recorded in its release log for
                            // already-granted requests, and requesters of
                            // live grants resend their own request anyway.
                            vt: VectorClock::zero(0),
                        },
                    });
                }
            }
        }
        out
    }

    /// Manager recovery: restore a lock's chain from the highest grant
    /// generation reported by peers (the grantee of the newest issued or
    /// queued grant is the chain tail).
    pub fn restore_chain(&mut self, lock: LockId, gen: u64, tail: ProcId, tail_acq: u64) {
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail,
            tail_gen: gen,
            tail_acq,
            gen_next: gen + 1,
            pending: HashMap::new(),
        });
        if gen + 1 > ml.gen_next {
            ml.gen_next = gen + 1;
            ml.tail = tail;
            ml.tail_gen = gen;
            ml.tail_acq = tail_acq;
        }
    }

    /// Current chain tail of a managed lock, if any request has been seen.
    pub fn tail_of(&self, lock: LockId) -> Option<ProcId> {
        self.locks.get(&lock).map(|ml| ml.tail)
    }

    /// Recovery: the recovering manager replayed a self-granted tenure of a
    /// lock it manages and no newer grant is known, so it is the chain
    /// tail. Callers must check `tail_of` first: a peer tail restored from
    /// the handshake means the chain moved past the self-granted tenure
    /// before the crash (the grant that made us tail is always reported by
    /// its granter, so a peer tail implies a newer generation).
    pub fn force_tail(&mut self, lock: LockId, tail: ProcId, tail_acq: u64) {
        let ml = self.locks.entry(lock).or_insert_with(|| ManagedLock {
            tail,
            tail_gen: 0,
            tail_acq,
            gen_next: 1,
            pending: HashMap::new(),
        });
        ml.tail = tail;
        ml.tail_acq = tail_acq;
        ml.tail_gen = ml.gen_next;
        ml.gen_next += 1;
    }

    /// Number of locks with state.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no lock has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(r: ProcId, seq: u64) -> AcqReq {
        AcqReq {
            requester: r,
            acq_seq: seq,
            vt: VectorClock::zero(4),
        }
    }

    #[test]
    fn first_request_is_granted_by_the_manager_itself() {
        let mut m = LockManagerTable::new(2);
        let a = m.on_request(9, req(1, 0)).unwrap();
        assert_eq!(a.grant_from, 2);
        assert_eq!(a.req.requester, 1);
    }

    #[test]
    fn requests_chain_through_previous_requesters() {
        let mut m = LockManagerTable::new(0);
        let a1 = m.on_request(5, req(1, 0)).unwrap();
        assert_eq!(a1.grant_from, 0);
        let a2 = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(a2.grant_from, 1);
        let a3 = m.on_request(5, req(3, 0)).unwrap();
        assert_eq!(a3.grant_from, 2);
        // Re-acquisition by an earlier holder chains normally.
        let a4 = m.on_request(5, req(1, 1)).unwrap();
        assert_eq!(a4.grant_from, 3);
    }

    #[test]
    fn retransmission_reforwards_without_advancing_chain() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap();
        let retx = m.on_request(5, req(1, 0)).unwrap();
        assert_eq!(retx.grant_from, 0);
        // Chain tail is still 1: a new requester is forwarded to 1.
        let a = m.on_request(5, req(2, 0)).unwrap();
        assert_eq!(a.grant_from, 1);
    }

    #[test]
    fn stale_duplicate_is_dropped() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap();
        m.on_request(5, req(1, 1)).unwrap();
        assert_eq!(m.on_request(5, req(1, 0)), None);
    }

    #[test]
    fn node_up_reissues_forwards_addressed_to_it() {
        let mut m = LockManagerTable::new(0);
        m.on_request(5, req(1, 0)).unwrap(); // granted by 0
        m.on_request(5, req(2, 0)).unwrap(); // forwarded to 1
        m.on_request(7, req(3, 0)).unwrap(); // granted by 0
        let redo = m.on_node_up(1);
        assert_eq!(redo.len(), 1);
        assert_eq!(redo[0].lock, 5);
        assert_eq!(redo[0].grant_from, 1);
        assert_eq!(redo[0].req.requester, 2);
        assert_eq!(redo[0].req.acq_seq, 0);
        assert!(m.on_node_up(9).is_empty());
    }

    #[test]
    fn distinct_locks_have_independent_chains() {
        let mut m = LockManagerTable::new(0);
        m.on_request(1, req(1, 0)).unwrap();
        let a = m.on_request(2, req(2, 0)).unwrap();
        assert_eq!(a.grant_from, 0);
    }
}
