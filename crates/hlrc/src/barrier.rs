//! Centralized barrier manager.
//!
//! One node (node 0 by default) manages the single global barrier used by
//! the SPLASH-style applications. Barrier crossings are numbered *episodes*.
//! An arriving node sends its vector timestamp and the write notices of its
//! *own* intervals since its previous arrival; once all `n` arrivals are in,
//! the manager computes the joined timestamp and sends each participant the
//! notices it is missing.
//!
//! Invariant making the own-notices-only arrival sufficient: after episode
//! `e-1`, every participant's timestamp covers every interval that ended
//! before the corresponding arrival, so anything a participant can be
//! missing at episode `e` was created since someone's `e-1` arrival and is
//! therefore included in that someone's own notices at `e`.
//!
//! The last completed episode is retained so the release can be recomputed
//! for a participant that lost it to a crash and re-arrives.

use std::collections::HashMap;

use dsm_page::{ProcId, VectorClock};

use crate::wn::WriteNotice;

/// A node's arrival at the barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// The arriving node.
    pub proc: ProcId,
    /// Barrier episode number (0-based count of crossings at that node).
    pub episode: u64,
    /// The node's timestamp at arrival (its arrival interval just ended).
    pub vt: VectorClock,
    /// Write notices for the node's own intervals since its previous
    /// arrival.
    pub own_wns: Vec<WriteNotice>,
}

/// What the manager sends each participant when the barrier completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseSet {
    /// The completed episode.
    pub episode: u64,
    /// Join of all arrival timestamps.
    pub vt: VectorClock,
    /// Per-participant missing write notices, indexed by process id.
    pub per_proc_wns: Vec<Vec<WriteNotice>>,
    /// Arrival timestamps, indexed by process id (mirrored into the
    /// manager's fault-tolerance barrier log).
    pub arrival_vts: Vec<VectorClock>,
}

#[derive(Debug)]
struct CompletedEpisode {
    episode: u64,
    vt: VectorClock,
    arrival_vts: Vec<VectorClock>,
    all_wns: Vec<WriteNotice>,
}

/// The barrier manager state machine.
#[derive(Debug)]
pub struct BarrierManager {
    n: usize,
    episode: u64,
    arrivals: HashMap<ProcId, Arrival>,
    last: Option<CompletedEpisode>,
}

/// Outcome of processing one arrival.
#[derive(Debug, PartialEq, Eq)]
pub enum ArriveOutcome {
    /// Still waiting for more arrivals.
    Pending,
    /// All `n` nodes arrived: release everyone.
    Complete(ReleaseSet),
    /// A (re-)arrival for the last completed episode (the sender lost the
    /// release to a crash): resend its release.
    Resend {
        /// The re-arriving node.
        proc: ProcId,
        /// Episode, joined timestamp and that node's missing notices.
        release: ReleaseSet,
    },
}

impl BarrierManager {
    /// Manager for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        BarrierManager {
            n,
            episode: 0,
            arrivals: HashMap::new(),
            last: None,
        }
    }

    /// The episode currently being collected.
    pub fn current_episode(&self) -> u64 {
        self.episode
    }

    /// Process one arrival (idempotent per (episode, proc)).
    ///
    /// # Panics
    /// On an arrival from the future (more than the current episode), which
    /// would indicate a runtime bug: no node can pass a barrier before it
    /// completes.
    pub fn arrive(&mut self, a: Arrival) -> ArriveOutcome {
        if a.episode < self.episode {
            // Only the immediately previous episode can be re-requested: a
            // node blocked at episode e cannot have passed e, and e-1 is the
            // newest barrier anyone can have crossed.
            let last = self
                .last
                .as_ref()
                .expect("re-arrival with no completed episode");
            if a.episode < last.episode {
                // A duplicated or long-delayed arrival for an episode older
                // than the last completed one. That episode completed, which
                // required this node's arrival — so the sender has already
                // crossed it and this copy is stale. A node genuinely blocked
                // at an ancient episode is impossible: every later episode's
                // completion required its arrival too.
                return ArriveOutcome::Pending;
            }
            let wns = missing_wns(&last.all_wns, &last.arrival_vts[a.proc]);
            let mut per_proc_wns = vec![Vec::new(); self.n];
            per_proc_wns[a.proc] = wns;
            return ArriveOutcome::Resend {
                proc: a.proc,
                release: ReleaseSet {
                    episode: last.episode,
                    vt: last.vt.clone(),
                    per_proc_wns,
                    arrival_vts: last.arrival_vts.clone(),
                },
            };
        }
        assert_eq!(a.episode, self.episode, "arrival from the future");
        self.arrivals.entry(a.proc).or_insert(a);
        if self.arrivals.len() < self.n {
            return ArriveOutcome::Pending;
        }
        // Everyone is here: join timestamps and union own-notices.
        let mut vt = VectorClock::zero(self.arrivals[&0].vt.len());
        let mut all_wns: Vec<WriteNotice> = Vec::new();
        let mut arrival_vts = vec![VectorClock::zero(vt.len()); self.n];
        for (p, slot) in arrival_vts.iter_mut().enumerate() {
            let a = &self.arrivals[&p];
            vt.join(&a.vt);
            all_wns.extend(a.own_wns.iter().cloned());
            *slot = a.vt.clone();
        }
        let per_proc_wns = (0..self.n)
            .map(|p| missing_wns(&all_wns, &arrival_vts[p]))
            .collect::<Vec<_>>();
        let release = ReleaseSet {
            episode: self.episode,
            vt: vt.clone(),
            per_proc_wns,
            arrival_vts: arrival_vts.clone(),
        };
        self.last = Some(CompletedEpisode {
            episode: self.episode,
            vt,
            arrival_vts,
            all_wns,
        });
        self.episode += 1;
        self.arrivals.clear();
        ArriveOutcome::Complete(release)
    }

    /// Restore the manager's episode counter and last completed episode from
    /// mirrored records (manager recovery). `last_all_wns` is a conservative
    /// superset of the last episode's write notices (extras are harmless:
    /// receivers skip notices their timestamp already covers); `arrival_vts`
    /// entries missing from the mirrors may be zero clocks, which only makes
    /// resent releases carry more notices than strictly needed.
    pub fn restore(
        &mut self,
        episode: u64,
        last: Option<(VectorClock, Vec<VectorClock>, Vec<WriteNotice>)>,
    ) {
        self.episode = episode;
        self.arrivals.clear();
        self.last = last.map(|(vt, arrival_vts, all_wns)| CompletedEpisode {
            episode: episode.saturating_sub(1),
            arrival_vts,
            vt,
            all_wns,
        });
    }
}

fn missing_wns(all: &[WriteNotice], have: &VectorClock) -> Vec<WriteNotice> {
    all.iter()
        .filter(|wn| !have.covers_interval(wn.interval))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_page::{Interval, PageId};

    fn wn(p: ProcId, seq: u32, pages: &[u32]) -> WriteNotice {
        WriteNotice {
            interval: Interval { proc: p, seq },
            pages: pages.iter().map(|&x| PageId(x)).collect(),
        }
    }

    fn arrival(p: ProcId, ep: u64, vt: Vec<u32>, wns: Vec<WriteNotice>) -> Arrival {
        Arrival {
            proc: p,
            episode: ep,
            vt: VectorClock::from_vec(vt),
            own_wns: wns,
        }
    }

    #[test]
    fn completes_when_all_arrive_and_joins_vts() {
        let mut b = BarrierManager::new(3);
        assert_eq!(
            b.arrive(arrival(0, 0, vec![1, 0, 0], vec![wn(0, 1, &[1])])),
            ArriveOutcome::Pending
        );
        assert_eq!(
            b.arrive(arrival(1, 0, vec![0, 2, 0], vec![wn(1, 2, &[2])])),
            ArriveOutcome::Pending
        );
        let out = b.arrive(arrival(2, 0, vec![0, 0, 3], vec![wn(2, 3, &[3])]));
        let ArriveOutcome::Complete(rel) = out else {
            panic!("expected completion")
        };
        assert_eq!(rel.episode, 0);
        assert_eq!(rel.vt.as_slice(), &[1, 2, 3]);
        // Node 0 is missing notices from 1 and 2 but not its own.
        let wns0: Vec<_> = rel.per_proc_wns[0]
            .iter()
            .map(|w| w.interval.proc)
            .collect();
        assert_eq!(wns0, vec![1, 2]);
        assert_eq!(b.current_episode(), 1);
    }

    #[test]
    fn duplicate_arrival_is_idempotent() {
        let mut b = BarrierManager::new(2);
        assert_eq!(
            b.arrive(arrival(0, 0, vec![1, 0], vec![])),
            ArriveOutcome::Pending
        );
        assert_eq!(
            b.arrive(arrival(0, 0, vec![9, 9], vec![])),
            ArriveOutcome::Pending
        );
        let out = b.arrive(arrival(1, 0, vec![0, 1], vec![]));
        let ArriveOutcome::Complete(rel) = out else {
            panic!()
        };
        // First arrival wins: vt from the duplicate was ignored.
        assert_eq!(rel.vt.as_slice(), &[1, 1]);
    }

    #[test]
    fn rearrival_for_last_episode_resends_release() {
        let mut b = BarrierManager::new(2);
        b.arrive(arrival(0, 0, vec![1, 0], vec![wn(0, 1, &[4])]));
        let ArriveOutcome::Complete(_) = b.arrive(arrival(1, 0, vec![0, 1], vec![])) else {
            panic!()
        };
        // Node 1 crashed before receiving the release and re-arrives.
        let out = b.arrive(arrival(1, 0, vec![0, 1], vec![]));
        let ArriveOutcome::Resend { proc, release } = out else {
            panic!("expected resend")
        };
        assert_eq!(proc, 1);
        assert_eq!(release.episode, 0);
        assert_eq!(release.vt.as_slice(), &[1, 1]);
        assert_eq!(release.per_proc_wns[1].len(), 1);
        // The current episode is still open for new arrivals.
        assert_eq!(
            b.arrive(arrival(0, 1, vec![2, 1], vec![])),
            ArriveOutcome::Pending
        );
    }

    #[test]
    #[should_panic(expected = "future")]
    fn arrival_from_the_future_panics() {
        let mut b = BarrierManager::new(2);
        b.arrive(arrival(0, 5, vec![0, 0], vec![]));
    }
}
