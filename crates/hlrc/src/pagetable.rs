//! Per-node page state.
//!
//! Each node sees every shared page as either *homed here* (it holds the
//! authoritative copy and its version vector `p.v`) or *remote* (it may hold
//! a cached copy, which write notices invalidate).
//!
//! Writes are detected at the API boundary (see DESIGN.md: this substitutes
//! for the paper's mprotect/SIGSEGV machinery): the first write to a page in
//! an interval creates a *twin*; at interval end, [`PageTable::end_interval`]
//! turns twins into word-granularity diffs exactly as HLRC does.
//!
//! Home-page state itself lives in the sharded [`HomeStore`], shared with
//! the service thread's lock-free-of-the-big-lock fast path; this table
//! keeps the remote-page cache (application-thread state under the node's
//! big lock) plus a slot marker recording where each page is homed.

use std::sync::Arc;

use dsm_page::{
    Diff, DiffScratch, Interval, Page, PageId, PagePool, PoolStats, ProcId, VectorClock,
};

use crate::homestore::HomeStore;

/// Validity of a cached remote page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// No usable local copy; the next access must fetch from the home.
    Invalid,
    /// The cached copy satisfies every invalidation seen so far.
    Valid,
}

/// State for a page homed elsewhere.
#[derive(Debug)]
pub struct PageMeta {
    /// The page's home node.
    pub home: ProcId,
    /// Validity of `copy`.
    pub state: PageState,
    /// Cached copy (meaningful when `state == Valid`).
    pub copy: Option<Page>,
    /// Minimal version the next fetch must include (join of invalidations).
    pub needed: VectorClock,
}

#[derive(Debug)]
enum Entry {
    /// Homed here; the data lives in the [`HomeStore`].
    Home,
    Remote(PageMeta),
}

#[derive(Debug)]
struct Slot {
    entry: Entry,
    /// Pre-write copy for the current interval; `Some` iff this node wrote
    /// the (remote) page in the current interval. Home twins live in the
    /// home store, under the same shard lock as the copy they snapshot.
    twin: Option<Page>,
}

/// What an access needs before it can proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The local copy is usable.
    Ready,
    /// Fetch the page from `home` with at least version `needed` (for homed
    /// pages this means: wait until in-flight diffs arrive).
    NeedFetch {
        /// The page's home node.
        home: ProcId,
        /// Minimal version the fetched copy must include.
        needed: VectorClock,
    },
}

/// The full per-node page table.
#[derive(Debug)]
pub struct PageTable {
    me: ProcId,
    page_size: usize,
    slots: Vec<Slot>,
    /// Sharded authoritative copies of pages homed here, shared with the
    /// service thread.
    home: Arc<HomeStore>,
    /// Free list recycling twin / copy-on-write buffers across intervals
    /// (remote pages; each home-store shard pools its own).
    pool: PagePool,
    /// Reused diff-creation scratch (one per node, per the zero-copy design).
    scratch: DiffScratch,
}

impl PageTable {
    /// An empty table for node `me` of an `n`-node cluster.
    pub fn new(me: ProcId, n: usize, page_size: usize) -> Self {
        PageTable {
            me,
            page_size,
            slots: Vec::new(),
            home: Arc::new(HomeStore::new(n, page_size)),
            pool: PagePool::new(page_size),
            scratch: DiffScratch::new(),
        }
    }

    /// Cumulative buffer-pool counters (exported through run reports),
    /// merged over the remote-page pool and the home-store shard pools.
    pub fn pool_stats(&self) -> PoolStats {
        let mut stats = self.pool.stats();
        stats.merge(&self.home.pool_stats());
        stats
    }

    /// This node's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages in the shared space.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no pages exist yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shared home store, for the service thread's fast path.
    pub fn home_store(&self) -> Arc<HomeStore> {
        Arc::clone(&self.home)
    }

    /// Append the next shared page, homed at `home`. Every node must call
    /// this in the same order with the same arguments (allocation is a
    /// deterministic SPMD operation). Returns the new page id.
    pub fn add_page(&mut self, home: ProcId) -> PageId {
        let id = PageId(self.slots.len() as u32);
        let entry = if home == self.me {
            self.home.add(id);
            Entry::Home
        } else {
            Entry::Remote(PageMeta {
                home,
                state: PageState::Invalid,
                copy: None,
                needed: VectorClock::zero(self.cluster_size()),
            })
        };
        self.slots.push(Slot { entry, twin: None });
        id
    }

    fn cluster_size(&self) -> usize {
        // The home store knows `n`; avoid storing it twice.
        self.home.cluster_size()
    }

    /// The home of `page`.
    pub fn home_of(&self, page: PageId) -> ProcId {
        match &self.slots[page.index()].entry {
            Entry::Home => self.me,
            Entry::Remote(m) => m.home,
        }
    }

    /// Is `page` homed at this node?
    pub fn is_home(&self, page: PageId) -> bool {
        matches!(self.slots[page.index()].entry, Entry::Home)
    }

    /// Can `page` be accessed right now, and if not, what fetch is needed?
    pub fn ensure_access(&self, page: PageId) -> AccessOutcome {
        match &self.slots[page.index()].entry {
            Entry::Home => match self.home.access_gap(page) {
                None => AccessOutcome::Ready,
                Some(needed) => AccessOutcome::NeedFetch {
                    home: self.me,
                    needed,
                },
            },
            Entry::Remote(m) => {
                if m.state == PageState::Valid {
                    AccessOutcome::Ready
                } else {
                    AccessOutcome::NeedFetch {
                        home: m.home,
                        needed: m.needed.clone(),
                    }
                }
            }
        }
    }

    /// Copy `dst.len()` bytes at `offset` of a `Ready` page into `dst`.
    ///
    /// # Panics
    /// If the page is not accessible (callers must first get
    /// [`AccessOutcome::Ready`]).
    pub fn read_into(&self, page: PageId, offset: usize, dst: &mut [u8]) {
        match &self.slots[page.index()].entry {
            Entry::Home => self.home.read_into(page, offset, dst),
            Entry::Remote(m) => dst.copy_from_slice(
                m.copy
                    .as_ref()
                    .unwrap_or_else(|| panic!("read of invalid page {page}"))
                    .read(offset, dst.len()),
            ),
        }
    }

    /// Write `bytes` at `offset` of a `Ready` page, creating the twin on the
    /// first write of the interval.
    ///
    /// # Panics
    /// If the page is not accessible.
    pub fn write(&mut self, page: PageId, offset: usize, bytes: &[u8]) {
        let Self { slots, pool, .. } = self;
        let slot = &mut slots[page.index()];
        match &mut slot.entry {
            Entry::Home => {
                self.home.write(page, offset, bytes);
            }
            Entry::Remote(m) => {
                let copy = m
                    .copy
                    .as_mut()
                    .unwrap_or_else(|| panic!("write to invalid page {page}"));
                if slot.twin.is_none() {
                    slot.twin = Some(copy.twin());
                }
                copy.write_pooled(pool, offset, bytes);
            }
        }
    }

    /// Install a fetched copy of a remote page, adopting the shared buffer
    /// without copying. Any replaced local copy is recycled into the pool.
    pub fn install_fetch(&mut self, page: PageId, bytes: Arc<[u8]>, version: &VectorClock) {
        let Self { slots, pool, .. } = self;
        let slot = &mut slots[page.index()];
        match &mut slot.entry {
            Entry::Home => panic!("install_fetch on homed page {page}"),
            Entry::Remote(m) => {
                debug_assert!(
                    version.covers(&m.needed),
                    "fetched copy older than required version"
                );
                if let Some(old) = m.copy.take() {
                    pool.recycle(old);
                }
                m.copy = Some(Page::from_shared(bytes));
                m.state = PageState::Valid;
            }
        }
    }

    /// Apply a write notice: invalidate the cached copy (remote) or record
    /// the pending version (home). Must not be called while the node has an
    /// unflushed twin for the page (sync ops end the interval first).
    pub fn invalidate(&mut self, page: PageId, writer: ProcId, seq: u32) {
        let Self {
            me, slots, pool, ..
        } = self;
        let slot = &mut slots[page.index()];
        assert!(
            slot.twin.is_none(),
            "invalidation with unflushed twin for {page}"
        );
        match &mut slot.entry {
            Entry::Home => self.home.bump_needed(page, writer, seq),
            Entry::Remote(m) => {
                if writer != *me {
                    m.state = PageState::Invalid;
                    if let Some(old) = m.copy.take() {
                        pool.recycle(old);
                    }
                }
                if m.needed.get(writer) < seq {
                    m.needed.set(writer, seq);
                }
            }
        }
    }

    /// Pages written (twinned) in the current interval, in page order.
    pub fn written_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.twin.is_some())
            .map(|(i, _)| PageId(i as u32))
            .collect();
        pages.extend(self.home.written_pages());
        pages.sort_unstable_by_key(|p| p.0);
        pages
    }

    /// End the current interval: turn every twin into a diff, drop the
    /// twins, and (for homed pages) advance `p.v[me]` to the interval.
    ///
    /// Returns the diffs in page order; the caller sends those for remote
    /// pages to their homes and (in the fault-tolerant protocol) appends all
    /// of them to the diff logs.
    pub fn end_interval(&mut self, interval: Interval) -> Vec<Diff> {
        debug_assert_eq!(interval.proc, self.me);
        let Self {
            slots,
            pool,
            scratch,
            ..
        } = self;
        let mut diffs = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            let Some(twin) = slot.twin.take() else {
                continue;
            };
            let page = PageId(i as u32);
            let Entry::Remote(m) = &slot.entry else {
                unreachable!("home twins live in the home store");
            };
            let current = m.copy.as_ref().expect("twinned page must be valid");
            if let Some(d) = Diff::create_with(scratch, page, interval, &twin, current) {
                diffs.push(d);
            }
            // The twin's buffer is dead now — hand it back for the next
            // interval's copy-on-write (rejected harmlessly if still shared,
            // e.g. by an in-flight page reply).
            pool.recycle(twin);
        }
        diffs.extend(self.home.end_interval(interval, scratch));
        diffs.sort_unstable_by_key(|d| d.page.0);
        diffs
    }

    /// Apply a diff at the home. Idempotent: diffs for intervals already
    /// covered by `p.v[writer]` are skipped (this makes recovery-time
    /// retransmissions safe). Returns whether the diff was applied.
    ///
    /// # Panics
    /// If this node is not the page's home.
    pub fn home_apply_diff(&mut self, diff: &Diff) -> bool {
        use crate::homestore::ApplyOutcome;
        match self.home.apply_diff(diff, || true) {
            ApplyOutcome::Applied { fresh, .. } => fresh,
            ApplyOutcome::NotHome => panic!("diff for page {} sent to non-home", diff.page),
            ApplyOutcome::Stale => unreachable!("liveness check is constant"),
        }
    }

    /// Does the home copy of `page` satisfy `needed`?
    pub fn home_satisfies(&self, page: PageId, needed: &VectorClock) -> bool {
        assert!(self.is_home(page), "home_satisfies on remote page {page}");
        self.home.satisfies(page, needed)
    }

    /// Version vector of a page homed here.
    pub fn home_version(&self, page: PageId) -> VectorClock {
        assert!(self.is_home(page), "home_version on remote page {page}");
        self.home.version_of(page)
    }

    /// Zero-copy `(version, bytes)` view of a page homed here.
    pub fn home_snapshot(&self, page: PageId) -> (VectorClock, Arc<[u8]>) {
        assert!(self.is_home(page), "home_snapshot on remote page {page}");
        self.home.snapshot(page)
    }

    /// Has `proc` ever sent a diff for `page` (homed here)?
    pub fn home_writers_contain(&self, page: PageId, proc_: ProcId) -> bool {
        self.home.writers_contain(page, proc_)
    }

    /// Ids of all pages homed at this node.
    pub fn homed_pages(&self) -> Vec<PageId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.entry, Entry::Home))
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }

    /// Remote-page metadata (for checkpointing `needed` and tests).
    pub fn remote_meta(&self, page: PageId) -> &PageMeta {
        match &self.slots[page.index()].entry {
            Entry::Remote(m) => m,
            Entry::Home => panic!("remote_meta on homed page {page}"),
        }
    }

    /// Restart support: drop every cached remote copy and twin (the crash
    /// lost them) and every parked remote fetch, keeping home copies for the
    /// caller to overwrite from the checkpoint, and set the `needed` vectors
    /// from `needed_by_page` (page, writer, seq) triples saved in the
    /// checkpoint.
    pub fn reset_for_restart(&mut self, needed_by_page: &[(PageId, ProcId, u32)]) {
        let n = self.cluster_size();
        self.home.reset_for_restart();
        for slot in &mut self.slots {
            slot.twin = None;
            if let Entry::Remote(m) = &mut slot.entry {
                m.state = PageState::Invalid;
                m.copy = None;
                m.needed = VectorClock::zero(n);
            }
        }
        for &(page, writer, seq) in needed_by_page {
            match &mut self.slots[page.index()].entry {
                Entry::Home => self.home.bump_needed(page, writer, seq),
                Entry::Remote(m) => m.needed.set(writer, seq),
            }
        }
    }

    /// Checkpoint support: the (page, writer, seq) triples of every nonzero
    /// `needed` entry.
    pub fn needed_triples(&self) -> Vec<(PageId, ProcId, u32)> {
        let mut out = self.home.needed_triples();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Entry::Remote(m) = &slot.entry {
                for (p, &seq) in m.needed.as_slice().iter().enumerate() {
                    if seq > 0 {
                        out.push((PageId(i as u32), p, seq));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Overwrite the authoritative copy and version of a homed page
    /// (restoring from a checkpoint during recovery).
    pub fn restore_home_page(&mut self, page: PageId, bytes: &[u8], version: VectorClock) {
        assert!(self.is_home(page), "restore of remote page {page}");
        self.home.restore(page, bytes, version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(p: ProcId, s: u32) -> Interval {
        Interval { proc: p, seq: s }
    }

    fn table() -> PageTable {
        // Node 0 of 2; page 0 homed here, page 1 homed at node 1.
        let mut t = PageTable::new(0, 2, 64);
        t.add_page(0);
        t.add_page(1);
        t
    }

    fn read_vec(t: &PageTable, page: PageId, offset: usize, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        t.read_into(page, offset, &mut buf);
        buf
    }

    #[test]
    fn home_pages_are_immediately_accessible() {
        let t = table();
        assert!(t.is_home(PageId(0)));
        assert_eq!(t.ensure_access(PageId(0)), AccessOutcome::Ready);
        assert_eq!(read_vec(&t, PageId(0), 0, 4), &[0, 0, 0, 0]);
    }

    #[test]
    fn remote_pages_start_invalid_and_need_fetch() {
        let t = table();
        assert!(!t.is_home(PageId(1)));
        match t.ensure_access(PageId(1)) {
            AccessOutcome::NeedFetch { home, needed } => {
                assert_eq!(home, 1);
                assert_eq!(needed, VectorClock::zero(2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn fetch_install_then_write_creates_twin_and_diff() {
        let mut t = table();
        t.install_fetch(PageId(1), vec![0u8; 64].into(), &VectorClock::zero(2));
        assert_eq!(t.ensure_access(PageId(1)), AccessOutcome::Ready);
        t.write(PageId(1), 8, &[42]);
        assert_eq!(t.written_pages(), vec![PageId(1)]);
        let diffs = t.end_interval(iv(0, 1));
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].page, PageId(1));
        assert_eq!(diffs[0].interval, iv(0, 1));
        assert!(t.written_pages().is_empty());
    }

    #[test]
    fn home_writes_advance_own_version_at_interval_end() {
        let mut t = table();
        t.write(PageId(0), 0, &[1, 2, 3]);
        assert_eq!(t.written_pages(), vec![PageId(0)]);
        let diffs = t.end_interval(iv(0, 3));
        // The home's own diff is returned (for FT logging) but the copy is
        // already up to date and p.v[0] advanced.
        assert_eq!(diffs.len(), 1);
        assert_eq!(t.home_version(PageId(0)).get(0), 3);
    }

    #[test]
    fn mixed_home_and_remote_writes_diff_in_page_order() {
        let mut t = table();
        t.install_fetch(PageId(1), vec![0u8; 64].into(), &VectorClock::zero(2));
        t.write(PageId(1), 0, &[9]);
        t.write(PageId(0), 0, &[8]);
        assert_eq!(t.written_pages(), vec![PageId(0), PageId(1)]);
        let diffs = t.end_interval(iv(0, 1));
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].page, PageId(0));
        assert_eq!(diffs[1].page, PageId(1));
    }

    #[test]
    fn diff_application_is_idempotent_and_ordered() {
        let mut t = table();
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[7; 8]);
        let d = Diff::create(PageId(0), iv(1, 2), &twin, &cur).unwrap();
        assert!(t.home_apply_diff(&d));
        assert!(!t.home_apply_diff(&d)); // duplicate skipped
        assert_eq!(t.home_version(PageId(0)).get(1), 2);
        assert!(t.home_writers_contain(PageId(0), 1));
        assert!(!t.home_writers_contain(PageId(0), 0));
        assert_eq!(read_vec(&t, PageId(0), 0, 8), &[7; 8]);
    }

    #[test]
    fn invalidation_forces_refetch_with_higher_version() {
        let mut t = table();
        t.install_fetch(PageId(1), vec![0u8; 64].into(), &VectorClock::zero(2));
        t.invalidate(PageId(1), 1, 4);
        match t.ensure_access(PageId(1)) {
            AccessOutcome::NeedFetch { needed, .. } => assert_eq!(needed.get(1), 4),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn own_write_notice_does_not_invalidate_own_copy() {
        let mut t = table();
        t.install_fetch(PageId(1), vec![0u8; 64].into(), &VectorClock::zero(2));
        // A notice about our own interval comes back via a barrier: the
        // local copy already contains those writes.
        t.invalidate(PageId(1), 0, 1);
        assert_eq!(t.ensure_access(PageId(1)), AccessOutcome::Ready);
    }

    #[test]
    fn home_access_waits_for_pending_diffs() {
        let mut t = table();
        t.invalidate(PageId(0), 1, 2); // notice arrived before the diff
        match t.ensure_access(PageId(0)) {
            AccessOutcome::NeedFetch { home, needed } => {
                assert_eq!(home, 0);
                assert_eq!(needed.get(1), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Diff arrives: accessible again.
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[1; 8]);
        let d = Diff::create(PageId(0), iv(1, 2), &twin, &cur).unwrap();
        t.home_apply_diff(&d);
        assert_eq!(t.ensure_access(PageId(0)), AccessOutcome::Ready);
    }

    #[test]
    fn restart_reset_drops_copies_and_restores_needed() {
        let mut t = table();
        t.install_fetch(PageId(1), vec![1u8; 64].into(), &VectorClock::zero(2));
        t.reset_for_restart(&[(PageId(1), 1, 7)]);
        match t.ensure_access(PageId(1)) {
            AccessOutcome::NeedFetch { needed, .. } => assert_eq!(needed.get(1), 7),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn needed_triples_roundtrip_through_reset() {
        let mut t = table();
        t.invalidate(PageId(1), 1, 3);
        t.invalidate(PageId(0), 1, 5);
        let mut triples = t.needed_triples();
        triples.sort();
        let mut t2 = table();
        t2.reset_for_restart(&triples);
        assert_eq!(t2.needed_triples().len(), 2);
        assert_eq!(t2.remote_meta(PageId(1)).needed.get(1), 3);
        match t2.ensure_access(PageId(0)) {
            AccessOutcome::NeedFetch { needed, .. } => assert_eq!(needed.get(1), 5),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
