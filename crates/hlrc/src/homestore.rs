//! Sharded store of home-page state.
//!
//! The authoritative copies a node homes — page bytes, version vector
//! `p.v`, pending `needed` version, writer set, and the current interval's
//! twin — live here behind per-shard locks instead of the node's big state
//! lock. That lets the service thread serve `PageReq`/`PageBatchReq` traffic
//! and apply incoming diffs concurrently with application compute, which
//! only touches the shards it reads or writes.
//!
//! Lock hierarchy (see DESIGN.md): shard locks are *leaf* locks. A thread
//! holding a shard lock must not acquire the node's big lock, the sync-state
//! lock, or another shard lock (the few whole-store walks lock shards one at
//! a time in ascending order). Both the application thread (via
//! [`crate::PageTable`]) and the service thread (directly, through a shared
//! `Arc<HomeStore>`) take the same per-shard locks, so per-page operations
//! interleave exactly as they did under the big lock — just page-wise
//! instead of node-wise.

use std::collections::HashMap;
use std::sync::Arc;

use dsm_page::{
    Diff, DiffScratch, Interval, Page, PageId, PagePool, PoolStats, ProcId, VectorClock,
};
use parking_lot::Mutex;

/// Number of shards. Pages map to shards by `page % NUM_SHARDS`, so
/// consecutive pages — the common access pattern — spread across shards.
pub const NUM_SHARDS: usize = 8;

/// State for one page homed at this node.
#[derive(Debug)]
struct HomeEntry {
    /// The authoritative copy.
    copy: Page,
    /// Pre-write snapshot for the current interval; `Some` iff the home
    /// node itself wrote the page in the current interval.
    twin: Option<Page>,
    /// `p.v`: the most recent interval of each writer applied to the copy.
    version: VectorClock,
    /// Minimal version local accesses must observe (bumped by write
    /// notices; accesses wait until `version` covers it, since diffs travel
    /// separately from notices).
    needed: VectorClock,
    /// Processes that have ever sent diffs for this page (targets for the
    /// lazy `p0.v` piggyback of the CGC/LLT scheme).
    writers: Vec<ProcId>,
}

/// A remote fetch parked at the home until the diffs it needs arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitingFetch {
    /// The requesting node.
    pub from: ProcId,
    /// The page requested.
    pub page: PageId,
    /// Minimal version the served copy must include.
    pub needed: VectorClock,
    /// The requester's id for matching the reply to its request.
    pub req_id: u64,
}

/// A parked fetch whose page now satisfies its needed version.
#[derive(Debug)]
pub struct ReadyFetch {
    /// The requesting node.
    pub from: ProcId,
    /// The page requested.
    pub page: PageId,
    /// The requester's id for matching the reply to its request.
    pub req_id: u64,
    /// Version of the served copy.
    pub version: VectorClock,
    /// The served bytes (zero-copy share of the home copy).
    pub bytes: Arc<[u8]>,
}

/// Outcome of serving one fetch against the store.
#[derive(Debug)]
pub enum FetchOutcome {
    /// The copy satisfies the request; reply with these bytes.
    Ready(VectorClock, Arc<[u8]>),
    /// In-flight diffs are still missing; the fetch was parked and will be
    /// surfaced by [`HomeStore::drain_ready`] once they arrive.
    Parked,
    /// The page is not homed here (not allocated yet, or a routing bug —
    /// the caller decides which).
    NotHome,
    /// The liveness check failed under the shard lock (node crashing or
    /// recovering); nothing was done.
    Stale,
}

/// Outcome of applying one diff against the store.
#[derive(Debug)]
pub enum ApplyOutcome {
    /// Diff accepted; any fetches it unparked are returned for the caller
    /// to answer. `fresh` is false when the version gate idempotently
    /// skipped an already-covered interval (a retransmitted or duplicated
    /// batch) — observability must not report those as applies.
    Applied {
        /// Did the home version actually advance?
        fresh: bool,
        /// Fetches the diff unparked.
        ready: Vec<ReadyFetch>,
    },
    /// The page is not homed here.
    NotHome,
    /// The liveness check failed under the shard lock; nothing was done.
    Stale,
}

#[derive(Debug)]
struct Shard {
    entries: HashMap<u32, HomeEntry>,
    /// Fetches parked until in-flight diffs arrive.
    waiting: Vec<WaitingFetch>,
    /// Buffer pool for this shard's copy-on-write and diff application.
    pool: PagePool,
}

/// The sharded home-page store. Shared as `Arc<HomeStore>` between the
/// page table (application thread) and the service thread's fast path.
#[derive(Debug)]
pub struct HomeStore {
    shards: Vec<Mutex<Shard>>,
    n: usize,
    page_size: usize,
}

fn shard_of(page: PageId) -> usize {
    page.0 as usize % NUM_SHARDS
}

impl HomeStore {
    /// An empty store for one node of an `n`-node cluster.
    pub fn new(n: usize, page_size: usize) -> Self {
        HomeStore {
            shards: (0..NUM_SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        waiting: Vec::new(),
                        pool: PagePool::new(page_size),
                    })
                })
                .collect(),
            n,
            page_size,
        }
    }

    /// Register a new zeroed page homed at this node.
    pub fn add(&self, page: PageId) {
        let mut shard = self.shards[shard_of(page)].lock();
        let prev = shard.entries.insert(
            page.0,
            HomeEntry {
                copy: Page::zeroed(self.page_size),
                twin: None,
                version: VectorClock::zero(self.n),
                needed: VectorClock::zero(self.n),
                writers: Vec::new(),
            },
        );
        assert!(prev.is_none(), "page {page} homed twice");
    }

    /// Cluster size the store was built for.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Is `page` homed here?
    pub fn contains(&self, page: PageId) -> bool {
        self.shards[shard_of(page)]
            .lock()
            .entries
            .contains_key(&page.0)
    }

    fn with<R>(&self, page: PageId, f: impl FnOnce(&mut HomeEntry, &mut PagePool) -> R) -> R {
        let shard = &mut *self.shards[shard_of(page)].lock();
        let e = shard
            .entries
            .get_mut(&page.0)
            .unwrap_or_else(|| panic!("page {page} not homed here"));
        f(e, &mut shard.pool)
    }

    /// `None` when the copy satisfies every notice seen so far; otherwise
    /// the needed version the access must wait for.
    pub fn access_gap(&self, page: PageId) -> Option<VectorClock> {
        self.with(page, |e, _| {
            if e.version.covers(&e.needed) {
                None
            } else {
                Some(e.needed.clone())
            }
        })
    }

    /// Copy `dst.len()` bytes at `offset` out of the home copy.
    pub fn read_into(&self, page: PageId, offset: usize, dst: &mut [u8]) {
        self.with(page, |e, _| {
            dst.copy_from_slice(e.copy.read(offset, dst.len()));
        });
    }

    /// Write to the home copy, snapshotting the twin on the interval's
    /// first write. Returns `true` when this write created the twin.
    pub fn write(&self, page: PageId, offset: usize, bytes: &[u8]) -> bool {
        self.with(page, |e, pool| {
            let first = e.twin.is_none();
            if first {
                e.twin = Some(e.copy.twin());
            }
            e.copy.write_pooled(pool, offset, bytes);
            first
        })
    }

    /// Record a write notice: local accesses must now wait until `version`
    /// covers `(writer, seq)`.
    pub fn bump_needed(&self, page: PageId, writer: ProcId, seq: u32) {
        self.with(page, |e, _| {
            assert!(
                e.twin.is_none(),
                "invalidation with unflushed twin for {page}"
            );
            if e.needed.get(writer) < seq {
                e.needed.set(writer, seq);
            }
        });
    }

    /// End-of-interval pass over this node's own home writes: turn each
    /// twin into a diff against the current copy and advance `p.v[me]`.
    /// Diffs come back sorted by page id (shards are walked in order and
    /// merged), matching the deterministic order the logs expect.
    pub fn end_interval(&self, interval: Interval, scratch: &mut DiffScratch) -> Vec<Diff> {
        let mut diffs = Vec::new();
        for shard in &self.shards {
            let shard = &mut *shard.lock();
            let mut pages: Vec<u32> = shard
                .entries
                .iter()
                .filter(|(_, e)| e.twin.is_some())
                .map(|(&p, _)| p)
                .collect();
            pages.sort_unstable();
            for p in pages {
                let e = shard.entries.get_mut(&p).unwrap();
                let twin = e.twin.take().unwrap();
                if let Some(d) = Diff::create_with(scratch, PageId(p), interval, &twin, &e.copy) {
                    diffs.push(d);
                }
                shard.pool.recycle(twin);
                // The home's own writes are applied in place; record them
                // in the version vector like any other writer's diff.
                e.version.set(interval.proc, interval.seq);
            }
        }
        diffs.sort_unstable_by_key(|d| d.page.0);
        diffs
    }

    /// Pages with an unflushed twin (written this interval).
    pub fn written_pages(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(
                shard
                    .entries
                    .iter()
                    .filter(|(_, e)| e.twin.is_some())
                    .map(|(&p, _)| PageId(p)),
            );
        }
        out.sort_unstable_by_key(|p| p.0);
        out
    }

    /// Serve one fetch. `live` is re-checked *under the shard lock* so a
    /// concurrent crash/recovery transition can fence the fast path out
    /// (see the module docs); pass `|| true` when already serialized with
    /// mode changes by the big lock.
    pub fn serve_fetch(&self, req: WaitingFetch, live: impl FnOnce() -> bool) -> FetchOutcome {
        self.serve_fetch_timed(req, live).0
    }

    /// As [`HomeStore::serve_fetch`], also reporting how long the caller
    /// waited for the shard lock (the fast path's contention metric).
    pub fn serve_fetch_timed(
        &self,
        req: WaitingFetch,
        live: impl FnOnce() -> bool,
    ) -> (FetchOutcome, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let shard = &mut *self.shards[shard_of(req.page)].lock();
        let waited = t0.elapsed();
        if !live() {
            return (FetchOutcome::Stale, waited);
        }
        let Some(e) = shard.entries.get_mut(&req.page.0) else {
            return (FetchOutcome::NotHome, waited);
        };
        let outcome = if e.version.covers(&req.needed) {
            FetchOutcome::Ready(e.version.clone(), e.copy.share())
        } else {
            shard.waiting.push(req);
            FetchOutcome::Parked
        };
        (outcome, waited)
    }

    /// Apply one diff. Idempotent: diffs for intervals already covered by
    /// `p.v[writer]` are skipped (recovery-time retransmissions are safe).
    /// `live` is re-checked under the shard lock, as for
    /// [`HomeStore::serve_fetch`]. On success, any fetches the diff
    /// unparked are returned for the caller to answer.
    pub fn apply_diff(&self, diff: &Diff, live: impl FnOnce() -> bool) -> ApplyOutcome {
        self.apply_diff_timed(diff, live).0
    }

    /// As [`HomeStore::apply_diff`], also reporting the shard-lock wait.
    pub fn apply_diff_timed(
        &self,
        diff: &Diff,
        live: impl FnOnce() -> bool,
    ) -> (ApplyOutcome, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let shard = &mut *self.shards[shard_of(diff.page)].lock();
        let waited = t0.elapsed();
        (self.apply_diff_locked(shard, diff, live), waited)
    }

    fn apply_diff_locked(
        &self,
        shard: &mut Shard,
        diff: &Diff,
        live: impl FnOnce() -> bool,
    ) -> ApplyOutcome {
        if !live() {
            return ApplyOutcome::Stale;
        }
        let Some(e) = shard.entries.get_mut(&diff.page.0) else {
            return ApplyOutcome::NotHome;
        };
        let writer = diff.interval.proc;
        let fresh = e.version.get(writer) < diff.interval.seq;
        if fresh {
            diff.apply_pooled(&mut e.copy, &mut shard.pool);
            e.version.set(writer, diff.interval.seq);
            if !e.writers.contains(&writer) {
                e.writers.push(writer);
            }
        }
        // Unpark every waiter this shard can now serve (the diff may cover
        // other waiters' pages only in this shard — cheap linear scan).
        let mut ready = Vec::new();
        let mut i = 0;
        while i < shard.waiting.len() {
            let page = shard.waiting[i].page;
            let e = &shard.entries[&page.0];
            if e.version.covers(&shard.waiting[i].needed) {
                let w = shard.waiting.swap_remove(i);
                ready.push(ReadyFetch {
                    from: w.from,
                    page: w.page,
                    req_id: w.req_id,
                    version: e.version.clone(),
                    bytes: e.copy.share(),
                });
            } else {
                i += 1;
            }
        }
        ApplyOutcome::Applied { fresh, ready }
    }

    /// Drain every parked fetch that has become servable (used after
    /// recovery replay rebuilds home pages in bulk).
    pub fn drain_ready(&self) -> Vec<ReadyFetch> {
        let mut ready = Vec::new();
        for shard in &self.shards {
            let shard = &mut *shard.lock();
            let mut i = 0;
            while i < shard.waiting.len() {
                let page = shard.waiting[i].page;
                let ok = shard
                    .entries
                    .get(&page.0)
                    .is_some_and(|e| e.version.covers(&shard.waiting[i].needed));
                if ok {
                    let w = shard.waiting.swap_remove(i);
                    let e = &shard.entries[&page.0];
                    ready.push(ReadyFetch {
                        from: w.from,
                        page: w.page,
                        req_id: w.req_id,
                        version: e.version.clone(),
                        bytes: e.copy.share(),
                    });
                } else {
                    i += 1;
                }
            }
        }
        ready
    }

    /// Drop every parked fetch (crash: requesters retransmit on `NodeUp`).
    pub fn clear_waiting(&self) {
        for shard in &self.shards {
            shard.lock().waiting.clear();
        }
    }

    /// Does the home copy of `page` satisfy `needed`?
    pub fn satisfies(&self, page: PageId, needed: &VectorClock) -> bool {
        self.with(page, |e, _| e.version.covers(needed))
    }

    /// Version vector of the home copy.
    pub fn version_of(&self, page: PageId) -> VectorClock {
        self.with(page, |e, _| e.version.clone())
    }

    /// Zero-copy view of the home copy: `(version, bytes)`.
    pub fn snapshot(&self, page: PageId) -> (VectorClock, Arc<[u8]>) {
        self.with(page, |e, _| (e.version.clone(), e.copy.share()))
    }

    /// Has `proc` ever sent a diff for `page`?
    pub fn writers_contain(&self, page: PageId, proc_: ProcId) -> bool {
        self.with(page, |e, _| e.writers.contains(&proc_))
    }

    /// Overwrite the authoritative copy and version of a homed page
    /// (restoring from a checkpoint during recovery).
    pub fn restore(&self, page: PageId, bytes: &[u8], version: VectorClock) {
        self.with(page, |e, _| {
            e.copy = Page::from_bytes(bytes);
            e.version = version;
            e.twin = None;
        });
    }

    /// Restart support: drop twins and pending `needed` state, drop parked
    /// fetches. Copies and versions stay for the caller to overwrite from
    /// the checkpoint via [`HomeStore::restore`].
    pub fn reset_for_restart(&self) {
        for shard in &self.shards {
            let shard = &mut *shard.lock();
            shard.waiting.clear();
            for e in shard.entries.values_mut() {
                e.twin = None;
                e.needed = VectorClock::zero(self.n);
            }
        }
    }

    /// Checkpoint support: `(page, writer, seq)` triples of every nonzero
    /// `needed` entry, sorted by page.
    pub fn needed_triples(&self) -> Vec<(PageId, ProcId, u32)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&p, e) in shard.entries.iter() {
                for (w, &seq) in e.needed.as_slice().iter().enumerate() {
                    if seq > 0 {
                        out.push((PageId(p), w, seq));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Cumulative buffer-pool counters over all shards.
    pub fn pool_stats(&self) -> PoolStats {
        let mut stats = PoolStats::default();
        for shard in &self.shards {
            stats.merge(&shard.lock().pool.stats());
        }
        stats
    }

    /// Fence: acquire and release every shard lock in order. After this
    /// returns, every fast-path operation that started before the caller's
    /// preceding state change (e.g. flipping the mode flag) has finished.
    pub fn quiesce(&self) {
        for shard in &self.shards {
            drop(shard.lock());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(p: ProcId, s: u32) -> Interval {
        Interval { proc: p, seq: s }
    }

    fn store() -> HomeStore {
        let s = HomeStore::new(2, 64);
        s.add(PageId(0));
        s.add(PageId(8)); // same shard as page 0 (8 % NUM_SHARDS == 0)
        s.add(PageId(3));
        s
    }

    #[test]
    fn serve_parks_until_diff_arrives_then_unparks() {
        let s = store();
        let needed = {
            let mut v = VectorClock::zero(2);
            v.set(1, 2);
            v
        };
        let req = WaitingFetch {
            from: 1,
            page: PageId(0),
            needed: needed.clone(),
            req_id: 7,
        };
        assert!(matches!(s.serve_fetch(req, || true), FetchOutcome::Parked));

        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[9; 8]);
        let d = Diff::create(PageId(0), iv(1, 2), &twin, &cur).unwrap();
        match s.apply_diff(&d, || true) {
            ApplyOutcome::Applied { fresh, ready } => {
                assert!(fresh);
                assert_eq!(ready.len(), 1);
                assert_eq!(ready[0].from, 1);
                assert_eq!(ready[0].req_id, 7);
                assert_eq!(ready[0].page, PageId(0));
                assert!(ready[0].version.covers(&needed));
                assert_eq!(&ready[0].bytes[0..8], &[9; 8]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stale_liveness_check_fences_out_under_the_shard_lock() {
        let s = store();
        let req = WaitingFetch {
            from: 1,
            page: PageId(0),
            needed: VectorClock::zero(2),
            req_id: 1,
        };
        assert!(matches!(s.serve_fetch(req, || false), FetchOutcome::Stale));
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[1]);
        let d = Diff::create(PageId(0), iv(1, 1), &twin, &cur).unwrap();
        assert!(matches!(s.apply_diff(&d, || false), ApplyOutcome::Stale));
        // Nothing was applied.
        assert_eq!(s.version_of(PageId(0)).get(1), 0);
    }

    #[test]
    fn unknown_pages_report_not_home() {
        let s = store();
        let req = WaitingFetch {
            from: 1,
            page: PageId(5),
            needed: VectorClock::zero(2),
            req_id: 1,
        };
        assert!(matches!(s.serve_fetch(req, || true), FetchOutcome::NotHome));
        assert!(!s.contains(PageId(5)));
        assert!(s.contains(PageId(3)));
    }

    #[test]
    fn twin_write_end_interval_produces_sorted_diffs() {
        let s = store();
        assert!(s.write(PageId(8), 0, &[1, 2]));
        assert!(!s.write(PageId(8), 8, &[3])); // twin already exists
        assert!(s.write(PageId(0), 0, &[4]));
        assert_eq!(s.written_pages(), vec![PageId(0), PageId(8)]);
        let mut scratch = DiffScratch::new();
        let diffs = s.end_interval(iv(0, 1), &mut scratch);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].page, PageId(0));
        assert_eq!(diffs[1].page, PageId(8));
        assert_eq!(s.version_of(PageId(8)).get(0), 1);
        assert!(s.written_pages().is_empty());
    }

    #[test]
    fn needed_gates_access_until_version_covers() {
        let s = store();
        assert!(s.access_gap(PageId(0)).is_none());
        s.bump_needed(PageId(0), 1, 3);
        let gap = s.access_gap(PageId(0)).expect("gated");
        assert_eq!(gap.get(1), 3);
        assert!(!s.satisfies(PageId(0), &gap));
        let twin = Page::zeroed(64);
        let mut cur = twin.clone();
        cur.write(0, &[5]);
        let d = Diff::create(PageId(0), iv(1, 3), &twin, &cur).unwrap();
        assert!(matches!(
            s.apply_diff(&d, || true),
            ApplyOutcome::Applied { fresh: true, .. }
        ));
        assert!(s.access_gap(PageId(0)).is_none());
        assert!(s.writers_contain(PageId(0), 1));
        assert!(!s.writers_contain(PageId(0), 0));
    }

    #[test]
    fn restore_and_reset_clear_transients() {
        let s = store();
        s.write(PageId(0), 0, &[1]);
        s.bump_needed(PageId(3), 1, 2);
        s.reset_for_restart();
        assert!(s.written_pages().is_empty());
        assert!(s.needed_triples().is_empty());
        let mut v = VectorClock::zero(2);
        v.set(1, 9);
        s.restore(PageId(0), &[7u8; 64], v.clone());
        let (version, bytes) = s.snapshot(PageId(0));
        assert_eq!(version, v);
        assert_eq!(&bytes[..], &[7u8; 64]);
    }
}
