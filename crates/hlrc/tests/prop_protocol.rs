//! Property tests for the protocol state machines.

use dsm_page::{Interval, PageId, VectorClock};
use hlrc::barrier::{Arrival, ArriveOutcome, BarrierManager};
use hlrc::locks::{AcqReq, LockManagerTable};
use hlrc::{WnTable, WriteNotice};
use proptest::prelude::*;

proptest! {
    /// The lock manager builds one chain: every request gets exactly one
    /// forward, the granter of request k+1 is the requester of request k,
    /// generations are strictly increasing, and pred_acq always names the
    /// granter's own previous acquisition.
    #[test]
    fn lock_chain_is_a_chain(reqs in proptest::collection::vec(0usize..5, 1..40)) {
        let me = 7usize;
        let mut mgr = LockManagerTable::new(me);
        let mut acq_seq = [0u64; 6];
        let mut prev_requester = me;
        let mut prev_acq = u64::MAX;
        let mut prev_gen = 0u64;
        for r in reqs {
            let seq = acq_seq[r];
            acq_seq[r] += 1;
            let a = mgr
                .on_request(3, AcqReq { requester: r, acq_seq: seq, vt: VectorClock::zero(8) })
                .expect("fresh request must produce an action");
            prop_assert_eq!(a.grant_from, prev_requester);
            prop_assert_eq!(a.pred_acq, prev_acq);
            prop_assert!(a.gen > prev_gen);
            prev_gen = a.gen;
            prev_requester = r;
            prev_acq = seq;
        }
    }

    /// Retransmissions never advance the chain: re-sending any in-flight
    /// request returns the original routing.
    #[test]
    fn lock_retransmission_is_idempotent(reqs in proptest::collection::vec(0usize..4, 1..20)) {
        let mut mgr = LockManagerTable::new(0);
        let mut acq_seq = [0u64; 4];
        let mut actions = Vec::new();
        for r in &reqs {
            let seq = acq_seq[*r];
            acq_seq[*r] += 1;
            let a = mgr
                .on_request(1, AcqReq { requester: *r, acq_seq: seq, vt: VectorClock::zero(4) })
                .unwrap();
            actions.push(a);
        }
        // Re-send the most recent request of each requester.
        for a in actions.iter().rev() {
            let retx = mgr.on_request(
                1,
                AcqReq {
                    requester: a.req.requester,
                    acq_seq: a.req.acq_seq,
                    vt: VectorClock::zero(4),
                },
            );
            if let Some(rx) = retx {
                if rx.req.acq_seq == a.req.acq_seq {
                    prop_assert_eq!(rx.grant_from, a.grant_from);
                    prop_assert_eq!(rx.gen, a.gen);
                    prop_assert_eq!(rx.pred_acq, a.pred_acq);
                }
            }
        }
    }

    /// The barrier release timestamp is exactly the join of the arrivals,
    /// and each participant receives exactly the notices its own arrival
    /// timestamp does not cover.
    #[test]
    fn barrier_release_is_join_of_arrivals(
        vts in proptest::collection::vec(proptest::collection::vec(0u32..8, 3), 3),
    ) {
        let mut mgr = BarrierManager::new(3);
        let mut expected = VectorClock::zero(3);
        let mut outcome = ArriveOutcome::Pending;
        for (p, raw) in vts.iter().enumerate() {
            let vt = VectorClock::from_vec(raw.clone());
            expected.join(&vt);
            let wns = vec![WriteNotice {
                interval: Interval { proc: p, seq: raw[p] + 1 },
                pages: vec![PageId(p as u32)],
            }];
            outcome = mgr.arrive(Arrival { proc: p, episode: 0, vt, own_wns: wns });
        }
        let ArriveOutcome::Complete(rel) = outcome else {
            return Err(TestCaseError::fail("barrier did not complete"));
        };
        prop_assert_eq!(&rel.vt, &expected);
        for (p, wns) in rel.per_proc_wns.iter().enumerate() {
            for wn in wns {
                prop_assert!(!rel.arrival_vts[p].covers_interval(wn.interval));
            }
        }
    }

    /// `missing_between` returns exactly the table entries in the half-open
    /// version interval, compared against a brute-force scan.
    #[test]
    fn wn_missing_between_matches_bruteforce(
        entries in proptest::collection::vec((0usize..4, 1u32..12, 0u32..64), 0..60),
        from in proptest::collection::vec(0u32..12, 4),
        to_delta in proptest::collection::vec(0u32..6, 4),
    ) {
        let mut table = WnTable::new();
        let mut reference = std::collections::HashMap::new();
        for (p, seq, page) in entries {
            let iv = Interval { proc: p, seq };
            table.insert_parts(iv, vec![PageId(page)]);
            reference.entry((p, seq)).or_insert(page);
        }
        let from = VectorClock::from_vec(from);
        let mut to = from.clone();
        for (p, d) in to_delta.iter().enumerate() {
            to.set(p, from.get(p) + d);
        }
        let got = table.missing_between(&from, &to);
        for wn in &got {
            let iv = wn.interval;
            prop_assert!(!from.covers_interval(iv));
            prop_assert!(to.covers_interval(iv));
            prop_assert!(reference.contains_key(&(iv.proc, iv.seq)));
        }
        // Every known entry in the gap is present.
        let expected = reference
            .keys()
            .filter(|(p, seq)| {
                let iv = Interval { proc: *p, seq: *seq };
                !from.covers_interval(iv) && to.covers_interval(iv)
            })
            .count();
        prop_assert_eq!(got.len(), expected);
    }
}
