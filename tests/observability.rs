//! Observability acceptance tests: causal cross-node flow export, per-kind
//! latency attribution, service-time coverage of every sent message kind,
//! order-insensitive metric merges, the invariant monitor catching an
//! injected protocol bug with the causal flow attached, and the
//! disabled-trace overhead bound.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

use dsm_metrics::{Snapshot, TimeSeries};
use dsm_trace::export::to_chrome_trace;
use dsm_trace::json::{self, Json};
use dsm_trace::{EventKind, Histogram, Trace};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, FailureSpec, HomeAlloc, Process, TraceConfig};

/// Fixed seed: these runs are golden artifacts, not seed sweeps.
const SEED: u64 = 0x0b5e_44ab_111e_5eed;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Small two-node exchange: page fetches, lock-flush diff batches, barrier
/// releases — every message is a cross-node hop.
fn exchange(p: &mut Process) -> u64 {
    let cells = p.alloc_vec::<u64>(8, HomeAlloc::Interleaved);
    let mut state = 0u64;
    p.run_steps(&mut state, 4, |p, state, step| {
        p.acquire(0);
        let idx = step as usize % 8;
        let v = cells.get(p, idx);
        cells.set(p, idx, v + p.me() as u64 + 1);
        p.release(0);
        *state += step;
        p.barrier();
    });
    p.barrier();
    (0..8).map(|i| cells.get(p, i)).sum()
}

/// Wider workload (from the chaos suite) that exercises every traffic kind:
/// prefetch batches over interleaved pages, lock chains, barrier flushes.
fn wide_app(p: &mut Process) -> u64 {
    let n = p.nodes();
    let data = p.alloc_vec::<u64>(96, HomeAlloc::Interleaved);
    let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(1));
    let mut state = 0u64;
    p.run_steps(&mut state, 6, |p, state, step| {
        p.acquire(5);
        let v = counter.get(p, 0);
        counter.set(p, 0, v + 1);
        p.release(5);
        let me = p.me();
        for i in 0..96 {
            if i % n == me {
                let v = data.get(p, i);
                data.set(p, i, v.wrapping_mul(31).wrapping_add(step + i as u64));
            }
        }
        *state = state.wrapping_add(step);
        p.barrier();
    });
    p.barrier();
    let mut acc = counter.get(p, 0);
    for i in 0..96 {
        acc = acc.rotate_left(9) ^ data.get(p, i);
    }
    acc.wrapping_add(state)
}

/// Golden export: a fixed-seed two-node run must produce Chrome/Perfetto
/// flow events (`ph:"s"` / `ph:"f"`) whose ids bind a send on one node lane
/// to the matching receive on a *different* lane, and the run report must
/// attribute receive latency (queue wait vs chaos delay) per message kind.
#[test]
fn fixed_seed_two_node_exchange_exports_cross_node_flows() {
    let report = run(
        ClusterConfig::fault_tolerant(2)
            .with_page_size(256)
            .with_seed(SEED)
            .with_trace(TraceConfig::enabled()),
        &[],
        exchange,
    );

    let text = to_chrome_trace(&report.trace);
    let doc = json::parse(&text).expect("chrome trace must parse");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Bind flow starts to finishes by id and compare lanes.
    let mut start_lane: HashMap<u64, u64> = HashMap::new();
    let mut finish_lane: HashMap<u64, u64> = HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "s" && ph != "f" {
            continue;
        }
        assert_eq!(
            ev.get("cat").and_then(Json::as_str),
            Some("dsm.flow"),
            "flow events carry the dsm.flow category"
        );
        let id = ev.get("id").and_then(Json::as_num).expect("flow id") as u64;
        let tid = ev.get("tid").and_then(Json::as_num).expect("flow tid") as u64;
        if ph == "s" {
            start_lane.insert(id, tid);
        } else {
            finish_lane.insert(id, tid);
        }
    }
    assert!(!start_lane.is_empty(), "no flow starts exported");
    let cross = start_lane
        .iter()
        .filter(|(id, s)| finish_lane.get(id).is_some_and(|f| f != *s))
        .count();
    assert!(
        cross > 0,
        "no flow id connects two different node lanes ({} starts, {} finishes)",
        start_lane.len(),
        finish_lane.len()
    );

    // Per-kind end-to-end latency attribution reached the report: every
    // protocol exchange in this app crosses nodes, so queue wait must have
    // been measured, and chaos delay must be zero (no fault plan).
    assert!(!report.phases.is_empty(), "no phase attribution collected");
    let kinds: BTreeSet<&str> = report.phases.iter().map(|&(k, _)| k).collect();
    for expected in [
        "PageBatchReq",
        "PageBatchReply",
        "DiffBatch",
        "LockAcq",
        "BarrierArrive",
    ] {
        assert!(kinds.contains(expected), "no attribution for {expected}");
    }
    assert!(
        report.phases.iter().any(|(_, a)| a.queue_ns > 0),
        "queue wait never attributed"
    );
    assert!(
        report.phases.iter().all(|(_, a)| a.chaos_ns == 0),
        "chaos delay attributed on a chaos-free run"
    );
}

/// Service-time coverage: every message kind the cluster *sent* must show
/// up as a service-time bucket, including the kinds added after PR 3 —
/// DiffAck, the heartbeat family, and batch replies.
#[test]
fn every_sent_message_kind_gets_a_service_time_bucket() {
    let report = run(
        ClusterConfig::fault_tolerant(4)
            .with_page_size(512)
            .with_policy(CkptPolicy::LogOverflow { l: 0.2 })
            .with_seed(SEED)
            .with_membership(Default::default())
            .with_trace(TraceConfig::enabled()),
        &[FailureSpec { node: 2, at_op: 60 }],
        wide_app,
    );
    assert_eq!(report.nodes[2].ft.recoveries, 1, "crash did not fire");

    let sent: BTreeSet<&str> = report.total_msg_kinds().iter().map(|&(k, _)| k).collect();
    let attributed: BTreeSet<&str> = report
        .total_svc_time_by_kind()
        .iter()
        .map(|&(k, _)| k)
        .collect();
    for kind in &sent {
        assert!(
            attributed.contains(kind),
            "sent kind {kind:?} has no service-time bucket (attributed: {attributed:?})"
        );
    }
    // The run must actually exercise the once-unattributed kinds: acks,
    // heartbeats (incl. the suspicion round on the injected crash), batched
    // page replies, and the recovery protocol.
    for kind in [
        "DiffAck",
        "HbPing",
        "HbPong",
        "SuspectQuery",
        "SuspectReply",
        "DownAnnounce",
        "PageBatchReq",
        "PageBatchReply",
        "RecLogReq",
        "RecLogReply",
    ] {
        assert!(sent.contains(kind), "workload never sent {kind:?}");
    }
}

/// A clean monitored run: the invariant monitor must have consumed the
/// event stream and found nothing.
#[test]
fn clean_monitored_run_reports_zero_violations() {
    let report = run(
        ClusterConfig::fault_tolerant(3)
            .with_page_size(256)
            .with_seed(SEED)
            .with_monitor(true),
        &[],
        exchange,
    );
    let m = report.monitor.expect("monitor report missing");
    assert!(m.events_seen > 0, "monitor saw no events");
    assert!(
        m.violations.is_empty(),
        "clean run flagged: {:?}",
        m.violations
    );
}

/// The acceptance bar for the monitor: a deliberately injected stale
/// version apply (test-only hook re-emitting an already-applied diff
/// interval) must fail the run, naming the violated invariant and
/// attaching the stitched causal flow.
#[test]
fn injected_stale_apply_is_caught_with_causal_flow() {
    let mut cfg = ClusterConfig::fault_tolerant(3)
        .with_page_size(256)
        .with_seed(SEED)
        .with_monitor(true);
    cfg.inject_stale_apply = true;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run(cfg, &[], exchange)
    }));
    let err = result.expect_err("monitor must fail the injected run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload must be a string");
    assert!(
        msg.contains("protocol invariant violated"),
        "unexpected failure message: {msg}"
    );
    assert!(
        msg.contains("version-monotonicity"),
        "wrong invariant named: {msg}"
    );
    assert!(
        msg.contains("FTDSM_SEED="),
        "no reproducing seed in the failure: {msg}"
    );
    assert!(
        msg.contains("causal flow:"),
        "no causal flow attached: {msg}"
    );
}

/// Property: folding per-shard metric time-series in any order yields the
/// identical series, and histogram merge is order-insensitive too.
#[test]
fn metric_and_histogram_merges_are_order_insensitive() {
    let mut s = SEED;
    for case in 0..8u64 {
        // Random snapshots, some with colliding timestamps.
        let parts: Vec<TimeSeries> = (0..6)
            .map(|_| {
                let mut ts = TimeSeries::new();
                for _ in 0..(1 + splitmix(&mut s) % 4) {
                    let mut counters = BTreeMap::new();
                    for c in 0..(splitmix(&mut s) % 3) {
                        counters.insert(format!("c{c}_total"), splitmix(&mut s) % 1000);
                    }
                    ts.push(Snapshot {
                        ts_ns: (splitmix(&mut s) % 5) * 100,
                        counters,
                        gauges: BTreeMap::new(),
                        hists: BTreeMap::new(),
                    });
                }
                ts
            })
            .collect();
        let mut fwd = TimeSeries::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = TimeSeries::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev, "case {case}: time-series merge order mattered");

        // Histograms: same samples distributed into shards, merged both ways.
        let samples: Vec<u64> = (0..64).map(|_| splitmix(&mut s) % (1 << 20)).collect();
        let mut shards = vec![Histogram::new(); 4];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % 4].record(v);
        }
        let mut fwd_h = Histogram::new();
        for h in &shards {
            fwd_h.merge(h);
        }
        let mut rev_h = Histogram::new();
        for h in shards.iter().rev() {
            rev_h.merge(h);
        }
        assert_eq!(fwd_h, rev_h, "case {case}: histogram merge order mattered");
        assert_eq!(fwd_h.count(), samples.len() as u64);
    }
}

/// With tracing off, the emit hook must stay one relaxed atomic load: ten
/// million no-op emits have to finish comfortably inside a generous wall
/// bound even on a loaded debug-mode CI runner, and record nothing.
#[test]
fn disabled_trace_emit_overhead_stays_negligible() {
    let trace = Trace::new(1, &TraceConfig::default());
    let t = trace.tracer(0);
    assert!(!trace.is_enabled());
    let t0 = Instant::now();
    for i in 0..10_000_000u64 {
        t.emit(EventKind::MsgSend {
            kind: "PageReq",
            to: 0,
            bytes: i as u32,
            flow: i,
            parent: 0,
        });
    }
    let dt = t0.elapsed();
    assert!(
        trace.all_events().is_empty(),
        "disabled trace recorded events"
    );
    assert!(
        dt.as_secs_f64() < 5.0,
        "10M disabled emits took {dt:?} — the disabled hook is no longer cheap"
    );
}
