//! Chaos-fabric and membership integration tests: the cluster must produce
//! byte-identical results on a lossy, reordering, duplicating network, and
//! must detect injected crashes through heartbeats alone (no orchestrator
//! hint), recovering from its own detection.
//!
//! Every run is driven by one seed. Failures echo it; reproduce with
//! `FTDSM_SEED=<seed> cargo test --test chaos <name>`.

use std::time::Duration;

use ftdsm_suite::apps::{water_nsq, WaterNsqParams};
use ftdsm_suite::{
    run, seed_from_env, CkptPolicy, ClusterConfig, FailureSpec, FaultPlan, FaultRule, HomeAlloc,
    Process,
};

const NODES: usize = 4;

fn cfg() -> ClusterConfig {
    // The whole chaos suite runs under the online invariant monitor: any
    // protocol-invariant violation (stale diff apply, split lock tenure,
    // barrier disagreement, illegal membership transition) panics the run
    // with the offending causal flow and the reproducing seed attached.
    ClusterConfig::fault_tolerant(NODES)
        .with_page_size(512)
        .with_policy(CkptPolicy::LogOverflow { l: 0.2 })
        .with_monitor(true)
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Reference workload exercising every install/apply path: page fetches,
/// diff batches (lock and barrier flushes), lock grants with write notices,
/// barrier releases, and prefetch batches.
fn app(p: &mut Process) -> u64 {
    let n = p.nodes();
    let data = p.alloc_vec::<u64>(96, HomeAlloc::Interleaved);
    let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(1));
    let mut state = 0u64;
    p.run_steps(&mut state, 6, |p, state, step| {
        p.acquire(5);
        let v = counter.get(p, 0);
        counter.set(p, 0, v + 1);
        p.release(5);
        let me = p.me();
        for i in 0..96 {
            if i % n == me {
                let v = data.get(p, i);
                data.set(p, i, v.wrapping_mul(31).wrapping_add(step + i as u64));
            }
        }
        *state = state.wrapping_add(step);
        p.barrier();
    });
    p.barrier();
    let mut acc = counter.get(p, 0);
    for i in 0..96 {
        acc = acc.rotate_left(9) ^ data.get(p, i);
    }
    acc.wrapping_add(state)
}

/// Membership alone (reliable fabric): heartbeats must flow and nobody may
/// ever be suspected.
#[test]
fn quiet_cluster_has_no_false_suspicions() {
    let seed = seed_from_env();
    let report = run(
        cfg().with_seed(seed).with_membership(Default::default()),
        &[],
        app,
    );
    let clean = run(cfg().with_seed(seed), &[], app);
    assert_eq!(
        report.results, clean.results,
        "membership changed results (FTDSM_SEED={seed:#x})"
    );
    let m = report.total_member();
    assert!(
        m.pings_sent > 0,
        "no heartbeats sent (FTDSM_SEED={seed:#x})"
    );
    assert_eq!(
        m.suspicions, 0,
        "healthy node suspected on a reliable fabric (FTDSM_SEED={seed:#x})"
    );
    assert_eq!(m.down_events, 0, "FTDSM_SEED={seed:#x}");
}

/// The acceptance bar: a fixed-seed lossy fabric (drops, delays, duplicates,
/// reorders — no crash) must leave a SPLASH FT kernel byte-identical to the
/// reliable run.
#[test]
fn lossy_fabric_splash_kernel_is_byte_identical() {
    let seed = seed_from_env();
    let params = WaterNsqParams::tiny();
    let p0 = params.clone();
    let clean = run(cfg().with_seed(seed), &[], move |p| water_nsq(p, &p0));
    let p1 = params.clone();
    let chaotic = run(
        cfg().with_seed(seed).with_chaos(FaultPlan::lossy(0)),
        &[],
        move |p| water_nsq(p, &p1),
    );
    assert_eq!(
        clean.results, chaotic.results,
        "lossy run diverged (FTDSM_SEED={seed:#x})"
    );
    assert_eq!(
        clean.shared_hash, chaotic.shared_hash,
        "lossy run memory diverged (FTDSM_SEED={seed:#x})"
    );
    let t = chaotic.total_traffic();
    assert!(
        t.chaos_dropped + t.chaos_delayed + t.chaos_duplicated > 0,
        "chaos plan injected nothing (FTDSM_SEED={seed:#x})"
    );
}

/// Idempotency property: under a duplicate+reorder-only plan (nothing is
/// ever lost, but everything may arrive twice and out of order), every
/// install/apply path — page install, diff batch, lock grant, barrier
/// release — must converge to the reliable run's memory image. Swept across
/// seeds derived from the run seed.
#[test]
fn dup_reorder_delivery_is_idempotent() {
    let base = seed_from_env();
    let clean = run(cfg().with_seed(base), &[], app);
    let mut s = base;
    let mut dups_seen = 0u64;
    for case in 0..4 {
        let seed = splitmix(&mut s);
        let plan = FaultPlan::new(0).with_rule(
            FaultRule::all()
                .duplicating(0.25)
                .reordering(0.25)
                .delaying(0.5, Duration::from_micros(50), Duration::from_millis(2)),
        );
        let chaotic = run(cfg().with_seed(seed).with_chaos(plan), &[], app);
        assert_eq!(
            clean.results, chaotic.results,
            "case {case}: dup+reorder diverged (FTDSM_SEED={seed:#x})"
        );
        assert_eq!(
            clean.shared_hash, chaotic.shared_hash,
            "case {case}: memory diverged (FTDSM_SEED={seed:#x})"
        );
        let t = chaotic.total_traffic();
        assert!(
            t.chaos_duplicated > 0,
            "case {case}: plan duplicated nothing (FTDSM_SEED={seed:#x})"
        );
        dups_seen += chaotic.total_dup_suppressed();
    }
    assert!(
        dups_seen > 0,
        "no duplicate delivery was ever suppressed across the sweep (FTDSM_SEED={base:#x})"
    );
}

/// Self-detected recovery: a node crashes with no orchestrator announcement;
/// peers must notice the silence via heartbeats (suspicions observed), mark
/// it down, and the recovered incarnation must rejoin and finish with the
/// reliable run's exact results.
#[test]
fn crash_is_detected_by_heartbeats_alone() {
    let seed = seed_from_env();
    let clean = run(cfg().with_seed(seed), &[], app);
    let mut s = seed;
    for case in 0..3 {
        let victim = (splitmix(&mut s) % NODES as u64) as usize;
        let at_op = 20 + splitmix(&mut s) % 400;
        let crashed = run(
            cfg().with_seed(seed).with_membership(Default::default()),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            app,
        );
        assert_eq!(
            clean.results, crashed.results,
            "case {case}: results diverge (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
        assert_eq!(
            clean.shared_hash, crashed.shared_hash,
            "case {case}: memory diverges (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
        assert_eq!(
            crashed.nodes[victim].ft.recoveries, 1,
            "case {case}: crash did not fire (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
        let m = crashed.total_member();
        assert!(
            m.suspicions > 0,
            "case {case}: nobody suspected the dead node (victim {victim}, op {at_op}, \
             FTDSM_SEED={seed:#x})"
        );
        assert!(
            m.down_events > 0,
            "case {case}: suspicion never confirmed to Down (victim {victim}, op {at_op}, \
             FTDSM_SEED={seed:#x})"
        );
        assert!(
            m.up_events > 0,
            "case {case}: recovered incarnation never marked Up (victim {victim}, op {at_op}, \
             FTDSM_SEED={seed:#x})"
        );
    }
}

/// Crash during chaos: loss + delay + a real fail-stop crash, detection and
/// recovery driven entirely by the membership layer. Iteration count is
/// env-tunable (`FTDSM_STRESS_ITERS`) for long soak runs; CI uses the small
/// default.
#[test]
fn crash_during_chaos_stress() {
    let iters: u64 = std::env::var("FTDSM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let base = seed_from_env();
    let clean = run(cfg().with_seed(base), &[], app);
    let mut s = base;
    for case in 0..iters {
        let seed = splitmix(&mut s);
        let victim = (splitmix(&mut s) % NODES as u64) as usize;
        let at_op = 20 + splitmix(&mut s) % 400;
        eprintln!("case {case}: FTDSM_SEED={seed:#x} victim={victim} at_op={at_op}");
        let crashed = run(
            cfg().with_seed(seed).with_chaos(FaultPlan::lossy(0)),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            app,
        );
        assert_eq!(
            clean.results, crashed.results,
            "case {case}: results diverge (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
        assert_eq!(
            clean.shared_hash, crashed.shared_hash,
            "case {case}: memory diverges (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
        assert_eq!(
            crashed.nodes[victim].ft.recoveries, 1,
            "case {case}: crash did not fire (victim {victim}, op {at_op}, FTDSM_SEED={seed:#x})"
        );
    }
}

/// A partition that heals: the minority side must be suspected (possibly
/// even declared down) and then rescinded or re-admitted, and the run must
/// still finish with correct results.
#[test]
fn partition_then_heal_converges() {
    let seed = seed_from_env();
    let plan = FaultPlan::new(0).with_rule(FaultRule::all().dropping(0.02).delaying(
        0.05,
        Duration::from_micros(100),
        Duration::from_millis(1),
    ));
    let clean = run(cfg().with_seed(seed), &[], app);
    let chaotic = run(cfg().with_seed(seed).with_chaos(plan), &[], app);
    assert_eq!(
        clean.results, chaotic.results,
        "lossy run diverged (FTDSM_SEED={seed:#x})"
    );
    assert_eq!(
        clean.shared_hash, chaotic.shared_hash,
        "lossy run memory diverged (FTDSM_SEED={seed:#x})"
    );
}
