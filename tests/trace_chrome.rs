//! Acceptance test for the tracing tentpole: a fault-tolerant cluster run
//! with tracing enabled (including a crash + recovery) must export Chrome
//! trace-event JSON that parses, has one event lane per node, and contains
//! the recovery-phase spans.

use dsm_trace::export::{to_chrome_trace, to_jsonl};
use dsm_trace::json::{self, Json};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, FailureSpec, HomeAlloc, Process, TraceConfig};

const NODES: usize = 3;

fn traced_cfg() -> ClusterConfig {
    ClusterConfig::fault_tolerant(NODES)
        .with_page_size(256)
        .with_policy(CkptPolicy::EverySteps(2))
        .with_trace(TraceConfig::enabled())
}

fn app(p: &mut Process) -> u64 {
    let cells = p.alloc_vec::<u64>(8, HomeAlloc::Interleaved);
    let mut state = 0u64;
    p.run_steps(&mut state, 6, |p, state, step| {
        for lock in 0..2usize {
            p.acquire(lock);
            let idx = lock * 4 + (step as usize % 4);
            let v = cells.get(p, idx);
            cells.set(p, idx, v + p.me() as u64 + 1);
            p.release(lock);
        }
        *state += step;
        p.barrier();
    });
    p.barrier();
    (0..8).map(|i| cells.get(p, i)).sum()
}

#[test]
fn crash_run_exports_valid_chrome_trace_with_recovery_lanes() {
    let report = run(traced_cfg(), &[FailureSpec { node: 1, at_op: 60 }], app);
    assert_eq!(report.nodes[1].ft.recoveries, 1);

    let text = to_chrome_trace(&report.trace);
    let doc = json::parse(&text).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // One lane (tid) per node, both named and populated.
    let mut lanes_named = [false; NODES];
    let mut lanes_used = [false; NODES];
    let mut recovery_phases = Vec::new();
    let mut complete_events = 0usize;
    let mut flow_starts = 0usize;
    let mut flow_finishes = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        let tid = ev.get("tid").and_then(Json::as_num).map(|t| t as usize);
        match ph {
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    lanes_named[tid.expect("thread_name without tid")] = true;
                }
            }
            "X" => {
                assert!(
                    ev.get("dur").and_then(Json::as_num).unwrap_or(0.0) > 0.0,
                    "complete event without duration"
                );
                complete_events += 1;
                let tid = tid.expect("X event without tid");
                lanes_used[tid] = true;
                if ev.get("name").and_then(Json::as_str) == Some("recovery_phase") {
                    let phase = ev
                        .get("args")
                        .and_then(|a| a.get("phase"))
                        .and_then(Json::as_str)
                        .expect("recovery_phase args.phase")
                        .to_string();
                    assert_eq!(tid, 1, "recovery phases must be on the victim's lane");
                    recovery_phases.push(phase);
                }
            }
            "i" => lanes_used[tid.expect("instant without tid")] = true,
            // Cross-node causal flow arrows: a send binds the start, the
            // matching receive (same id) the finish.
            "s" => {
                assert!(ev.get("id").and_then(Json::as_num).is_some());
                flow_starts += 1;
            }
            "f" => {
                assert_eq!(ev.get("bp").and_then(Json::as_str), Some("e"));
                assert!(ev.get("id").and_then(Json::as_num).is_some());
                flow_finishes += 1;
            }
            other => panic!("unexpected phase type {other:?}"),
        }
    }
    assert!(flow_starts > 0, "no flow-start events in a traced run");
    assert!(flow_finishes > 0, "no flow-finish events in a traced run");
    for node in 0..NODES {
        assert!(lanes_named[node], "node {node} lane is missing its name");
        assert!(lanes_used[node], "node {node} lane has no events");
    }
    assert!(complete_events > 0, "no span events recorded");
    for phase in ["restore", "log_collect", "replay"] {
        assert!(
            recovery_phases.iter().any(|p| p == phase),
            "missing recovery phase {phase:?} (got {recovery_phases:?})"
        );
    }

    // The crash itself and the ensuing diff/lock traffic must be visible.
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_string))
        .collect();
    for expected in [
        "crash_injected",
        "lock_acquire",
        "barrier_release",
        "msg_send",
        "ckpt_end",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing event {expected:?} in the trace"
        );
    }

    // JSONL export: every line parses and carries node + event fields.
    let jsonl = to_jsonl(&report.trace);
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let obj = json::parse(line).expect("jsonl line must parse");
        assert!(obj.get("event").and_then(Json::as_str).is_some());
        assert!(obj.get("node").and_then(Json::as_num).is_some());
        lines += 1;
    }
    assert!(lines > 0, "jsonl export is empty");

    // Latency histograms reached the report: the victim recovered, so its
    // recovery-phase histograms have samples; everyone took locks and hit
    // barriers.
    let h = report.total_hists();
    assert!(h.lock_wait.count() > 0);
    assert!(h.barrier_wait.count() > 0);
    assert_eq!(report.nodes[1].hists.rec_restore.count(), 1);
    assert_eq!(report.nodes[1].hists.rec_log_collect.count(), 1);
    assert_eq!(report.nodes[1].hists.rec_replay.count(), 1);
}

#[test]
fn disabled_trace_records_nothing_but_hists_still_fill() {
    let cfg = ClusterConfig::base(2).with_page_size(256);
    let report = run(cfg, &[], |p| {
        let cells = p.alloc_vec::<u64>(4, HomeAlloc::Interleaved);
        p.acquire(0);
        let v = cells.get(p, 0);
        cells.set(p, 0, v + 1);
        p.release(0);
        p.barrier();
        cells.get(p, 0)
    });
    assert!(!report.trace.is_enabled());
    assert!(report.trace.all_events().is_empty());
    // Histograms are independent of the trace switch.
    assert!(report.total_hists().lock_wait.count() > 0);
    // An empty trace still exports valid (if boring) Chrome JSON.
    let doc = json::parse(&to_chrome_trace(&report.trace)).expect("empty trace JSON");
    assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
}
