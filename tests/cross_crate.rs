//! Workspace-level integration: the full stack (net + page + storage +
//! protocol + FT + workloads) exercised through the umbrella crate.

use ftdsm_suite::apps::{
    barnes, jacobi, water_nsq, water_sp, BarnesParams, JacobiParams, WaterNsqParams, WaterSpParams,
};
use ftdsm_suite::{run, CkptPolicy, ClusterConfig, FailureSpec, HomeAlloc};

#[test]
fn all_workloads_agree_across_cluster_sizes() {
    // Each workload must produce node-identical checksums for any cluster
    // size (the checksum itself may differ between sizes because work
    // partitioning changes float accumulation order per node).
    for n in [2, 3, 5] {
        let cfg = ClusterConfig::base(n).with_page_size(1024);
        let r = run(cfg, &[], |p| {
            (
                barnes(p, &BarnesParams::tiny()),
                water_nsq(p, &WaterNsqParams::tiny()),
                water_sp(p, &WaterSpParams::tiny()),
                jacobi(p, &JacobiParams { side: 24, steps: 4 }),
            )
        });
        let first = r.results[0];
        assert!(
            r.results.iter().all(|c| *c == first),
            "{n}-node cluster disagrees: {:?}",
            r.results
        );
    }
}

#[test]
fn page_size_does_not_change_results() {
    let run_with = |page: usize| {
        let cfg = ClusterConfig::base(4).with_page_size(page);
        run(cfg, &[], |p| water_sp(p, &WaterSpParams::tiny())).results[0]
    };
    let a = run_with(256);
    let b = run_with(1024);
    let c = run_with(4096);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn ft_with_small_pages_recovers_barnes() {
    let cfg = || {
        ClusterConfig::fault_tolerant(4)
            .with_page_size(512)
            .with_policy(CkptPolicy::EverySteps(2))
    };
    let clean = run(cfg(), &[], |p| barnes(p, &BarnesParams::tiny()));
    let crashed = run(
        cfg(),
        &[FailureSpec {
            node: 1,
            at_op: 600,
        }],
        |p| barnes(p, &BarnesParams::tiny()),
    );
    assert_eq!(clean.results, crashed.results);
    assert_eq!(clean.shared_hash, crashed.shared_hash);
    assert_eq!(crashed.nodes[1].ft.recoveries, 1);
}

#[test]
fn mixed_kernel_with_many_locks_and_crash() {
    // A kernel contending on several locks managed by different nodes, with
    // a crash of one lock manager.
    let app = |p: &mut ftdsm_suite::Process| {
        let n = p.nodes();
        let cells = p.alloc_vec::<u64>(16, HomeAlloc::Interleaved);
        let mut state = 0u64;
        p.run_steps(&mut state, 10, |p, state, step| {
            for lock in 0..4usize {
                p.acquire(lock);
                let idx = lock * 4 + (step as usize % 4);
                let v = cells.get(p, idx);
                cells.set(p, idx, v + p.me() as u64 + 1);
                p.release(lock);
            }
            *state += step;
            p.barrier();
        });
        p.barrier();
        (0..16).map(|i| cells.get(p, i)).sum::<u64>() + state * n as u64
    };
    let cfg = || {
        ClusterConfig::fault_tolerant(4)
            .with_page_size(256)
            .with_policy(CkptPolicy::EverySteps(3))
    };
    let clean = run(cfg(), &[], app);
    // The lock grants' write notices must have exercised the batched
    // prefetch path, or this test no longer covers it.
    assert!(
        clean.total_hists().fetch_batch_pages.count() > 0,
        "no prefetch batches were issued"
    );
    for victim in 0..4 {
        let crashed = run(
            cfg(),
            &[FailureSpec {
                node: victim,
                at_op: 150,
            }],
            app,
        );
        assert_eq!(clean.results, crashed.results, "victim {victim}");
        assert_eq!(clean.shared_hash, crashed.shared_hash, "victim {victim}");
        assert_eq!(crashed.nodes[victim].ft.recoveries, 1, "victim {victim}");
    }
}

/// A home crashes while batched prefetches are in flight: every barrier
/// invalidates each reader's copies of every writer's pages, so the nodes
/// issue `PageBatchReq` bursts continuously. Crashing a home at various
/// points lands crashes between a batch request and its reply; the
/// requesters must retransmit on `NodeUp` and recovery replay must still
/// converge bit-identically.
#[test]
fn home_crash_with_prefetch_batches_in_flight() {
    let app = |p: &mut ftdsm_suite::Process| {
        let n = p.nodes();
        let words = 32; // one 256 B page per stripe entry
        let pages = 4 * n;
        let data = p.alloc_vec::<u64>(pages * words, HomeAlloc::Interleaved);
        let mut state = 0u64;
        p.run_steps(&mut state, 8, |p, state, step| {
            let me = p.me();
            // Dirty our stripe (pages homed on every node, ours included).
            for pg in (me..pages).step_by(n) {
                let v = data.get(p, pg * words + me);
                data.set(p, pg * words + me, v + step + 1);
            }
            p.barrier();
            // Read every page: all remote copies were just invalidated, so
            // the post-barrier prefetch covers them in one batch per home.
            let mut acc = 0u64;
            for pg in 0..pages {
                for w in 0..n {
                    acc = acc.wrapping_add(data.get(p, pg * words + w));
                }
            }
            *state = state.wrapping_add(acc);
            p.barrier();
        });
        state
    };
    let cfg = || {
        ClusterConfig::fault_tolerant(4)
            .with_page_size(256)
            .with_policy(CkptPolicy::EverySteps(2))
    };
    let clean = run(cfg(), &[], app);
    let h = clean.total_hists();
    assert!(
        h.fetch_batch_pages.count() > 0,
        "no prefetch batches issued"
    );
    assert!(h.prefetch_hit.count() > 0, "no read ever hit a prefetch");
    for (victim, at_op) in [(0, 120), (1, 200), (2, 333), (3, 451)] {
        let crashed = run(
            cfg(),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            app,
        );
        assert_eq!(clean.results, crashed.results, "victim {victim}");
        assert_eq!(clean.shared_hash, crashed.shared_hash, "victim {victim}");
        assert_eq!(crashed.nodes[victim].ft.recoveries, 1, "victim {victim}");
    }
}
