//! Property test of the paper's central correctness claim: for *any*
//! single-node fail-stop failure at *any* point in the execution, local
//! checkpoint restore plus log-driven replay reproduces the crash-free
//! execution exactly.
//!
//! Uses a fixed seeded sweep rather than proptest shrinking (each case is a
//! pair of full multi-threaded cluster runs, so cases are expensive and
//! shrinking adds nothing: the case is already just (victim, op)).
//!
//! The sweep derives from the cluster seed: set `FTDSM_SEED` to reproduce
//! a failing case (every assertion echoes the seed it ran with).

use ftdsm_suite::apps::{water_nsq, WaterNsqParams};
use ftdsm_suite::{run, seed_from_env, CkptPolicy, ClusterConfig, FailureSpec, HomeAlloc, Process};

const NODES: usize = 4;

fn cfg(l: f64) -> ClusterConfig {
    ClusterConfig::fault_tolerant(NODES)
        .with_page_size(512)
        .with_policy(CkptPolicy::LogOverflow { l })
}

/// The reference workload: locks, barriers, partitioned writes, a global
/// reduction — all protocol paths.
fn app(p: &mut Process) -> u64 {
    let n = p.nodes();
    let data = p.alloc_vec::<u64>(96, HomeAlloc::Interleaved);
    let counter = p.alloc_vec::<u64>(1, HomeAlloc::Node(1));
    let mut state = 0u64;
    p.run_steps(&mut state, 8, |p, state, step| {
        p.acquire(5);
        let v = counter.get(p, 0);
        counter.set(p, 0, v + 1);
        p.release(5);
        let me = p.me();
        for i in 0..96 {
            if i % n == me {
                let v = data.get(p, i);
                data.set(p, i, v.wrapping_mul(31).wrapping_add(step + i as u64));
            }
        }
        *state = state.wrapping_add(step);
        p.barrier();
    });
    p.barrier();
    let mut acc = counter.get(p, 0);
    for i in 0..96 {
        acc = acc.rotate_left(9) ^ data.get(p, i);
    }
    acc.wrapping_add(state)
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn any_single_failure_point_recovers_exactly() {
    let clean = run(cfg(0.1), &[], app);
    // The op space: the workload performs ~450 ops per node; sweep seeded
    // random (victim, op) pairs across the whole execution.
    let base = seed_from_env();
    let mut seed = base ^ 0xC0FFEE;
    for case in 0..10 {
        let victim = (splitmix(&mut seed) % NODES as u64) as usize;
        let at_op = 20 + splitmix(&mut seed) % 420;
        let crashed = run(
            cfg(0.1),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            app,
        );
        assert_eq!(
            clean.results, crashed.results,
            "case {case}: results diverge (victim {victim}, op {at_op}, FTDSM_SEED={base:#x})"
        );
        assert_eq!(
            clean.shared_hash, crashed.shared_hash,
            "case {case}: memory diverges (victim {victim}, op {at_op}, FTDSM_SEED={base:#x})"
        );
        assert_eq!(
            crashed.nodes[victim].ft.recoveries, 1,
            "case {case}: crash did not fire (victim {victim}, op {at_op}, FTDSM_SEED={base:#x})"
        );
    }
}

#[test]
fn recovery_holds_under_a_real_workload_sweep() {
    let params = WaterNsqParams::tiny();
    let p0 = params.clone();
    let clean = run(cfg(0.2), &[], move |p| water_nsq(p, &p0));
    let base = seed_from_env();
    let mut seed = base ^ 0xBEEF;
    for case in 0..4 {
        let victim = (splitmix(&mut seed) % NODES as u64) as usize;
        let at_op = 50 + splitmix(&mut seed) % 500;
        let pc = params.clone();
        let crashed = run(
            cfg(0.2),
            &[FailureSpec {
                node: victim,
                at_op,
            }],
            move |p| water_nsq(p, &pc),
        );
        assert_eq!(
            clean.results, crashed.results,
            "case {case}: (victim {victim}, op {at_op}, FTDSM_SEED={base:#x})"
        );
        assert_eq!(
            clean.shared_hash, crashed.shared_hash,
            "case {case}: (victim {victim}, op {at_op}, FTDSM_SEED={base:#x})"
        );
    }
}
